"""Wilos — imperative re-implementations of the Hibernate ORM functions (§6.3).

The paper extracts 22 of Wilos's 33 single-query functions; Table 3 details
the nine most complex.  This module reproduces that partition exactly: the
nine Table 3 functions (named after their file + line, e.g.
``activity_service_347``), thirteen further in-scope functions, and eleven
out-of-scope functions (nested lookups, disjunctions, unions, anti-joins,
window/argmax shapes, key filters, DISTINCT, exotic aggregates).

All functions touch the database exclusively through the cursor-style
``db.scan`` API, computing joins with hash maps and groupings with dicts —
the idiomatic shape of hand-rolled DAO code.
"""

from __future__ import annotations

from repro.apps.imperative import index_rows
from repro.apps.registry import CommandRegistry
from repro.engine.database import Database
from repro.engine.result import Result

registry = CommandRegistry("wilos")


def _grouped_join_count(db, fact_table, fk_column, dim_table, dim_label):
    """count fact rows per dimension label (the Wilos DAO staple)."""
    dims = index_rows(db.scan(dim_table), "id")
    counts: dict[str, int] = {}
    for row in db.scan(fact_table):
        for dim in dims.get(row[fk_column], ()):
            label = dim[dim_label]
            counts[label] = counts.get(label, 0) + 1
    return counts


# --- the nine Table 3 functions -------------------------------------------------


@registry.add(
    "activity_service_347",
    tables=("activity", "concreteactivity"),
    clauses=("Project", "Join", "Group By", "Order By"),
)
def activity_service_347(db: Database) -> Result:
    counts = _grouped_join_count(db, "concreteactivity", "activity_id", "activity", "name")
    rows = sorted(counts.items())
    return Result(["name", "concrete_count"], rows)


@registry.add(
    "guidance_service_168",
    tables=("guidance", "activity"),
    clauses=("Project", "Join", "Group By"),
)
def guidance_service_168(db: Database) -> Result:
    counts = _grouped_join_count(db, "guidance", "activity_id", "activity", "name")
    return Result(["name", "guidances"], list(counts.items()))


@registry.add(
    "project_service_297",
    tables=("project", "activity"),
    clauses=("Filter", "Project", "Join", "Group By"),
)
def project_service_297(db: Database) -> Result:
    projects = index_rows(
        (row for row in db.scan("project") if row["state"] == "started"), "id"
    )
    counts: dict[str, int] = {}
    for activity in db.scan("activity"):
        for project in projects.get(activity["project_id"], ()):
            counts[project["name"]] = counts.get(project["name"], 0) + 1
    return Result(["name", "activities"], list(counts.items()))


@registry.add(
    "concreteactivity_service_133",
    tables=("concreteactivity", "activity"),
    clauses=("Project", "Join", "Group By"),
)
def concreteactivity_service_133(db: Database) -> Result:
    counts = _grouped_join_count(db, "concreteactivity", "activity_id", "activity", "prefix")
    return Result(["prefix", "instances"], list(counts.items()))


@registry.add(
    "concreterole_descriptor_service_181",
    tables=("concreterole", "roledescriptor"),
    clauses=("Project", "Join", "Group By"),
)
def concreterole_descriptor_service_181(db: Database) -> Result:
    counts = _grouped_join_count(
        db, "concreterole", "roledescriptor_id", "roledescriptor", "name"
    )
    return Result(["name", "concrete_roles"], list(counts.items()))


@registry.add(
    "iteration_service_103",
    tables=("concreteiteration", "iteration"),
    clauses=("Project", "Join", "Group By"),
)
def iteration_service_103(db: Database) -> Result:
    counts = _grouped_join_count(
        db, "concreteiteration", "iteration_id", "iteration", "name"
    )
    return Result(["name", "concrete_iterations"], list(counts.items()))


@registry.add(
    "participant_service_266",
    tables=("participant", "project"),
    clauses=("Project", "Filter", "Join", "Group By"),
)
def participant_service_266(db: Database) -> Result:
    projects = index_rows(db.scan("project"), "id")
    counts: dict[str, int] = {}
    for participant in db.scan("participant"):
        if participant["role_id"] > 3:
            continue
        for project in projects.get(participant["project_id"], ()):
            counts[project["name"]] = counts.get(project["name"], 0) + 1
    return Result(["name", "participants"], list(counts.items()))


@registry.add(
    "phase_service_98",
    tables=("concretephase", "phase"),
    clauses=("Project", "Join", "Group By"),
)
def phase_service_98(db: Database) -> Result:
    counts = _grouped_join_count(db, "concretephase", "phase_id", "phase", "name")
    return Result(["name", "concrete_phases"], list(counts.items()))


@registry.add(
    "role_dao_15",
    tables=("roledescriptor",),
    clauses=("Project", "Filter", "Aggregation"),
)
def role_dao_15(db: Database) -> Result:
    count = 0
    smallest = None
    for role in db.scan("roledescriptor"):
        if not role["name"].startswith("Role 1"):  # like 'Role 1%'
            continue
        count += 1
        if smallest is None or role["name"] < smallest:
            smallest = role["name"]
    return Result(["matches", "first_name"], [(count, smallest)])


# --- further in-scope functions --------------------------------------------------


@registry.add(
    "project_dao_all",
    tables=("project",),
    clauses=("Project", "Order By"),
)
def project_dao_all(db: Database) -> Result:
    rows = [(p["name"], p["state"]) for p in db.scan("project")]
    rows.sort(key=lambda r: r[0])
    return Result(["name", "state"], rows)


@registry.add(
    "project_dao_started",
    tables=("project",),
    clauses=("Filter", "Project"),
)
def project_dao_started(db: Database) -> Result:
    rows = [(p["name"],) for p in db.scan("project") if p["state"] == "started"]
    return Result(["name"], rows)


@registry.add(
    "activity_dao_by_prefix",
    tables=("activity",),
    clauses=("Filter", "Project"),
)
def activity_dao_by_prefix(db: Database) -> Result:
    rows = [
        (a["name"], a["prefix"])
        for a in db.scan("activity")
        if a["prefix"].startswith("A1")
    ]
    return Result(["name", "prefix"], rows)


@registry.add(
    "concreteactivity_dao_finished",
    tables=("concreteactivity",),
    clauses=("Filter", "Project"),
)
def concreteactivity_dao_finished(db: Database) -> Result:
    rows = [
        (c["name"], c["state"])
        for c in db.scan("concreteactivity")
        if c["state"] == "finished"
    ]
    return Result(["name", "state"], rows)


@registry.add(
    "iteration_dao_per_project",
    tables=("iteration", "project"),
    clauses=("Project", "Join", "Group By"),
)
def iteration_dao_per_project(db: Database) -> Result:
    counts = _grouped_join_count(db, "iteration", "project_id", "project", "name")
    return Result(["name", "iterations"], list(counts.items()))


@registry.add(
    "phase_dao_per_project",
    tables=("phase", "project"),
    clauses=("Project", "Join", "Group By"),
)
def phase_dao_per_project(db: Database) -> Result:
    counts = _grouped_join_count(db, "phase", "project_id", "project", "name")
    return Result(["name", "phases"], list(counts.items()))


@registry.add(
    "workproduct_dao_states",
    tables=("workproduct",),
    clauses=("Project", "Group By", "Order By"),
)
def workproduct_dao_states(db: Database) -> Result:
    counts: dict[str, int] = {}
    for wp in db.scan("workproduct"):
        counts[wp["state"]] = counts.get(wp["state"], 0) + 1
    rows = sorted(counts.items())
    return Result(["state", "products"], rows)


@registry.add(
    "guidance_dao_checklists",
    tables=("guidance",),
    clauses=("Filter", "Project"),
)
def guidance_dao_checklists(db: Database) -> Result:
    rows = [
        (g["name"],) for g in db.scan("guidance") if g["gtype"] == "checklist"
    ]
    return Result(["name"], rows)


@registry.add(
    "concreterole_dao_states",
    tables=("concreterole",),
    clauses=("Project", "Group By"),
)
def concreterole_dao_states(db: Database) -> Result:
    counts: dict[str, int] = {}
    for role in db.scan("concreterole"):
        counts[role["state"]] = counts.get(role["state"], 0) + 1
    return Result(["state", "roles"], list(counts.items()))


@registry.add(
    "workproduct_dao_per_activity",
    tables=("workproduct", "activity"),
    clauses=("Project", "Join", "Group By"),
)
def workproduct_dao_per_activity(db: Database) -> Result:
    counts = _grouped_join_count(db, "workproduct", "activity_id", "activity", "name")
    return Result(["name", "products"], list(counts.items()))


@registry.add(
    "concretephase_dao_started",
    tables=("concretephase",),
    clauses=("Filter", "Project"),
)
def concretephase_dao_started(db: Database) -> Result:
    rows = [
        (c["state"], c["phase_id"])
        for c in db.scan("concretephase")
        if c["state"] == "started"
    ]
    return Result(["state", "phase_id"], rows)


@registry.add(
    "concreteiteration_dao_finished_count",
    tables=("concreteiteration",),
    clauses=("Filter", "Project", "Aggregation"),
)
def concreteiteration_dao_finished_count(db: Database) -> Result:
    count = 0
    earliest = None
    for ci in db.scan("concreteiteration"):
        if ci["state"] == "finished":
            count += 1
            if earliest is None or ci["iteration_id"] < earliest:
                earliest = ci["iteration_id"]
    return Result(["finished", "first_iteration"], [(count, earliest)])


# --- the 11 out-of-scope functions (paper: 33 total, 22 extractable) -------------


@registry.add(
    "activity_service_nested",
    tables=("activity", "concreteactivity"),
    clauses=("Nested",),
    in_scope=False,
    note="correlated per-row lookup is a nested query, outside EQC",
)
def activity_service_nested(db: Database) -> Result:
    rows = []
    for activity in db.scan("activity"):
        best = None
        for ca in db.scan("concreteactivity"):
            if ca["activity_id"] == activity["id"] and ca["state"] == "finished":
                if best is None or ca["name"] > best:
                    best = ca["name"]
        if best is not None and len([
            c for c in db.scan("concreteactivity") if c["activity_id"] == activity["id"]
        ]) > 2:
            rows.append((activity["name"], best))
    return Result(["name", "latest_finished"], rows)


@registry.add(
    "project_service_disjunction",
    tables=("project",),
    clauses=("Filter", "Disjunction"),
    in_scope=False,
    note="OR of two state constants is a disjunctive filter, outside EQC",
)
def project_service_disjunction(db: Database) -> Result:
    rows = [
        (p["name"],)
        for p in db.scan("project")
        if p["state"] == "started" or p["state"] == "suspended"
    ]
    return Result(["name"], rows)


@registry.add(
    "project_dao_union_states",
    tables=("project", "concreteactivity"),
    clauses=("Union",),
    in_scope=False,
    note="UNION of two entity kinds is not a single-block query",
)
def project_dao_union_states(db: Database) -> Result:
    rows = [(p["state"],) for p in db.scan("project")]
    rows.extend((c["state"],) for c in db.scan("concreteactivity"))
    return Result(["state"], rows)


@registry.add(
    "activity_dao_without_concrete",
    tables=("activity", "concreteactivity"),
    clauses=("Anti-Join",),
    in_scope=False,
    note="NOT EXISTS / anti-join falls outside EQC",
)
def activity_dao_without_concrete(db: Database) -> Result:
    instantiated = {c["activity_id"] for c in db.scan("concreteactivity")}
    rows = [(a["name"],) for a in db.scan("activity") if a["id"] not in instantiated]
    return Result(["name"], rows)


@registry.add(
    "participant_dao_by_id",
    tables=("participant",),
    clauses=("Filter",),
    in_scope=False,
    note="filters on the primary key, which EQC excludes",
)
def participant_dao_by_id(db: Database) -> Result:
    rows = [
        (p["name"],) for p in db.scan("participant") if p["id"] == 7
    ]
    return Result(["name"], rows)


@registry.add(
    "phase_dao_latest_per_project",
    tables=("phase",),
    clauses=("Nested", "Group By"),
    in_scope=False,
    note="argmax-per-group needs a correlated subquery or window function",
)
def phase_dao_latest_per_project(db: Database) -> Result:
    latest: dict[int, dict] = {}
    for phase in db.scan("phase"):
        current = latest.get(phase["project_id"])
        if current is None or phase["id"] > current["id"]:
            latest[phase["project_id"]] = phase
    rows = [(p["project_id"], p["name"]) for p in latest.values()]
    return Result(["project_id", "name"], rows)


@registry.add(
    "guidance_dao_two_kinds",
    tables=("guidance",),
    clauses=("Filter", "Disjunction"),
    in_scope=False,
    note="disjunctive filter (checklist OR template) outside the base EQC",
)
def guidance_dao_two_kinds(db: Database) -> Result:
    rows = [
        (g["name"], g["gtype"])
        for g in db.scan("guidance")
        if g["gtype"] == "checklist" or g["gtype"] == "template"
    ]
    return Result(["name", "gtype"], rows)


@registry.add(
    "project_dao_activity_ratio",
    tables=("activity", "iteration"),
    clauses=("Nested", "Aggregation"),
    in_scope=False,
    note="a ratio of two independent aggregates needs two query blocks",
)
def project_dao_activity_ratio(db: Database) -> Result:
    activities = sum(1 for _ in db.scan("activity"))
    iterations = sum(1 for _ in db.scan("iteration"))
    ratio = activities / iterations if iterations else None
    return Result(["activity_iteration_ratio"], [(ratio,)])


@registry.add(
    "concreterole_dao_state_list",
    tables=("concreterole",),
    clauses=("Aggregation",),
    in_scope=False,
    note="string concatenation aggregates (group_concat) are not basic SQL",
)
def concreterole_dao_state_list(db: Database) -> Result:
    states = sorted({c["state"] for c in db.scan("concreterole")})
    return Result(["states"], [(",".join(states),)])


@registry.add(
    "workproduct_dao_distinct_states",
    tables=("workproduct",),
    clauses=("Distinct", "Group By"),
    note="SELECT DISTINCT over the projected columns is semantically a "
    "GROUP BY on them, which grouping extraction captures exactly",
)
def workproduct_dao_distinct_states(db: Database) -> Result:
    seen = []
    for wp in db.scan("workproduct"):
        if wp["state"] not in seen:
            seen.append(wp["state"])
    return Result(["state"], [(s,) for s in seen])


@registry.add(
    "iteration_dao_numbered",
    tables=("iteration",),
    clauses=("Window",),
    in_scope=False,
    note="row numbering is a window function, outside EQC",
)
def iteration_dao_numbered(db: Database) -> Result:
    rows = []
    for index, iteration in enumerate(db.scan("iteration"), start=1):
        rows.append((index, iteration["name"]))
    return Result(["row_number", "name"], rows)


@registry.add(
    "concretephase_dao_state_lengths",
    tables=("concretephase",),
    clauses=("Scalar Function",),
    in_scope=False,
    note="string functions (length) are outside the multilinear projection class",
)
def concretephase_dao_state_lengths(db: Database) -> Result:
    rows = [(c["state"], len(c["state"])) for c in db.scan("concretephase")]
    return Result(["state", "state_length"], rows)
