"""Imperative black-box applications (implicit opacity, §2.2).

An :class:`ImperativeExecutable` wraps a Python function that computes its
answer the hard way — row loops, manual joins, dict-based grouping, explicit
sorting — touching the database exclusively through the cursor-style
:meth:`Database.scan` API.  The extractor treats it exactly like a SQL
application: run, observe the result.

The module also provides small building blocks (:func:`hash_join_rows`,
:func:`group_rows`, :func:`sorted_rows`) so the Enki/Wilos/RUBiS
re-implementations read like typical hand-rolled application code rather than
a query engine in disguise.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from repro.apps.executable import Executable
from repro.engine.database import Database
from repro.engine.result import Result


class ImperativeExecutable(Executable):
    """Opaque imperative logic: ``fn(db) -> Result``.

    ``fn`` must produce a deterministic result for a given database state, and
    must be expressible as a single EQC query for extraction to succeed — the
    same in-scope requirement the paper imposes (14/17 Enki commands,
    22/33 Wilos functions).
    """

    def __init__(self, fn: Callable[[Database], Result], name: str = "imperative-app"):
        super().__init__()
        self._fn = fn
        self.name = name

    def _execute(self, db: Database, timeout: Optional[float]) -> Result:
        return self._fn(db)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ImperativeExecutable {self.name}>"


# --- helpers used by the application re-implementations ---------------------


def index_rows(rows: Iterable[dict], key: str) -> dict:
    """Hash-index dict-rows by a field, keeping ALL rows per key.

    Imperative application code must use multi-valued indexes (not plain
    ``{key: row}`` dicts) to stay equivalent to a SQL equi-join: a unique-key
    dict silently collapses duplicate keys, which diverges from the join on
    constraint-free databases — exactly the databases an extractor probes
    with.
    """
    index: dict = {}
    for row in rows:
        value = row.get(key)
        if value is None:
            continue
        index.setdefault(value, []).append(row)
    return index


def hash_join_rows(
    left: Iterable[dict],
    right: Iterable[dict],
    left_key: str,
    right_key: str,
) -> list[dict]:
    """Join two dict-row streams on equality of the named fields.

    Matches only non-NULL keys, like SQL equi-joins.  Field-name collisions
    are resolved in favour of the left row (callers pick disjoint names).
    """
    index: dict = {}
    for row in right:
        key = row.get(right_key)
        if key is None:
            continue
        index.setdefault(key, []).append(row)
    joined = []
    for row in left:
        key = row.get(left_key)
        if key is None:
            continue
        for match in index.get(key, ()):
            merged = dict(match)
            merged.update(row)
            joined.append(merged)
    return joined


def group_rows(rows: Iterable[dict], keys: Sequence[str]) -> dict[tuple, list[dict]]:
    """Group dict-rows by a tuple of field values, preserving encounter order."""
    groups: dict[tuple, list[dict]] = {}
    for row in rows:
        group_key = tuple(row[k] for k in keys)
        groups.setdefault(group_key, []).append(row)
    return groups


def sorted_rows(rows: list[tuple], spec: Sequence[tuple[int, bool]]) -> list[tuple]:
    """Sort result tuples by (column index, descending) specs, stably."""
    ordered = list(rows)
    for index, descending in reversed(list(spec)):
        ordered.sort(key=lambda row: row[index], reverse=descending)
    return ordered
