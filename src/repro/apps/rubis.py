"""RUBiS — imperative re-implementation of the auction-site benchmark (§6.3).

Eight browse/report interactions in DAO style (full details of the paper's
RUBiS experiment live in its technical report; these commands cover the same
interaction classes: category browsing, bid leaderboards, regional user
statistics, and item activity windows).
"""

from __future__ import annotations

import datetime

from repro.apps.imperative import index_rows
from repro.apps.registry import CommandRegistry
from repro.engine.database import Database
from repro.engine.result import Result

registry = CommandRegistry("rubis")


@registry.add(
    "items_in_category",
    tables=("items", "categories"),
    clauses=("Filter", "Project", "Join", "Order By", "Limit"),
)
def items_in_category(db: Database) -> Result:
    book_categories = index_rows(
        (c for c in db.scan("categories") if c["name"] == "Books"), "id"
    )
    found = []
    for item in db.scan("items"):
        for _category in book_categories.get(item["category_id"], ()):
            found.append(item)
    found.sort(key=lambda i: i["initial_price"], reverse=True)
    rows = [(i["name"], i["initial_price"]) for i in found[:10]]
    return Result(["name", "initial_price"], rows)


@registry.add(
    "top_bids_per_item",
    tables=("bids", "items"),
    clauses=("Project", "Join", "Group By", "Order By", "Limit"),
)
def top_bids_per_item(db: Database) -> Result:
    items_by_id = index_rows(db.scan("items"), "id")
    best: dict[str, float] = {}
    for bid in db.scan("bids"):
        for item in items_by_id.get(bid["item_id"], ()):
            name = item["name"]
            if name not in best or bid["bid"] > best[name]:
                best[name] = bid["bid"]
    rows = list(best.items())
    rows.sort(key=lambda r: r[0])
    rows.sort(key=lambda r: r[1], reverse=True)
    return Result(["name", "max_bid"], rows[:10])


@registry.add(
    "users_by_region",
    tables=("users", "regions"),
    clauses=("Filter", "Project", "Join", "Order By", "Limit"),
)
def users_by_region(db: Database) -> Result:
    east = index_rows(
        (r for r in db.scan("regions") if r["name"] == "East"), "id"
    )
    found = [
        u
        for u in db.scan("users")
        for _region in east.get(u["region_id"], ())
    ]
    found.sort(key=lambda u: u["rating"], reverse=True)
    rows = [(u["nickname"], u["rating"]) for u in found[:10]]
    return Result(["nickname", "rating"], rows)


@registry.add(
    "active_items",
    tables=("items",),
    clauses=("Filter", "Project", "Order By"),
)
def active_items(db: Database) -> Result:
    cutoff = datetime.date(2020, 7, 1)
    active = [i for i in db.scan("items") if i["end_date"] >= cutoff]
    active.sort(key=lambda i: i["end_date"])
    rows = [(i["name"], i["end_date"]) for i in active]
    return Result(["name", "end_date"], rows)


@registry.add(
    "bid_statistics",
    tables=("bids",),
    clauses=("Filter", "Project", "Aggregation"),
)
def bid_statistics(db: Database) -> Result:
    count = 0
    total = 0.0
    biggest = None
    for bid in db.scan("bids"):
        if bid["qty"] > 3:
            continue
        count += 1
        total += bid["bid"]
        if biggest is None or bid["bid"] > biggest:
            biggest = bid["bid"]
    average = total / count if count else None
    return Result(["bids", "avg_bid", "max_bid"], [(count, average, biggest)])


@registry.add(
    "seller_item_counts",
    tables=("items", "users"),
    clauses=("Project", "Join", "Group By", "Order By", "Limit"),
)
def seller_item_counts(db: Database) -> Result:
    users_by_id = index_rows(db.scan("users"), "id")
    counts: dict[str, int] = {}
    for item in db.scan("items"):
        for user in users_by_id.get(item["seller_id"], ()):
            counts[user["nickname"]] = counts.get(user["nickname"], 0) + 1
    rows = list(counts.items())
    rows.sort(key=lambda r: r[0])
    rows.sort(key=lambda r: r[1], reverse=True)
    return Result(["nickname", "items_for_sale"], rows[:10])


@registry.add(
    "region_user_counts",
    tables=("users", "regions"),
    clauses=("Project", "Join", "Group By"),
)
def region_user_counts(db: Database) -> Result:
    regions_by_id = index_rows(db.scan("regions"), "id")
    counts: dict[str, int] = {}
    for user in db.scan("users"):
        for region in regions_by_id.get(user["region_id"], ()):
            counts[region["name"]] = counts.get(region["name"], 0) + 1
    return Result(["name", "users"], list(counts.items()))


@registry.add(
    "high_value_bids",
    tables=("bids",),
    clauses=("Filter", "Project", "Order By"),
)
def high_value_bids(db: Database) -> Result:
    big = [b for b in db.scan("bids") if b["bid"] >= 500.0]
    big.sort(key=lambda b: b["bid"], reverse=True)
    rows = [(b["bid"], b["qty"], b["bid_date"]) for b in big]
    return Result(["bid", "qty", "bid_date"], rows)
