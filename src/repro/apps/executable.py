"""Black-box application executables.

An :class:`Executable` is the ``E`` of the paper: something that can be *run*
against a database and yields a result (or an error, or a timeout).  The
extraction pipeline never looks inside — it only invokes :meth:`run` and
inspects the returned :class:`~repro.engine.result.Result`.

Two concrete flavours are provided here:

* :class:`SQLExecutable` — a hidden SQL query, optionally stored obfuscated
  (the "encrypted stored procedure" scenario);
* :class:`repro.apps.imperative.ImperativeExecutable` — opaque imperative
  code (the Enki/Wilos/RUBiS scenario).

Both honour an execution *timeout budget*: the From-clause extractor runs the
application against a mutated schema and terminates the execution after a
short period if no error surfaces (paper §4.1).  Our in-process stand-in for
wall-clock termination is a deterministic work-unit budget — the engine either
raises :class:`UndefinedTableError` immediately (table referenced) or the run
completes/times out (table not referenced), which is the exact observable
dichotomy the algorithm needs.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Optional

from repro.apps.obfuscation import deobfuscate, obfuscate
from repro.engine.database import Database
from repro.engine.result import Result
from repro.errors import ExecutableTimeoutError
from repro.obs.trace import NULL_TRACER


class InvocationMemo:
    """Memoizes invocation results keyed by database state.

    The key is ``(content fingerprint, timeout)``: a *pure* executable (see
    :attr:`Executable.cacheable`) run twice against byte-identical database
    states must produce the same result, so the second run can skip execution
    entirely — the big wins are repeated baseline probes against the resident
    D¹ state, sentinel re-probes, retry replays after transient faults, and
    checkpoint resume.  Only **successful** results are stored: errors and
    timeouts are semantic signals (a From-clause timeout means "table not
    referenced") whose replay must stay live.

    Memoization elides the *physical* execution only.  Logical accounting —
    invocation counts, budget charges, spans, metrics — still happens on a
    hit, so ``stats.invocations`` is independent of cache temperature.

    ``max_rows`` bounds the fingerprint cost: hashing is O(rows), so states
    larger than the bound bypass the memo (probe states are tiny; the
    original instance is not).  Thread-safe for the probe scheduler.
    """

    __slots__ = ("capacity", "max_rows", "_entries", "_lock", "hits", "misses", "bypasses")

    def __init__(self, capacity: int = 512, max_rows: int = 4096):
        self.capacity = capacity
        self.max_rows = max_rows
        self._entries: OrderedDict[tuple, Result] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.bypasses = 0

    def key_for(self, db: Database, timeout: Optional[float]):
        """The memo key for ``db``'s current state, or None to bypass."""
        if db.total_rows() > self.max_rows:
            with self._lock:
                self.bypasses += 1
            return None
        return (db.fingerprint(), timeout)

    def lookup(self, key) -> Optional[Result]:
        with self._lock:
            result = self._entries.get(key)
            if result is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return result

    def store(self, key, result: Result) -> None:
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def stats(self) -> dict:
        with self._lock:
            total = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "bypasses": self.bypasses,
                "entries": len(self._entries),
                "hit_rate": (self.hits / total) if total else 0.0,
            }


class Executable:
    """Base class for opaque applications."""

    #: human-readable label for reports
    name: str = "app"

    #: True when :meth:`run` is a pure function of the database state —
    #: deterministic, read-only, no out-of-band effects — making its results
    #: safe to memoize by content fingerprint.  Conservative default: only
    #: :class:`SQLExecutable` (a single SELECT) opts in; imperative and
    #: fault-injecting flavours stay uncached.
    cacheable: bool = False

    def __init__(self):
        self.invocation_count = 0
        self.total_runtime = 0.0
        #: optional :class:`InvocationMemo`, attached by the session when
        #: invocation caching is configured and the flavour is cacheable.
        self.memo: Optional[InvocationMemo] = None
        #: guards the counters above: scheduler worker threads run the
        #: executable concurrently.
        self._counter_lock = threading.Lock()
        #: the ``invocation`` span of the most recent traced :meth:`run`
        #: (``None`` untraced).  Callers that need to tag the invocation
        #: after it completed — :func:`run_with_deadline` discarding an
        #: overrun — use this instead of scanning the tracer's span list,
        #: which can land on a *different* invocation when runs nest.
        self.last_span = None

    def run(self, db: Database, timeout: Optional[float] = None) -> Result:
        """Execute the hidden logic against ``db`` and return its result.

        When ``timeout`` is given and nobody has armed the engine's
        cooperative deadline yet, this arms it — so a bare
        ``executable.run(db, timeout=...)`` call honours the timeout for
        *every* executable flavour, not just callers that pre-set
        ``db.deadline`` themselves.  The invocation is counted even when the
        application raises, keeping ``invocation_count`` consistent with the
        ``invocations_total`` metric.

        When ``db`` carries an enabled tracer the invocation opens an
        ``invocation`` span (engine queries issued by the hidden logic nest
        beneath it); with the default null tracer this is the bare fast path.

        When an :class:`InvocationMemo` is attached (and the database is not
        in access-trace mode, whose whole point is observing the execution),
        the physical execution is skipped on a state match — everything else
        about the invocation (counting, span, metrics) happens as usual.
        """
        with self._counter_lock:
            self.invocation_count += 1
        self.last_span = None
        tracer = getattr(db, "tracer", NULL_TRACER)
        memo = self.memo if self.cacheable else None
        memo_key = None
        if memo is not None and not getattr(db, "trace_access", False):
            memo_key = memo.key_for(db, timeout)
        owns_deadline = (
            timeout is not None and getattr(db, "deadline", None) is None
        )
        started = time.perf_counter()
        if owns_deadline:
            db.deadline = started + timeout
        try:
            if not tracer.enabled:
                try:
                    return self._execute_memoized(db, timeout, memo, memo_key)
                finally:
                    with self._counter_lock:
                        self.total_runtime += time.perf_counter() - started
            with tracer.span(self.name, kind="invocation") as span:
                self.last_span = span
                span.set_tags(executable=self.name, db_rows=db.total_rows())
                if tracer.metrics is not None:
                    tracer.metrics.counter("invocations_total").inc()
                try:
                    return self._execute_memoized(db, timeout, memo, memo_key, span)
                finally:
                    elapsed = time.perf_counter() - started
                    with self._counter_lock:
                        self.total_runtime += elapsed
                    if tracer.metrics is not None:
                        tracer.metrics.histogram(
                            "invocation_latency_seconds"
                        ).observe(elapsed)
        finally:
            if owns_deadline:
                db.deadline = None

    def _execute_memoized(
        self, db, timeout, memo, memo_key, span=None
    ) -> Result:
        # Expose cache/fingerprint provenance for this run on the database
        # object (private to the invoking thread: the silo sequentially, a
        # replica per scheduler task) — the session's evidence recorder reads
        # it back without recomputing the fingerprint.
        db.last_invocation = {
            "cached": False,
            "fingerprint": memo_key[0] if memo_key is not None else "",
        }
        if memo_key is not None:
            cached = memo.lookup(memo_key)
            if cached is not None:
                db.last_invocation["cached"] = True
                if span is not None:
                    span.set_tag("invocation_cache", "hit")
                return cached
            if span is not None:
                span.set_tag("invocation_cache", "miss")
        result = self._execute(db, timeout)
        if memo_key is not None:
            memo.store(memo_key, result)
        return result

    def probe(self, db: Database, timeout: Optional[float] = None) -> Result:
        """Execute with **no accounting whatsoever** — no invocation count,
        span, metric, or memo traffic.

        This is the probe scheduler's speculation primitive: speculative
        executions may be discarded, so they must be invisible to every
        logical counter; the scheduler charges consumed probes itself.  The
        cooperative deadline is still armed so timeouts behave identically
        to a counted run.
        """
        owns_deadline = (
            timeout is not None and getattr(db, "deadline", None) is None
        )
        if owns_deadline:
            db.deadline = time.perf_counter() + timeout
        try:
            return self._execute(db, timeout)
        finally:
            if owns_deadline:
                db.deadline = None

    def charge_logical(self, elapsed: float = 0.0) -> None:
        """Account one *logical* invocation whose physical execution happened
        elsewhere (a consumed speculative probe).  Keeps ``invocation_count``
        equal to the serial schedule's count."""
        with self._counter_lock:
            self.invocation_count += 1
            self.total_runtime += elapsed

    def _execute(self, db: Database, timeout: Optional[float]) -> Result:
        raise NotImplementedError

    def __getstate__(self):
        # Spans belong to the process that traced them; an executable shipped
        # to an isolation worker must not drag its tracer state along.  Locks
        # are unpicklable and the memo is supervisor-side state — both are
        # rebuilt/cleared on the worker.
        state = self.__dict__.copy()
        state["last_span"] = None
        state["memo"] = None
        state.pop("_counter_lock", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._counter_lock = threading.Lock()

    def reset_counters(self) -> None:
        self.invocation_count = 0
        self.total_runtime = 0.0


class SQLExecutable(Executable):
    """An application concealing a single SQL query.

    With ``obfuscate=True`` the query text is stored only as an opaque blob
    (see :mod:`repro.apps.obfuscation`); the plaintext is reconstructed
    transiently inside :meth:`run`, mirroring encrypted stored procedures
    whose plans and logs are blocked from inspection.
    """

    #: a single SELECT: deterministic and read-only, so memoizable by state
    cacheable = True

    def __init__(self, sql: str, obfuscate_text: bool = True, name: str = "hidden-sql"):
        super().__init__()
        self.name = name
        self._obfuscated = obfuscate_text
        if obfuscate_text:
            self._blob = obfuscate(sql)
        else:
            self._blob = sql

    def _execute(self, db: Database, timeout: Optional[float]) -> Result:
        sql = deobfuscate(self._blob) if self._obfuscated else self._blob
        return db.execute(sql)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SQLExecutable {self.name} (obfuscated={self._obfuscated})>"


class CallableExecutable(Executable):
    """Wraps an arbitrary ``fn(db) -> Result`` callable as an executable.

    The ``timeout`` handed to :meth:`run` is honoured through the engine's
    cooperative deadline (armed by the base class): a callable that scans or
    queries through ``db`` is cut short mid-iteration exactly like a hidden
    SQL query, instead of the timeout being silently dropped.
    """

    def __init__(self, fn: Callable[[Database], Result], name: str = "callable-app"):
        super().__init__()
        self._fn = fn
        self.name = name

    def _execute(self, db: Database, timeout: Optional[float]) -> Result:
        return self._fn(db)


def run_with_deadline(executable: Executable, db: Database, timeout: float) -> Result:
    """Run and enforce a wall-clock deadline after the fact.

    In-process execution cannot be preempted portably; instead callers treat
    an over-deadline completion as a timeout, which is indistinguishable from
    the paper's "terminate after a short timeout period" for our purposes.

    A run cut short this way counts toward ``invocation_timeouts_total`` and
    its invocation span is tagged ``timed_out`` — the completion already
    happened, so without the tag the trace would show a successful run that
    the caller in fact discarded.

    The timeout path rolls the database back to its pre-run state: a run
    discarded for overrunning (or cut short by the cooperative deadline
    mid-statement) must not leave partially-applied DML behind, so a retry
    starts from clean state.
    """
    tracer = getattr(db, "tracer", NULL_TRACER)
    token = db.snapshot() if hasattr(db, "snapshot") else None
    started = time.perf_counter()
    try:
        result = executable.run(db, timeout=timeout)
    except ExecutableTimeoutError:
        if token is not None:
            db.restore(token)
        raise
    if time.perf_counter() - started > timeout:
        if token is not None:
            db.restore(token)
        if tracer.metrics is not None:
            tracer.metrics.counter("invocation_timeouts_total").inc()
        # The invocation span has already closed; the executable exposes it
        # directly, so exactly *this* run is tagged (scanning the tracer's
        # span list can land on a different invocation when runs nest or
        # interleave).
        span = getattr(executable, "last_span", None)
        if span is not None:
            span.set_tags(timed_out=True, error="ExecutableTimeoutError")
        raise ExecutableTimeoutError(
            f"application {executable.name!r} exceeded {timeout:.3f}s deadline"
        )
    return result
