"""Black-box application executables.

An :class:`Executable` is the ``E`` of the paper: something that can be *run*
against a database and yields a result (or an error, or a timeout).  The
extraction pipeline never looks inside — it only invokes :meth:`run` and
inspects the returned :class:`~repro.engine.result.Result`.

Two concrete flavours are provided here:

* :class:`SQLExecutable` — a hidden SQL query, optionally stored obfuscated
  (the "encrypted stored procedure" scenario);
* :class:`repro.apps.imperative.ImperativeExecutable` — opaque imperative
  code (the Enki/Wilos/RUBiS scenario).

Both honour an execution *timeout budget*: the From-clause extractor runs the
application against a mutated schema and terminates the execution after a
short period if no error surfaces (paper §4.1).  Our in-process stand-in for
wall-clock termination is a deterministic work-unit budget — the engine either
raises :class:`UndefinedTableError` immediately (table referenced) or the run
completes/times out (table not referenced), which is the exact observable
dichotomy the algorithm needs.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.apps.obfuscation import deobfuscate, obfuscate
from repro.engine.database import Database
from repro.engine.result import Result
from repro.errors import ExecutableTimeoutError
from repro.obs.trace import NULL_TRACER


class Executable:
    """Base class for opaque applications."""

    #: human-readable label for reports
    name: str = "app"

    def __init__(self):
        self.invocation_count = 0
        self.total_runtime = 0.0
        #: the ``invocation`` span of the most recent traced :meth:`run`
        #: (``None`` untraced).  Callers that need to tag the invocation
        #: after it completed — :func:`run_with_deadline` discarding an
        #: overrun — use this instead of scanning the tracer's span list,
        #: which can land on a *different* invocation when runs nest.
        self.last_span = None

    def run(self, db: Database, timeout: Optional[float] = None) -> Result:
        """Execute the hidden logic against ``db`` and return its result.

        When ``timeout`` is given and nobody has armed the engine's
        cooperative deadline yet, this arms it — so a bare
        ``executable.run(db, timeout=...)`` call honours the timeout for
        *every* executable flavour, not just callers that pre-set
        ``db.deadline`` themselves.  The invocation is counted even when the
        application raises, keeping ``invocation_count`` consistent with the
        ``invocations_total`` metric.

        When ``db`` carries an enabled tracer the invocation opens an
        ``invocation`` span (engine queries issued by the hidden logic nest
        beneath it); with the default null tracer this is the bare fast path.
        """
        self.invocation_count += 1
        self.last_span = None
        tracer = getattr(db, "tracer", NULL_TRACER)
        owns_deadline = (
            timeout is not None and getattr(db, "deadline", None) is None
        )
        started = time.perf_counter()
        if owns_deadline:
            db.deadline = started + timeout
        try:
            if not tracer.enabled:
                try:
                    return self._execute(db, timeout)
                finally:
                    self.total_runtime += time.perf_counter() - started
            with tracer.span(self.name, kind="invocation") as span:
                self.last_span = span
                span.set_tags(executable=self.name, db_rows=db.total_rows())
                if tracer.metrics is not None:
                    tracer.metrics.counter("invocations_total").inc()
                try:
                    return self._execute(db, timeout)
                finally:
                    elapsed = time.perf_counter() - started
                    self.total_runtime += elapsed
                    if tracer.metrics is not None:
                        tracer.metrics.histogram(
                            "invocation_latency_seconds"
                        ).observe(elapsed)
        finally:
            if owns_deadline:
                db.deadline = None

    def _execute(self, db: Database, timeout: Optional[float]) -> Result:
        raise NotImplementedError

    def __getstate__(self):
        # Spans belong to the process that traced them; an executable shipped
        # to an isolation worker must not drag its tracer state along.
        state = self.__dict__.copy()
        state["last_span"] = None
        return state

    def reset_counters(self) -> None:
        self.invocation_count = 0
        self.total_runtime = 0.0


class SQLExecutable(Executable):
    """An application concealing a single SQL query.

    With ``obfuscate=True`` the query text is stored only as an opaque blob
    (see :mod:`repro.apps.obfuscation`); the plaintext is reconstructed
    transiently inside :meth:`run`, mirroring encrypted stored procedures
    whose plans and logs are blocked from inspection.
    """

    def __init__(self, sql: str, obfuscate_text: bool = True, name: str = "hidden-sql"):
        super().__init__()
        self.name = name
        self._obfuscated = obfuscate_text
        if obfuscate_text:
            self._blob = obfuscate(sql)
        else:
            self._blob = sql

    def _execute(self, db: Database, timeout: Optional[float]) -> Result:
        sql = deobfuscate(self._blob) if self._obfuscated else self._blob
        return db.execute(sql)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SQLExecutable {self.name} (obfuscated={self._obfuscated})>"


class CallableExecutable(Executable):
    """Wraps an arbitrary ``fn(db) -> Result`` callable as an executable.

    The ``timeout`` handed to :meth:`run` is honoured through the engine's
    cooperative deadline (armed by the base class): a callable that scans or
    queries through ``db`` is cut short mid-iteration exactly like a hidden
    SQL query, instead of the timeout being silently dropped.
    """

    def __init__(self, fn: Callable[[Database], Result], name: str = "callable-app"):
        super().__init__()
        self._fn = fn
        self.name = name

    def _execute(self, db: Database, timeout: Optional[float]) -> Result:
        return self._fn(db)


def run_with_deadline(executable: Executable, db: Database, timeout: float) -> Result:
    """Run and enforce a wall-clock deadline after the fact.

    In-process execution cannot be preempted portably; instead callers treat
    an over-deadline completion as a timeout, which is indistinguishable from
    the paper's "terminate after a short timeout period" for our purposes.

    A run cut short this way counts toward ``invocation_timeouts_total`` and
    its invocation span is tagged ``timed_out`` — the completion already
    happened, so without the tag the trace would show a successful run that
    the caller in fact discarded.

    The timeout path rolls the database back to its pre-run state: a run
    discarded for overrunning (or cut short by the cooperative deadline
    mid-statement) must not leave partially-applied DML behind, so a retry
    starts from clean state.
    """
    tracer = getattr(db, "tracer", NULL_TRACER)
    token = db.snapshot() if hasattr(db, "snapshot") else None
    started = time.perf_counter()
    try:
        result = executable.run(db, timeout=timeout)
    except ExecutableTimeoutError:
        if token is not None:
            db.restore(token)
        raise
    if time.perf_counter() - started > timeout:
        if token is not None:
            db.restore(token)
        if tracer.metrics is not None:
            tracer.metrics.counter("invocation_timeouts_total").inc()
        # The invocation span has already closed; the executable exposes it
        # directly, so exactly *this* run is tagged (scanning the tracer's
        # span list can land on a different invocation when runs nest or
        # interleave).
        span = getattr(executable, "last_span", None)
        if span is not None:
            span.set_tags(timed_out=True, error="ExecutableTimeoutError")
        raise ExecutableTimeoutError(
            f"application {executable.name!r} exceeded {timeout:.3f}s deadline"
        )
    return result
