"""Registry model for imperative application commands."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.apps.imperative import ImperativeExecutable
from repro.engine.database import Database
from repro.engine.result import Result


@dataclass(frozen=True)
class AppCommand:
    """One application command: opaque imperative logic plus test metadata.

    ``tables`` and ``clauses`` are ground truth used only by tests and
    benchmark reports — the extractor never sees them.
    """

    name: str
    fn: Callable[[Database], Result]
    tables: tuple[str, ...]
    clauses: tuple[str, ...]
    in_scope: bool = True
    note: str = ""

    def executable(self) -> ImperativeExecutable:
        return ImperativeExecutable(self.fn, name=self.name)


class CommandRegistry:
    """Collects an application's commands and their scope partition."""

    def __init__(self, app_name: str):
        self.app_name = app_name
        self.commands: dict[str, AppCommand] = {}

    def add(
        self,
        name: str,
        tables: tuple[str, ...],
        clauses: tuple[str, ...],
        in_scope: bool = True,
        note: str = "",
    ):
        def decorator(fn):
            self.commands[name] = AppCommand(
                name=name,
                fn=fn,
                tables=tables,
                clauses=clauses,
                in_scope=in_scope,
                note=note,
            )
            return fn

        return decorator

    def in_scope(self) -> list[AppCommand]:
        return [c for c in self.commands.values() if c.in_scope]

    def out_of_scope(self) -> list[AppCommand]:
        return [c for c in self.commands.values() if not c.in_scope]

    def get(self, name: str) -> AppCommand:
        return self.commands[name]
