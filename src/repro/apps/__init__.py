"""Black-box application layer: hidden SQL and imperative executables."""

from repro.apps.executable import CallableExecutable, Executable, SQLExecutable
from repro.apps.imperative import ImperativeExecutable

__all__ = [
    "CallableExecutable",
    "Executable",
    "ImperativeExecutable",
    "SQLExecutable",
]
