"""Enki — imperative re-implementation of the Rails blogging app (§6.3).

Seventeen commands mirroring Enki's controller actions, written the way a
Rails developer would if the ORM were taken away: row loops, hash-map joins,
manual sorts.  Fourteen are expressible as single EQC queries (the paper's
in-scope count); the other three demonstrate the out-of-scope boundary
(a key-column filter, a NULL predicate, a UNION).

The flagship command is :func:`find_recent_by_tag` — the paper's Figure 12
example ("get latest posts by tag").
"""

from __future__ import annotations

import datetime

from repro.apps.imperative import index_rows
from repro.apps.registry import CommandRegistry
from repro.engine.database import Database
from repro.engine.result import Result

registry = CommandRegistry("enki")

_CUTOFF = datetime.date(2021, 1, 1)


@registry.add(
    "find_recent_by_tag",
    tables=("posts", "taggings", "tags"),
    clauses=("Filter", "Project", "Join", "Order By", "Limit"),
    note="paper Figure 12: 'get latest posts by tag'",
)
def find_recent_by_tag(db: Database) -> Result:
    """Latest five published posts tagged 'ruby'."""
    ruby_tags = index_rows(
        (tag for tag in db.scan("tags") if tag["name"] == "ruby"), "id"
    )
    posts_by_id = index_rows(db.scan("posts"), "id")
    matches = []
    for tagging in db.scan("taggings"):
        for _tag in ruby_tags.get(tagging["tag_id"], ()):
            for post in posts_by_id.get(tagging["post_id"], ()):
                if post["published_at"] > _CUTOFF:
                    continue
                matches.append(post)
    matches.sort(key=lambda p: p["published_at"], reverse=True)
    rows = [(p["title"], p["published_at"]) for p in matches[:5]]
    return Result(["title", "published_at"], rows)


@registry.add(
    "recent_posts",
    tables=("posts",),
    clauses=("Filter", "Project", "Order By", "Limit"),
)
def recent_posts(db: Database) -> Result:
    published = []
    for post in db.scan("posts"):
        if post["published_at"] <= _CUTOFF:
            published.append(post)
    published.sort(key=lambda p: p["published_at"], reverse=True)
    rows = [(p["title"], p["slug"], p["published_at"]) for p in published[:5]]
    return Result(["title", "slug", "published_at"], rows)


@registry.add(
    "post_by_slug",
    tables=("posts",),
    clauses=("Filter", "Project"),
)
def post_by_slug(db: Database) -> Result:
    rows = []
    for post in db.scan("posts"):
        if post["slug"] == "post-number-7":
            rows.append((post["title"], post["body"], post["published_at"]))
    return Result(["title", "body", "published_at"], rows)


@registry.add(
    "comments_by_author",
    tables=("comments",),
    clauses=("Filter", "Project", "Order By"),
)
def comments_by_author(db: Database) -> Result:
    found = []
    for comment in db.scan("comments"):
        if comment["author"] == "ada":
            found.append(comment)
    found.sort(key=lambda c: c["created_at"])
    rows = [(c["body"], c["created_at"]) for c in found]
    return Result(["body", "created_at"], rows)


@registry.add(
    "recent_comments",
    tables=("comments",),
    clauses=("Project", "Order By", "Limit"),
)
def recent_comments(db: Database) -> Result:
    comments = list(db.scan("comments"))
    comments.sort(key=lambda c: c["created_at"], reverse=True)
    rows = [(c["author"], c["body"], c["created_at"]) for c in comments[:10]]
    return Result(["author", "body", "created_at"], rows)


@registry.add(
    "comment_counts_per_post",
    tables=("posts", "comments"),
    clauses=("Project", "Join", "Group By", "Order By"),
)
def comment_counts_per_post(db: Database) -> Result:
    posts_by_id = index_rows(db.scan("posts"), "id")
    counts: dict[int, int] = {}
    for comment in db.scan("comments"):
        for _post in posts_by_id.get(comment["post_id"], ()):
            counts[comment["post_id"]] = counts.get(comment["post_id"], 0) + 1
    rows = [(post_id, n) for post_id, n in counts.items()]
    rows.sort(key=lambda r: r[0])
    return Result(["post_id", "comments"], rows)


@registry.add(
    "tag_cloud",
    tables=("tags", "taggings"),
    clauses=("Project", "Join", "Group By", "Order By", "Limit"),
)
def tag_cloud(db: Database) -> Result:
    tags_by_id = index_rows(db.scan("tags"), "id")
    counts: dict[str, int] = {}
    for tagging in db.scan("taggings"):
        for tag in tags_by_id.get(tagging["tag_id"], ()):
            counts[tag["name"]] = counts.get(tag["name"], 0) + 1
    rows = list(counts.items())
    rows.sort(key=lambda r: r[0])
    rows.sort(key=lambda r: r[1], reverse=True)
    return Result(["name", "uses"], rows[:6])


@registry.add(
    "pages_index",
    tables=("pages",),
    clauses=("Project", "Order By"),
)
def pages_index(db: Database) -> Result:
    pages = list(db.scan("pages"))
    pages.sort(key=lambda p: p["created_at"], reverse=True)
    rows = [(p["title"], p["slug"], p["created_at"]) for p in pages]
    return Result(["title", "slug", "created_at"], rows)


@registry.add(
    "popular_posts",
    tables=("posts",),
    clauses=("Filter", "Project", "Order By", "Limit"),
)
def popular_posts(db: Database) -> Result:
    popular = []
    for post in db.scan("posts"):
        if post["approved_comments_count"] >= 5:
            popular.append(post)
    popular.sort(key=lambda p: p["approved_comments_count"], reverse=True)
    rows = [(p["title"], p["approved_comments_count"]) for p in popular[:10]]
    return Result(["title", "approved_comments_count"], rows)


@registry.add(
    "archive_posts",
    tables=("posts",),
    clauses=("Filter", "Project", "Order By"),
)
def archive_posts(db: Database) -> Result:
    window = []
    for post in db.scan("posts"):
        if datetime.date(2019, 6, 1) <= post["published_at"] <= datetime.date(2020, 6, 1):
            window.append(post)
    window.sort(key=lambda p: p["published_at"])
    rows = [(p["title"], p["published_at"]) for p in window]
    return Result(["title", "published_at"], rows)


@registry.add(
    "tagged_post_titles",
    tables=("posts", "taggings", "tags"),
    clauses=("Filter", "Project", "Join"),
)
def tagged_post_titles(db: Database) -> Result:
    matching_tags = index_rows(
        (tag for tag in db.scan("tags") if tag["name"].startswith("ru")), "id"
    )  # like 'ru%'
    posts_by_id = index_rows(db.scan("posts"), "id")
    rows = []
    for tagging in db.scan("taggings"):
        for _tag in matching_tags.get(tagging["tag_id"], ()):
            for post in posts_by_id.get(tagging["post_id"], ()):
                rows.append((post["title"],))
    return Result(["title"], rows)


@registry.add(
    "search_posts",
    tables=("posts",),
    clauses=("Filter", "Project"),
)
def search_posts(db: Database) -> Result:
    rows = []
    for post in db.scan("posts"):
        if "lorem" in post["body"]:  # like '%lorem%'
            rows.append((post["title"], post["slug"]))
    return Result(["title", "slug"], rows)


@registry.add(
    "comment_stats",
    tables=("comments",),
    clauses=("Project", "Aggregation"),
)
def comment_stats(db: Database) -> Result:
    count = 0
    earliest = latest = None
    for comment in db.scan("comments"):
        count += 1
        when = comment["created_at"]
        if earliest is None or when < earliest:
            earliest = when
        if latest is None or when > latest:
            latest = when
    return Result(["total", "first_comment", "last_comment"], [(count, earliest, latest)])


@registry.add(
    "daily_post_counts",
    tables=("posts",),
    clauses=("Project", "Group By", "Order By"),
)
def daily_post_counts(db: Database) -> Result:
    counts: dict[datetime.date, int] = {}
    for post in db.scan("posts"):
        day = post["published_at"]
        counts[day] = counts.get(day, 0) + 1
    rows = sorted(counts.items())
    return Result(["published_at", "posts"], rows)


# --- out-of-scope commands (the 3 of 17 the paper could not extract) ----------


@registry.add(
    "comments_for_post",
    tables=("comments",),
    clauses=("Filter", "Project"),
    in_scope=False,
    note="filters on a key column (post_id), which EQC excludes",
)
def comments_for_post(db: Database) -> Result:
    rows = []
    for comment in db.scan("comments"):
        if comment["post_id"] == 3:
            rows.append((comment["author"], comment["body"]))
    return Result(["author", "body"], rows)


@registry.add(
    "draft_posts",
    tables=("posts",),
    clauses=("Filter", "Project"),
    in_scope=False,
    note="NULL predicate (published_at IS NULL) is outside EQC¯H",
)
def draft_posts(db: Database) -> Result:
    rows = []
    for post in db.scan("posts"):
        if post["published_at"] is None:
            rows.append((post["title"],))
    return Result(["title"], rows)


@registry.add(
    "posts_and_pages",
    tables=("posts", "pages"),
    clauses=("Project", "Union"),
    in_scope=False,
    note="UNION of two tables cannot be a single-block EQC query",
)
def posts_and_pages(db: Database) -> Result:
    rows = [(p["title"],) for p in db.scan("posts")]
    rows.extend((p["title"],) for p in db.scan("pages"))
    return Result(["title"], rows)
