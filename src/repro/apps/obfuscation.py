"""Query-text obfuscation.

Mirrors the "explicit opacity" scenarios of §2.1: the application carries its
SQL only in an encrypted/encoded form, so no string-extraction tool (nor a
grep over this repository's object state) can reveal it.  A keyed XOR stream
with hex encoding is deliberately simple — the point is opacity of the stored
artifact, not cryptographic strength; UNMASQUE never decodes it, it only ever
observes results.
"""

from __future__ import annotations

import hashlib
import itertools

_DEFAULT_KEY = b"unmasque-repro"


def _keystream(key: bytes):
    """An infinite byte stream derived from repeated hashing of the key."""
    block = key
    while True:
        block = hashlib.sha256(block).digest()
        yield from block


def obfuscate(text: str, key: bytes = _DEFAULT_KEY) -> str:
    """Encode ``text`` into an opaque hex blob."""
    data = text.encode("utf-8")
    stream = _keystream(key)
    masked = bytes(b ^ k for b, k in zip(data, stream))
    return masked.hex()


def deobfuscate(blob: str, key: bytes = _DEFAULT_KEY) -> str:
    """Decode a blob produced by :func:`obfuscate`."""
    masked = bytes.fromhex(blob)
    stream = _keystream(key)
    data = bytes(b ^ k for b, k in zip(masked, stream))
    return data.decode("utf-8")


def hex_encode_sql(text: str) -> str:
    """Plain HEX encoding, as used by SQL-injection payloads (§2.1)."""
    return text.encode("utf-8").hex()


def hex_decode_sql(blob: str) -> str:
    return bytes.fromhex(blob).decode("utf-8")
