"""Fault tolerance for long extractions.

Extraction is active learning against a black box (paper §3): thousands of
application invocations, any of which can fail transiently, hang, or return
garbage in a production deployment.  This package makes the pipeline survive
that reality:

* :mod:`repro.resilience.faults` — a seeded, deterministic chaos layer
  (:class:`FaultPlan` profiles + :class:`FaultyExecutable` wrapper) used by
  tests and the ``repro chaos`` CLI command to *prove* survival;
* :mod:`repro.resilience.retry` — :class:`RetryPolicy`: exponential backoff
  with seeded jitter and retryable-vs-fatal classification over the
  :mod:`repro.errors` hierarchy, applied at the
  :class:`~repro.core.session.ExtractionSession` invocation boundary;
* :mod:`repro.resilience.checkpoint` — per-module checkpoint/resume: the
  pipeline serialises its partial :class:`~repro.core.model.ExtractedQuery`
  plus session state after every module, so a killed run restarts from the
  last completed module instead of from zero;
* :mod:`repro.resilience.serde` — the JSON codec for extraction state
  (filters, scalar functions, results, D^1 rows, RNG state);
* :mod:`repro.resilience.budgets` — :class:`ResourceBudget` watchdog
  enforcing per-module and per-run limits (invocations, rows scanned,
  synthetic cells, wall-clock) with a structured
  :class:`~repro.errors.BudgetExhausted` that flows into degradation.

Best-effort degradation (recording a failed non-essential module instead of
aborting) lives in :mod:`repro.core.pipeline`, gated by
``ExtractionConfig.fail_fast``.

Exports are resolved lazily (PEP 562): dependency-free submodules like
:mod:`repro.resilience.diskfaults` are imported by :mod:`repro.obs` while
the engine is still initializing, and an eager ``faults`` import here would
close that cycle on a half-initialized module.
"""

__all__ = [
    "BudgetSpec",
    "CheckpointStore",
    "FAULT_PROFILES",
    "FaultPlan",
    "FaultyExecutable",
    "InjectedCrashError",
    "ResourceBudget",
    "RetryPolicy",
    "restore_session",
    "snapshot_session",
]

_EXPORTS = {
    "BudgetSpec": ("repro.resilience.budgets", "BudgetSpec"),
    "ResourceBudget": ("repro.resilience.budgets", "ResourceBudget"),
    "CheckpointStore": ("repro.resilience.checkpoint", "CheckpointStore"),
    "restore_session": ("repro.resilience.checkpoint", "restore_session"),
    "snapshot_session": ("repro.resilience.checkpoint", "snapshot_session"),
    "FAULT_PROFILES": ("repro.resilience.faults", "FAULT_PROFILES"),
    "FaultPlan": ("repro.resilience.faults", "FaultPlan"),
    "FaultyExecutable": ("repro.resilience.faults", "FaultyExecutable"),
    "InjectedCrashError": ("repro.resilience.faults", "InjectedCrashError"),
    "RetryPolicy": ("repro.resilience.retry", "RetryPolicy"),
}


def __getattr__(name: str):
    try:
        module_name, attribute = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attribute)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
