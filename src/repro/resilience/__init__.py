"""Fault tolerance for long extractions.

Extraction is active learning against a black box (paper §3): thousands of
application invocations, any of which can fail transiently, hang, or return
garbage in a production deployment.  This package makes the pipeline survive
that reality:

* :mod:`repro.resilience.faults` — a seeded, deterministic chaos layer
  (:class:`FaultPlan` profiles + :class:`FaultyExecutable` wrapper) used by
  tests and the ``repro chaos`` CLI command to *prove* survival;
* :mod:`repro.resilience.retry` — :class:`RetryPolicy`: exponential backoff
  with seeded jitter and retryable-vs-fatal classification over the
  :mod:`repro.errors` hierarchy, applied at the
  :class:`~repro.core.session.ExtractionSession` invocation boundary;
* :mod:`repro.resilience.checkpoint` — per-module checkpoint/resume: the
  pipeline serialises its partial :class:`~repro.core.model.ExtractedQuery`
  plus session state after every module, so a killed run restarts from the
  last completed module instead of from zero;
* :mod:`repro.resilience.serde` — the JSON codec for extraction state
  (filters, scalar functions, results, D^1 rows, RNG state);
* :mod:`repro.resilience.budgets` — :class:`ResourceBudget` watchdog
  enforcing per-module and per-run limits (invocations, rows scanned,
  synthetic cells, wall-clock) with a structured
  :class:`~repro.errors.BudgetExhausted` that flows into degradation.

Best-effort degradation (recording a failed non-essential module instead of
aborting) lives in :mod:`repro.core.pipeline`, gated by
``ExtractionConfig.fail_fast``.
"""

from repro.resilience.budgets import BudgetSpec, ResourceBudget
from repro.resilience.checkpoint import CheckpointStore, restore_session, snapshot_session
from repro.resilience.faults import (
    FAULT_PROFILES,
    FaultPlan,
    FaultyExecutable,
    InjectedCrashError,
)
from repro.resilience.retry import RetryPolicy

__all__ = [
    "BudgetSpec",
    "CheckpointStore",
    "FAULT_PROFILES",
    "FaultPlan",
    "FaultyExecutable",
    "InjectedCrashError",
    "ResourceBudget",
    "RetryPolicy",
    "restore_session",
    "snapshot_session",
]
