"""Storage-fault injection for the durable stores (DESIGN.md §5.17).

The job journal, the provenance ledger, and the checkpoint store all talk to
disk through a tiny filesystem seam — :class:`RealFS` in production,
:class:`FaultyFS` under chaos.  The shim injects one seeded fault from a
small, brutal taxonomy:

* ``torn_write``   — a crash mid-write leaves a *prefix + garbage* file
* ``short_write``  — a crash mid-write leaves a truncated prefix
* ``enospc``       — the filesystem is full (``OSError(ENOSPC)`` /
                     ``sqlite3.OperationalError: database or disk is full``)
* ``eio``          — the device returns an I/O error
* ``lost_fsync``   — the write "succeeded" but never reached the platter;
                     power is lost, the previous durable content survives

Crash-modelling faults raise :class:`InjectedStorageCrash`, which is
deliberately *not* a :class:`~repro.errors.ReproError` (same reasoning as
``InjectedCrashError`` in :mod:`repro.resilience.faults`): nothing in the
pipeline may catch-and-degrade a power loss — the process dies and a later
process must recover from whatever bytes survived.

The shim fires exactly once (the ``at_op``'th matching operation) so tests
and the ``chaos --profile disk`` harness stay deterministic.
"""

from __future__ import annotations

import errno
import hashlib
import os
import random
import sqlite3
from pathlib import Path

#: every fault class the disk-chaos profile must survive
DISK_FAULT_CLASSES = ("torn_write", "short_write", "enospc", "eio", "lost_fsync")

#: OS error numbers classified as "the storage layer failed", not a code bug
STORAGE_ERRNOS = frozenset({errno.ENOSPC, errno.EDQUOT, errno.EIO})


class InjectedStorageCrash(Exception):
    """Simulated power loss during a storage operation.

    Deliberately not a :class:`~repro.errors.ReproError`: the retry and
    best-effort layers must never swallow it.  The test or chaos harness
    catches it at the very top, abandons the process's in-memory state, and
    re-opens the stores to exercise recovery.
    """


def is_storage_errno(error: OSError) -> bool:
    """Is this OSError a storage-exhaustion/IO failure (vs a code bug)?"""
    return getattr(error, "errno", None) in STORAGE_ERRNOS


def is_sqlite_storage_error(error: sqlite3.Error) -> bool:
    """Does this sqlite3 error report a full or failing disk?"""
    message = str(error).lower()
    return "disk" in message or "database or disk is full" in message


class RealFS:
    """Production filesystem: durable atomic writes, no faults."""

    def write_atomic(self, path, data: bytes) -> None:
        """Write ``data`` to ``path`` via tmp + fsync + rename.

        Unlike a bare ``os.replace`` the temp file is fsynced first, so a
        crash after the rename can never expose a zero-length or partial
        file — the rename only lands durable bytes.
        """
        path = Path(path)
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self._fsync_dir(path.parent)

    def read_bytes(self, path) -> bytes:
        with open(path, "rb") as fh:
            return fh.read()

    # SQLite stores call these around every transaction commit; the real
    # filesystem has nothing to do (sqlite handles its own durability).
    def before_commit(self, store: str) -> None:
        pass

    def after_commit(self, store: str) -> None:
        pass

    @staticmethod
    def _fsync_dir(directory) -> None:
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)


#: module-wide default; stores fall back to this when no shim is injected
REAL_FS = RealFS()


class FaultyFS(RealFS):
    """A :class:`RealFS` that injects exactly one seeded fault.

    ``kind`` is one of :data:`DISK_FAULT_CLASSES`; ``ops`` selects which
    operation family the fault targets (``"write"`` for
    :meth:`write_atomic`, ``"read"`` for :meth:`read_bytes`, ``"commit"``
    for the sqlite commit hooks).  The fault fires on the ``at_op``'th
    matching call and never again, so the store's *recovery* path runs
    against the same shim instance.
    """

    def __init__(self, kind: str, at_op: int = 1, seed: int = 1337,
                 ops: str = "write"):
        if kind not in DISK_FAULT_CLASSES:
            raise ValueError(f"unknown disk fault {kind!r}")
        if ops not in ("write", "read", "commit"):
            raise ValueError(f"unknown op family {ops!r}")
        self.kind = kind
        self.at_op = at_op
        self.seed = seed
        self.ops = ops
        self.op_count = 0
        self.fired = False

    def _arm(self, family: str) -> bool:
        """Count a matching op; True when this one should fault."""
        if self.fired or family != self.ops:
            return False
        self.op_count += 1
        if self.op_count == self.at_op:
            self.fired = True
            return True
        return False

    # -- write path (checkpoint files) ---------------------------------------

    def write_atomic(self, path, data: bytes) -> None:
        if not self._arm("write"):
            super().write_atomic(path, data)
            return
        path = Path(path)
        if self.kind == "enospc":
            raise OSError(errno.ENOSPC, "No space left on device", str(path))
        if self.kind == "eio":
            raise OSError(errno.EIO, "Input/output error", str(path))
        if self.kind == "lost_fsync":
            # The application saw success, the platter never did: previous
            # durable content survives the crash untouched.
            raise InjectedStorageCrash(f"power lost before fsync of {path}")
        rng = random.Random(self.seed)
        keep = len(data) // 3
        if self.kind == "short_write":
            torn = data[:keep]
        else:  # torn_write: prefix + seeded garbage filling the original size
            garbage = bytes(rng.randrange(256) for _ in range(len(data) - keep))
            torn = data[:keep] + garbage
        # A torn write lands *in place of* the real file — the crash happened
        # after the rename but before the data blocks were all durable.
        with open(path, "wb") as fh:
            fh.write(torn)
        raise InjectedStorageCrash(f"torn write crashed mid-replace of {path}")

    # -- read path -----------------------------------------------------------

    def read_bytes(self, path) -> bytes:
        if self._arm("read"):
            if self.kind == "enospc":
                raise OSError(errno.ENOSPC, "No space left on device", str(path))
            if self.kind == "eio":
                raise OSError(errno.EIO, "Input/output error", str(path))
            raise InjectedStorageCrash(f"power lost while reading {path}")
        return super().read_bytes(path)

    # -- sqlite commit path (journal, ledger) --------------------------------

    def before_commit(self, store: str) -> None:
        # Only the errno kinds fault *before* the commit; crash kinds must
        # not consume the op counter here (they fire in after_commit).
        if self.kind in ("enospc", "eio") and self._arm("commit"):
            if self.kind == "enospc":
                raise sqlite3.OperationalError("database or disk is full")
            raise sqlite3.OperationalError("disk I/O error")

    def after_commit(self, store: str) -> None:
        # Crash-class faults land *after* the commit reached the WAL: the
        # transaction is durable, the process is not.
        if self.fired or self.ops != "commit":
            return
        if self.kind in ("torn_write", "short_write", "lost_fsync"):
            # counts against the same op counter as before_commit would
            self.op_count += 1
            if self.op_count >= self.at_op:
                self.fired = True
                raise InjectedStorageCrash(
                    f"process died right after committing to the {store}"
                )


# -- corruption / quarantine helpers ------------------------------------------


def sqlite_is_healthy(path) -> bool:
    """Run ``PRAGMA quick_check`` on a database file; False on corruption."""
    path = Path(path)
    if not path.exists():
        return True
    try:
        conn = sqlite3.connect(path)
        try:
            row = conn.execute("PRAGMA quick_check").fetchone()
            return bool(row) and row[0] == "ok"
        finally:
            conn.close()
    except sqlite3.Error:
        return False


def quarantine_path(path) -> Path:
    """Move a corrupt file (and sqlite WAL/SHM siblings) aside, keep evidence.

    Returns the quarantine destination (``<path>.corrupt-<k>``); never
    raises on a missing source.
    """
    path = Path(path)
    k = 0
    while True:
        destination = path.with_name(f"{path.name}.corrupt-{k}")
        if not destination.exists():
            break
        k += 1
    try:
        os.replace(path, destination)
    except FileNotFoundError:
        pass
    for suffix in ("-wal", "-shm"):
        sibling = path.with_name(path.name + suffix)
        try:
            os.replace(sibling, Path(str(destination) + suffix))
        except FileNotFoundError:
            pass
    return destination


def tear_tail(path, nbytes: int = 512, seed: int = 0) -> None:
    """Overwrite the last ``nbytes`` of a file with seeded garbage.

    Models a torn last page: the kind of damage a power cut leaves in a
    file whose final block was mid-flight.
    """
    path = Path(path)
    size = path.stat().st_size
    nbytes = min(nbytes, size)
    rng = random.Random(seed)
    garbage = bytes(rng.randrange(256) for _ in range(nbytes))
    with open(path, "r+b") as fh:
        fh.seek(size - nbytes)
        fh.write(garbage)


def checksum_hex(data: bytes) -> str:
    """sha-256 hex digest — the checkpoint envelope's integrity check."""
    return hashlib.sha256(data).hexdigest()
