"""JSON codec for extraction state.

Checkpoints must round-trip everything a resumed pipeline needs: the partial
:class:`~repro.core.model.ExtractedQuery`, the single-row database ``D^1``,
captured results, and the session RNG state.  Values are plain JSON where
possible; the only non-JSON types appearing in extraction state are
``datetime.date`` and non-finite floats, encoded as small tagged dicts.
"""

from __future__ import annotations

import datetime
import math
from typing import Any, Optional

from repro.core.model import (
    ExtractedQuery,
    HavingPredicate,
    InListFilter,
    JoinClique,
    MultiRangeFilter,
    NullFilter,
    NumericFilter,
    OrderSpec,
    OutputColumn,
    ScalarFunction,
    TextFilter,
)
from repro.engine.result import Result
from repro.errors import CheckpointError
from repro.sgraph.schema_graph import ColumnNode

# -- scalar values --------------------------------------------------------------


def encode_value(value: Any):
    if isinstance(value, datetime.datetime):  # order matters: datetime is a date
        raise CheckpointError(f"cannot checkpoint datetime value {value!r}")
    if isinstance(value, datetime.date):
        return {"$date": value.isoformat()}
    if isinstance(value, float) and not math.isfinite(value):
        return {"$float": repr(value)}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise CheckpointError(f"cannot checkpoint value of type {type(value).__name__}")


def decode_value(payload: Any):
    if isinstance(payload, dict):
        if "$date" in payload:
            return datetime.date.fromisoformat(payload["$date"])
        if "$float" in payload:
            return float(payload["$float"])
        raise CheckpointError(f"unknown tagged value {payload!r}")
    return payload


def _encode_column(column: Optional[ColumnNode]):
    if column is None:
        return None
    return [column.table, column.column]


def _decode_column(payload) -> Optional[ColumnNode]:
    if payload is None:
        return None
    return ColumnNode(payload[0], payload[1])


# -- filters --------------------------------------------------------------------


def encode_filter(predicate) -> dict:
    if isinstance(predicate, NumericFilter):
        return {
            "kind": "numeric",
            "column": _encode_column(predicate.column),
            "lo": encode_value(predicate.lo),
            "hi": encode_value(predicate.hi),
            "domain_lo": encode_value(predicate.domain_lo),
            "domain_hi": encode_value(predicate.domain_hi),
        }
    if isinstance(predicate, TextFilter):
        return {
            "kind": "text",
            "column": _encode_column(predicate.column),
            "pattern": predicate.pattern,
        }
    if isinstance(predicate, InListFilter):
        return {
            "kind": "in_list",
            "column": _encode_column(predicate.column),
            "values": [encode_value(v) for v in predicate.values],
        }
    if isinstance(predicate, MultiRangeFilter):
        return {
            "kind": "multi_range",
            "column": _encode_column(predicate.column),
            "intervals": [
                [encode_value(lo), encode_value(hi)] for lo, hi in predicate.intervals
            ],
            "domain_lo": encode_value(predicate.domain_lo),
            "domain_hi": encode_value(predicate.domain_hi),
        }
    if isinstance(predicate, NullFilter):
        return {
            "kind": "null",
            "column": _encode_column(predicate.column),
            "negated": predicate.negated,
        }
    raise CheckpointError(f"cannot checkpoint filter {type(predicate).__name__}")


def decode_filter(payload: dict):
    kind = payload.get("kind")
    column = _decode_column(payload["column"])
    if kind == "numeric":
        return NumericFilter(
            column=column,
            lo=decode_value(payload["lo"]),
            hi=decode_value(payload["hi"]),
            domain_lo=decode_value(payload["domain_lo"]),
            domain_hi=decode_value(payload["domain_hi"]),
        )
    if kind == "text":
        return TextFilter(column=column, pattern=payload["pattern"])
    if kind == "in_list":
        return InListFilter(
            column=column,
            values=tuple(decode_value(v) for v in payload["values"]),
        )
    if kind == "multi_range":
        return MultiRangeFilter(
            column=column,
            intervals=tuple(
                (decode_value(lo), decode_value(hi)) for lo, hi in payload["intervals"]
            ),
            domain_lo=decode_value(payload["domain_lo"]),
            domain_hi=decode_value(payload["domain_hi"]),
        )
    if kind == "null":
        return NullFilter(column=column, negated=payload["negated"])
    raise CheckpointError(f"unknown filter kind {kind!r} in checkpoint")


# -- output columns / scalar functions ------------------------------------------


def encode_function(fn: Optional[ScalarFunction]):
    if fn is None:
        return None
    return {
        "deps": [_encode_column(c) for c in fn.deps],
        "coefficients": [
            [list(subset), encode_value(coeff)] for subset, coeff in fn.coefficients
        ],
    }


def decode_function(payload) -> Optional[ScalarFunction]:
    if payload is None:
        return None
    return ScalarFunction(
        deps=tuple(_decode_column(c) for c in payload["deps"]),
        coefficients=tuple(
            (tuple(subset), decode_value(coeff))
            for subset, coeff in payload["coefficients"]
        ),
    )


def encode_output(output: OutputColumn) -> dict:
    return {
        "name": output.name,
        "position": output.position,
        "function": encode_function(output.function),
        "aggregate": output.aggregate,
        "count_star": output.count_star,
    }


def decode_output(payload: dict) -> OutputColumn:
    return OutputColumn(
        name=payload["name"],
        position=payload["position"],
        function=decode_function(payload["function"]),
        aggregate=payload["aggregate"],
        count_star=payload["count_star"],
    )


# -- whole query ----------------------------------------------------------------


def encode_query(query: ExtractedQuery) -> dict:
    return {
        "tables": list(query.tables),
        "join_cliques": [
            [_encode_column(c) for c in clique.sorted_columns()]
            for clique in query.join_cliques
        ],
        "filters": [encode_filter(f) for f in query.filters],
        "outputs": [encode_output(o) for o in query.outputs],
        "group_by": [_encode_column(c) for c in query.group_by],
        "order_by": [
            {"output_name": o.output_name, "descending": o.descending}
            for o in query.order_by
        ],
        "limit": query.limit,
        "having": [
            {
                "aggregate": h.aggregate,
                "column": _encode_column(h.column),
                "lo": encode_value(h.lo),
                "hi": encode_value(h.hi),
                "domain_lo": encode_value(h.domain_lo),
                "domain_hi": encode_value(h.domain_hi),
            }
            for h in query.having
        ],
        "ungrouped_aggregation": query.ungrouped_aggregation,
    }


def decode_query(payload: dict) -> ExtractedQuery:
    return ExtractedQuery(
        tables=list(payload["tables"]),
        join_cliques=[
            JoinClique(columns=frozenset(_decode_column(c) for c in columns))
            for columns in payload["join_cliques"]
        ],
        filters=[decode_filter(f) for f in payload["filters"]],
        outputs=[decode_output(o) for o in payload["outputs"]],
        group_by=[_decode_column(c) for c in payload["group_by"]],
        order_by=[
            OrderSpec(output_name=o["output_name"], descending=o["descending"])
            for o in payload["order_by"]
        ],
        limit=payload["limit"],
        having=[
            HavingPredicate(
                aggregate=h["aggregate"],
                column=_decode_column(h["column"]),
                lo=decode_value(h["lo"]),
                hi=decode_value(h["hi"]),
                domain_lo=decode_value(h["domain_lo"]),
                domain_hi=decode_value(h["domain_hi"]),
            )
            for h in payload["having"]
        ],
        ungrouped_aggregation=payload["ungrouped_aggregation"],
    )


# -- results and rows -----------------------------------------------------------


def encode_result(result: Optional[Result]):
    if result is None:
        return None
    return {
        "columns": list(result.columns),
        "rows": [[encode_value(v) for v in row] for row in result.rows],
    }


def decode_result(payload) -> Optional[Result]:
    if payload is None:
        return None
    return Result(
        payload["columns"],
        [tuple(decode_value(v) for v in row) for row in payload["rows"]],
    )


def encode_rows_by_table(rows: dict[str, tuple]) -> dict:
    return {table: [encode_value(v) for v in row] for table, row in rows.items()}


def decode_rows_by_table(payload: dict) -> dict[str, tuple]:
    return {
        table: tuple(decode_value(v) for v in row) for table, row in payload.items()
    }


def encode_rng_state(state) -> list:
    return [state[0], list(state[1]), state[2]]


def decode_rng_state(payload) -> tuple:
    return (payload[0], tuple(payload[1]), payload[2])
