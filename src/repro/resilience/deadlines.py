"""Deadline precedence: composing the stack of wall-clock limits.

Four layers can bound how long extraction work is allowed to run, and a
multi-tenant service composes all of them at once:

1. **Job deadline** — ``repro serve`` accepts a per-job ``deadline_seconds``
   at admission; the remaining share (deadline minus time already spent
   queued or in earlier attempts) is folded into layer 2 when the job runs.
2. **Budget wall-clock** — :class:`~repro.resilience.budgets.BudgetSpec.
   max_seconds`; enforced cooperatively by the engine's deadline poll
   (:class:`~repro.errors.BudgetExhausted` is the structured outcome).
3. **Cooperative invocation timeout** — the per-invocation ``timeout`` a
   module passes to :meth:`ExtractionSession.run` (e.g. the From-clause
   extractor's probe timeout); arms the engine deadline inside the
   invocation and rolls partial DML back.
4. **Worker SIGKILL deadline** — under ``--isolate process`` the supervisor
   kills a worker that has not replied by *cooperative timeout* +
   ``kill_grace`` (or ``worker_default_timeout`` + ``kill_grace`` when no
   cooperative timeout applies).  This is the only layer that stops a
   busy-looping application.

The composition rule is **tightest wins** among the layers that *apply*:

* the budget wall-clock is the tightest of the job deadline share and the
  configured budget (:func:`budget_wall_seconds`);
* a caller-supplied invocation timeout is capped by the remaining budget
  wall-clock (:func:`cooperative_timeout`);
* the worker's hard deadline is the cooperative timeout when one applies;
  an open-ended invocation (no caller timeout) falls back to the *tightest*
  of the remaining budget and the worker default backstop
  (:func:`worker_timeout`) — so a hung worker can never outlive the job
  deadline by more than ``kill_grace``;
* ``kill_grace`` is always *added* to whichever cooperative deadline won,
  so clean engine-side timeouts win the race and SIGKILL only fires on
  real hangs (:func:`hard_kill_deadline`).

Every pairing is unit-tested in ``tests/test_deadlines.py`` and the
precedence table is documented in DESIGN.md §5.16.
"""

from __future__ import annotations

from typing import Optional


def tightest(*limits: Optional[float]) -> Optional[float]:
    """The smallest non-``None`` limit, or ``None`` when none applies."""
    applicable = [limit for limit in limits if limit is not None]
    return min(applicable) if applicable else None


def budget_wall_seconds(
    job_deadline_seconds: Optional[float],
    configured_budget_seconds: Optional[float],
) -> Optional[float]:
    """Layer 1 → layer 2: the wall-clock budget a job runs under.

    The tightest of the job's remaining admission deadline and the
    service/CLI-configured ``budget_seconds``; ``None`` when neither is set.
    """
    return tightest(job_deadline_seconds, configured_budget_seconds)


def cooperative_timeout(
    caller_timeout: Optional[float],
    remaining_budget_seconds: Optional[float],
) -> Optional[float]:
    """Layer 2 → layer 3: the effective cooperative invocation timeout.

    A module's per-invocation timeout never extends past the remaining
    wall-clock budget; with no caller timeout the remaining budget itself
    becomes the cooperative bound (and ``None`` means unbounded).
    """
    return tightest(caller_timeout, remaining_budget_seconds)


def worker_timeout(
    caller_timeout: Optional[float],
    remaining_budget_seconds: Optional[float],
    default_timeout: float,
) -> Optional[float]:
    """Layer 3 → layer 4: the timeout the isolation supervisor enforces.

    * caller gave a timeout → it wins, capped by the remaining budget;
    * caller gave none → the worker default backstop applies, capped by the
      remaining budget;
    * nothing applies → ``None`` (the pool substitutes its own default).

    The returned value is what :meth:`WorkerPool.invoke` treats as the
    invocation timeout; SIGKILL fires ``kill_grace`` seconds after it.
    """
    if caller_timeout is not None:
        return tightest(caller_timeout, remaining_budget_seconds)
    if remaining_budget_seconds is not None:
        return tightest(remaining_budget_seconds, default_timeout)
    return None


def hard_kill_deadline(
    caller_timeout: Optional[float],
    remaining_budget_seconds: Optional[float],
    default_timeout: float,
    kill_grace: float,
) -> float:
    """The absolute worst-case seconds before the supervisor SIGKILLs.

    ``kill_grace`` is additive slack on top of whichever cooperative
    deadline won, never a substitute for one.
    """
    effective = worker_timeout(
        caller_timeout, remaining_budget_seconds, default_timeout
    )
    if effective is None:
        effective = default_timeout
    return effective + kill_grace
