"""The ``disk`` chaos harness: storage faults against every durable store.

For each fault class in :data:`~repro.resilience.diskfaults.DISK_FAULT_CLASSES`
the harness drives three legs, one per durable store:

* **checkpoint** — a real extraction checkpoints through a
  :class:`~repro.resilience.diskfaults.FaultyFS`.  ``enospc``/``eio`` must
  degrade to a structured ``storage_exhausted`` outcome *and still produce
  byte-identical SQL* (checkpointing is an aid, never a dependency); the
  crash classes kill the run mid-checkpoint-write, and a fresh process over
  the same directory must quarantine whatever bytes survived and converge to
  byte-identical SQL.
* **journal** — ``enospc``/``eio`` hit a transaction commit and must surface
  as :class:`~repro.errors.StorageExhausted` with the journal intact at its
  previous commit; the crash classes kill the process after a commit (or
  tear the file's last page, the SIGKILL-mid-page case) and reopening must
  salvage-or-quarantine and recover the committed jobs.
* **ledger** — same contract as the journal for the provenance ledger.

Used by ``repro chaos --profile disk`` and the slow integration test.  The
verdict is SURVIVED only when every (fault class × store) cell passes.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro.errors import StorageExhausted
from repro.resilience.checkpoint import CheckpointStore
from repro.resilience.diskfaults import (
    DISK_FAULT_CLASSES,
    FaultyFS,
    InjectedStorageCrash,
    sqlite_is_healthy,
    tear_tail,
)

#: fault classes that model power loss (the process dies mid-operation)
CRASH_CLASSES = ("torn_write", "short_write", "lost_fsync")


def _extract(query, workload, scale, seed, checkpoint_store=None):
    """One inline extraction; returns the pipeline outcome."""
    from repro.apps.executable import SQLExecutable
    from repro.core.config import ExtractionConfig
    from repro.core.pipeline import UnmasqueExtractor
    from repro.serve.jobs import JobRequest
    from repro.serve.service import build_instance, resolve_sql

    hidden_sql = resolve_sql(
        JobRequest(workload=workload, query=query, scale=scale, seed=seed)
    )
    db = build_instance(workload, scale, seed)
    app = SQLExecutable(hidden_sql, obfuscate_text=True, name="disk-chaos")
    return UnmasqueExtractor(
        db,
        app,
        ExtractionConfig(fail_fast=False),
        checkpoint_dir=checkpoint_store,
    ).extract()


def _cell(store: str, fault: str, ok: bool, outcome: str) -> dict:
    return {"store": store, "fault": fault, "ok": ok, "outcome": outcome}


def _checkpoint_leg(fault, workdir, query, workload, scale, seed,
                    chaos_seed, baseline_sql) -> dict:
    directory = workdir / fault / "checkpoints"
    directory.mkdir(parents=True, exist_ok=True)
    # at_op=2: the first module's checkpoint lands durably, the second write
    # faults — so crash recovery has a real previous checkpoint to consider.
    faulty = FaultyFS(fault, at_op=2, seed=chaos_seed)
    store = CheckpointStore(directory, fs=faulty)
    try:
        outcome = _extract(query, workload, scale, seed, checkpoint_store=store)
    except InjectedStorageCrash:
        # Power loss mid-checkpoint-write.  A fresh "process" reopens the
        # same directory: corrupt bytes must quarantine (or the previous
        # checkpoint must resume) and the rerun must converge.
        recovery = CheckpointStore(directory)
        recovery.load()  # quarantines torn/short leftovers, never raises
        rerun = _extract(
            query, workload, scale, seed,
            checkpoint_store=CheckpointStore(directory),
        )
        if rerun.sql != baseline_sql:
            return _cell("checkpoint", fault, False,
                         "post-crash rerun diverged from baseline SQL")
        return _cell(
            "checkpoint", fault, True,
            "crashed mid-checkpoint; rerun converged to byte-identical SQL"
            + (" (corrupt checkpoint quarantined)"
               if recovery.quarantined else " (resumed previous checkpoint)"),
        )
    if not faulty.fired:
        return _cell("checkpoint", fault, False,
                     "fault never fired (too few checkpoint writes)")
    # enospc/eio: the pipeline must have degraded, not died — and the SQL
    # must still be byte-identical (checkpointing is an aid, not a need).
    degraded = any(
        d.error == "StorageExhausted" for d in outcome.degradations
    )
    if not degraded:
        return _cell("checkpoint", fault, False,
                     "no structured storage_exhausted degradation recorded")
    if outcome.sql != baseline_sql:
        return _cell("checkpoint", fault, False,
                     "degraded run diverged from baseline SQL")
    return _cell("checkpoint", fault, True,
                 "degraded to storage_exhausted; SQL byte-identical")


def _journal_leg(fault, workdir) -> dict:
    from repro.serve.journal import JobJournal

    path = workdir / fault / "journal.sqlite"
    path.parent.mkdir(parents=True, exist_ok=True)
    request = {"workload": "tpch", "query": "Q6"}

    if fault in ("enospc", "eio"):
        journal = JobJournal(path, fs=FaultyFS(fault, ops="commit"))
        try:
            journal.create("job-000001", request)
        except StorageExhausted:
            pass
        else:
            journal.close()
            return _cell("journal", fault, False,
                         "commit fault not surfaced as StorageExhausted")
        # one-shot fault: the insert rolled back, the journal sits at its
        # previous commit and must accept the retried writes
        journal.create("job-000001", request)
        journal.create("job-000002", request)
        ok = {j["job_id"] for j in journal.jobs()} == {"job-000001",
                                                       "job-000002"}
        journal.close()
        return _cell("journal", fault, ok,
                     "StorageExhausted surfaced; journal consistent and "
                     "writable after" if ok else "journal inconsistent")

    if fault == "lost_fsync":
        # Process dies immediately after a commit: the WAL got the bytes,
        # the process didn't get to act on them — commit-before-act means
        # reopening must see the job.
        journal = JobJournal(path, fs=FaultyFS(fault, ops="commit"))
        try:
            journal.create("job-000001", request)
        except InjectedStorageCrash:
            pass
        else:
            return _cell("journal", fault, False, "crash fault never fired")
        # no close(): the process "died"
        reopened = JobJournal(path)
        survived = any(
            j["job_id"] == "job-000001" for j in reopened.jobs()
        )
        reopened.close()
        return _cell("journal", fault, survived,
                     "committed job durable across post-commit crash"
                     if survived else "committed job lost")

    # torn_write / short_write: SIGKILL left the file's last page torn.
    journal = JobJournal(path)
    journal.create("job-000001", request)
    journal.create("job-000002", request)
    from repro.serve.jobs import JobState
    journal.transition("job-000001", JobState.RUNNING, "attempt 1")
    journal.close()
    nbytes = 512 if fault == "torn_write" else 2048
    tear_tail(path, nbytes=nbytes, seed=7)
    reopened = JobJournal(path)  # must salvage-or-open, never crash
    recovered = reopened.recover()
    structurally_ok = sqlite_is_healthy(path)
    jobs = {j["job_id"]: j for j in reopened.jobs()}
    reopened.close()
    if not structurally_ok:
        return _cell("journal", fault, False,
                     "journal structurally corrupt after reopen")
    detail = (
        f"salvaged {reopened.salvage_report['jobs_salvaged']} jobs, "
        f"quarantined {reopened.salvage_report['rows_quarantined']} rows"
        if reopened.salvage_report else
        f"tear missed live pages; {len(recovered)} interrupted job(s) requeued"
    )
    # Either the tear corrupted sqlite (salvage ran) or it landed in slack
    # space (plain recovery); both must leave a healthy, queryable journal.
    return _cell("journal", fault, True, detail + f"; {len(jobs)} jobs visible")


def _ledger_leg(fault, workdir) -> dict:
    from repro.obs.ledger import RunLedger

    path = workdir / fault / "ledger.sqlite"
    path.parent.mkdir(parents=True, exist_ok=True)

    if fault in ("enospc", "eio"):
        ledger = RunLedger(path, fs=FaultyFS(fault, ops="commit"))
        try:
            ledger.begin_run(label="chaos")
        except StorageExhausted:
            pass
        else:
            ledger.close()
            return _cell("ledger", fault, False,
                         "commit fault not surfaced as StorageExhausted")
        run_id = ledger.begin_run(label="chaos-retry")  # one-shot fault
        ledger.finish_run(run_id, status="completed")
        ledger.close()
        return _cell("ledger", fault, True,
                     "StorageExhausted surfaced; ledger writable after")

    if fault == "lost_fsync":
        ledger = RunLedger(path, fs=FaultyFS(fault, ops="commit"))
        try:
            ledger.begin_run(label="chaos")
        except InjectedStorageCrash:
            pass
        else:
            return _cell("ledger", fault, False, "crash fault never fired")
        reopened = RunLedger(path)
        survived = len(reopened.runs()) == 1
        reopened.close()
        return _cell("ledger", fault, survived,
                     "committed run durable across post-commit crash"
                     if survived else "committed run lost")

    # torn_write / short_write: corrupt the closed file, reopen.
    ledger = RunLedger(path)
    run_id = ledger.begin_run(label="chaos")
    ledger.finish_run(run_id, status="completed")
    ledger.close()
    tear_tail(path, nbytes=4096, seed=7)
    reopened = RunLedger(path)  # quarantines on quick_check failure
    run_id = reopened.begin_run(label="post-corruption")
    reopened.finish_run(run_id, status="completed")
    usable = len(reopened.runs()) >= 1
    reopened.close()
    if not usable:
        return _cell("ledger", fault, False,
                     "ledger unusable after corruption reopen")
    detail = ("corrupt file quarantined; fresh ledger usable"
              if reopened.quarantined else
              "tear missed live pages; ledger intact and usable")
    return _cell("ledger", fault, True, detail)


def run_disk_chaos(
    query: str,
    workload: str = "tpch",
    scale: float = 0.0005,
    seed: int = 11,
    chaos_seed: int = 1337,
    workdir=None,
    out=sys.stdout,
) -> dict:
    """The full fault-class × store survival matrix; returns a report dict."""
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)

    out.write(f"baseline    : extracting {query} inline, fault-free\n")
    started = time.time()
    baseline = _extract(query, workload, scale, seed)
    baseline_sql = baseline.sql
    out.write(f"baseline    : done in {time.time() - started:.2f}s "
              f"(verdict {baseline.verdict})\n")

    cells: list[dict] = []
    for fault in DISK_FAULT_CLASSES:
        for leg, runner in (
            ("checkpoint", lambda f: _checkpoint_leg(
                f, workdir, query, workload, scale, seed, chaos_seed,
                baseline_sql)),
            ("journal", lambda f: _journal_leg(f, workdir)),
            ("ledger", lambda f: _ledger_leg(f, workdir)),
        ):
            cell = runner(fault)
            cells.append(cell)
            mark = "ok " if cell["ok"] else "FAIL"
            out.write(f"{fault:<12}: {mark} {leg:<10} {cell['outcome']}\n")

    survived = all(cell["ok"] for cell in cells)
    return {
        "survived": survived,
        "fault_classes": list(DISK_FAULT_CLASSES),
        "cells": cells,
        "baseline_sql": baseline_sql,
        "workdir": str(workdir),
    }
