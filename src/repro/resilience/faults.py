"""Deterministic fault injection for black-box invocations.

A :class:`FaultPlan` describes *how often* each fault kind fires; a
:class:`FaultyExecutable` wraps any :class:`~repro.apps.executable.Executable`
and rolls one seeded RNG draw per invocation, so a given ``(plan, seed)``
pair injects the exact same fault sequence on every run — chaos tests are
reproducible and CI can pin a seed.

Fault kinds:

* ``transient`` — raises :class:`~repro.errors.TransientExecutableError`
  *before* the inner application runs (a connection reset / worker crash);
* ``timeout``   — raises :class:`~repro.errors.ExecutableTimeoutError`
  before the inner application runs (a hang cut short by the caller);
* ``empty``     — runs the application but discards all result rows (a
  byzantine half-failure; retries cannot detect this, the checker can);
* ``latency``   — sleeps briefly before a normal run (a latency spike).

Two *hard* fault kinds model failures no in-process mechanism survives —
only the ``--isolate process`` worker pool does:

* ``hang``  — a genuine busy-loop that ignores the cooperative engine
  deadline (bounded by ``hang_seconds`` so an accidental in-process draw
  cannot freeze a test run forever); the isolation supervisor SIGKILLs it at
  the hard deadline;
* ``crash`` — ``os.abort()``: takes the hosting process down with SIGABRT.
  In a worker that is a classified, retryable crash; in-process it kills the
  extraction itself.

Hard-fault draws are keyed on the *supervisor's* invocation ordinal (one
fresh ``random.Random`` per ordinal, independent of the soft-fault stream):
a respawned worker's replayed counters do not replay the fault sequence, and
a retried invocation gets a fresh draw — which is what lets a chaos run
converge instead of re-crashing on the same probe forever.

``crash_at`` injects one hard, *non-retryable* crash
(:class:`InjectedCrashError`, deliberately outside the ``ReproError``
hierarchy) at an exact invocation number — the test harness's stand-in for
``kill -9``, used to exercise checkpoint/resume.
"""

from __future__ import annotations

import dataclasses
import random
import time
from dataclasses import dataclass
from typing import Optional

from repro.apps.executable import Executable
from repro.engine.database import Database
from repro.engine.result import Result
from repro.errors import ExecutableTimeoutError, TransientExecutableError


class InjectedCrashError(Exception):
    """A simulated hard crash (process kill) — intentionally not a ReproError,
    so no layer of the pipeline retries or degrades it."""


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded chaos profile.

    Rates are per-invocation probabilities; their sum must not exceed 1.
    ``activate_after`` suppresses probabilistic faults for the first N
    invocations (useful to target a specific pipeline phase);
    ``crash_at`` fires exactly once, at that invocation number.
    """

    name: str = "custom"
    transient_rate: float = 0.0
    timeout_rate: float = 0.0
    empty_result_rate: float = 0.0
    latency_rate: float = 0.0
    latency_seconds: float = 0.001
    #: hard-fault rates (per-ordinal draws, see :meth:`draw_hard`)
    hang_rate: float = 0.0
    hang_seconds: float = 30.0
    crash_rate: float = 0.0
    seed: int = 1337
    activate_after: int = 0
    crash_at: Optional[int] = None

    def __post_init__(self):
        total = (
            self.transient_rate
            + self.timeout_rate
            + self.empty_result_rate
            + self.latency_rate
        )
        if not 0.0 <= total <= 1.0:
            raise ValueError(f"fault rates of plan {self.name!r} sum to {total}")
        if not 0.0 <= self.hang_rate + self.crash_rate <= 1.0:
            raise ValueError(
                f"hard-fault rates of plan {self.name!r} sum to "
                f"{self.hang_rate + self.crash_rate}"
            )

    def with_seed(self, seed: int) -> "FaultPlan":
        return dataclasses.replace(self, seed=seed)

    def draw(self, rng: random.Random) -> Optional[str]:
        """One fault decision; exactly one RNG draw regardless of outcome."""
        u = rng.random()
        for kind, rate in (
            ("transient", self.transient_rate),
            ("timeout", self.timeout_rate),
            ("empty", self.empty_result_rate),
            ("latency", self.latency_rate),
        ):
            if u < rate:
                return kind
            u -= rate
        return None

    def draw_hard(self, ordinal: int) -> Optional[str]:
        """The hard-fault decision for one invocation ordinal.

        Deterministic per ``(seed, ordinal)`` and *stateless*: unlike
        :meth:`draw`, which consumes one shared RNG stream, each ordinal gets
        an independent draw.  That keeps the soft-fault stream untouched
        (existing profiles inject identical sequences) and survives worker
        respawns — the ordinal is assigned by the supervisor, so a fresh
        worker continues the sequence instead of replaying it.
        """
        if self.hang_rate <= 0.0 and self.crash_rate <= 0.0:
            return None
        u = random.Random((self.seed << 20) ^ ordinal).random()
        if u < self.crash_rate:
            return "crash"
        if u < self.crash_rate + self.hang_rate:
            return "hang"
        return None

    @property
    def injects_timeouts(self) -> bool:
        # A hang surfaces as a (hard) timeout to the caller, so surviving a
        # hang profile needs timeout retries just like the soft kind.
        return self.timeout_rate > 0.0 or self.hang_rate > 0.0


#: Named profiles for the ``repro chaos`` command and the chaos test suite.
FAULT_PROFILES: dict[str, FaultPlan] = {
    # No faults at all — a control run through the chaos harness.
    "calm": FaultPlan(name="calm"),
    # The acceptance profile: >=10% transient invocation failures.
    "transient": FaultPlan(name="transient", transient_rate=0.10),
    # Transient failures plus latency spikes.
    "flaky": FaultPlan(
        name="flaky", transient_rate=0.10, latency_rate=0.05, latency_seconds=0.001
    ),
    # Spurious hangs; survivable with ``retry_timeouts`` enabled.
    "timeouts": FaultPlan(name="timeouts", timeout_rate=0.10),
    # Heavy weather: everything at once.
    "storm": FaultPlan(
        name="storm",
        transient_rate=0.20,
        timeout_rate=0.05,
        latency_rate=0.05,
        latency_seconds=0.001,
    ),
    # Wrong-but-well-formed answers.  Retries cannot catch silently empty
    # results — extraction may diverge; the checker is the backstop.
    "byzantine": FaultPlan(name="byzantine", transient_rate=0.05, empty_result_rate=0.02),
    # Hard faults: survivable only under ``--isolate process``.  Rates are
    # kept low so the probability of K consecutive draws (which would
    # legitimately quarantine the executable) is negligible over a run.
    "hang": FaultPlan(name="hang", hang_rate=0.02, hang_seconds=30.0),
    "crash": FaultPlan(name="crash", crash_rate=0.03),
}

#: profiles whose faults kill the hosting process or defeat cooperative
#: deadlines — the chaos CLI refuses to run these without ``--isolate process``
HARD_FAULT_PROFILES = frozenset(
    name
    for name, plan in FAULT_PROFILES.items()
    if plan.hang_rate > 0.0 or plan.crash_rate > 0.0
)


class FaultyExecutable(Executable):
    """Wraps an executable and injects faults per a :class:`FaultPlan`.

    The wrapper is *outside* the inner executable's own tracing: an injected
    transient/timeout fault aborts the invocation before the application
    (and its ``invocation`` span) ever starts, exactly like an
    infrastructure failure in front of a real deployment.
    """

    def __init__(self, inner: Executable, plan: FaultPlan):
        super().__init__()
        self.inner = inner
        self.plan = plan
        self.name = f"chaos({inner.name})"
        self._rng = random.Random(plan.seed)
        #: injected fault counts by kind, for survival reports
        self.injected: dict[str, int] = {
            "transient": 0,
            "timeout": 0,
            "empty": 0,
            "latency": 0,
            "hang": 0,
            "crash": 0,
        }

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def run(self, db: Database, timeout: Optional[float] = None) -> Result:
        self.invocation_count += 1
        if self.plan.crash_at is not None and self.invocation_count == self.plan.crash_at:
            raise InjectedCrashError(
                f"injected crash at invocation {self.invocation_count}"
            )
        if self.invocation_count > self.plan.activate_after:
            # Inside an isolation worker the supervisor ships its global
            # ordinal; in-process, the local count is the same sequence.
            ordinal = getattr(self, "invocation_ordinal", None)
            hard = self.plan.draw_hard(
                ordinal if ordinal is not None else self.invocation_count
            )
            if hard == "crash":
                self.injected["crash"] += 1
                import os

                os.abort()  # SIGABRT: kills the hosting process for real
            if hard == "hang":
                self.injected["hang"] += 1
                # A true busy-loop: never polls the cooperative deadline, so
                # only an out-of-process SIGKILL can cut it short.  Bounded
                # by hang_seconds as a safety net for in-process draws.
                end = time.perf_counter() + self.plan.hang_seconds
                while time.perf_counter() < end:
                    pass
                raise ExecutableTimeoutError(
                    f"injected hang outlived its {self.plan.hang_seconds}s "
                    f"bound (invocation {self.invocation_count})"
                )
        kind = None
        if self.invocation_count > self.plan.activate_after:
            kind = self.plan.draw(self._rng)
        if kind == "transient":
            self.injected["transient"] += 1
            raise TransientExecutableError(
                f"injected transient fault (invocation {self.invocation_count})"
            )
        if kind == "timeout":
            self.injected["timeout"] += 1
            raise ExecutableTimeoutError(
                f"injected timeout (invocation {self.invocation_count})"
            )
        if kind == "latency":
            self.injected["latency"] += 1
            time.sleep(self.plan.latency_seconds)
        result = self.inner.run(db, timeout=timeout)
        # surface the inner invocation span for after-the-fact tagging
        self.last_span = getattr(self.inner, "last_span", None)
        if kind == "empty":
            self.injected["empty"] += 1
            return Result(result.columns, [])
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultyExecutable plan={self.plan.name} seed={self.plan.seed}>"
