"""Deterministic fault injection for black-box invocations.

A :class:`FaultPlan` describes *how often* each fault kind fires; a
:class:`FaultyExecutable` wraps any :class:`~repro.apps.executable.Executable`
and rolls one seeded RNG draw per invocation, so a given ``(plan, seed)``
pair injects the exact same fault sequence on every run — chaos tests are
reproducible and CI can pin a seed.

Fault kinds:

* ``transient`` — raises :class:`~repro.errors.TransientExecutableError`
  *before* the inner application runs (a connection reset / worker crash);
* ``timeout``   — raises :class:`~repro.errors.ExecutableTimeoutError`
  before the inner application runs (a hang cut short by the caller);
* ``empty``     — runs the application but discards all result rows (a
  byzantine half-failure; retries cannot detect this, the checker can);
* ``latency``   — sleeps briefly before a normal run (a latency spike).

``crash_at`` injects one hard, *non-retryable* crash
(:class:`InjectedCrashError`, deliberately outside the ``ReproError``
hierarchy) at an exact invocation number — the test harness's stand-in for
``kill -9``, used to exercise checkpoint/resume.
"""

from __future__ import annotations

import dataclasses
import random
import time
from dataclasses import dataclass
from typing import Optional

from repro.apps.executable import Executable
from repro.engine.database import Database
from repro.engine.result import Result
from repro.errors import ExecutableTimeoutError, TransientExecutableError


class InjectedCrashError(Exception):
    """A simulated hard crash (process kill) — intentionally not a ReproError,
    so no layer of the pipeline retries or degrades it."""


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded chaos profile.

    Rates are per-invocation probabilities; their sum must not exceed 1.
    ``activate_after`` suppresses probabilistic faults for the first N
    invocations (useful to target a specific pipeline phase);
    ``crash_at`` fires exactly once, at that invocation number.
    """

    name: str = "custom"
    transient_rate: float = 0.0
    timeout_rate: float = 0.0
    empty_result_rate: float = 0.0
    latency_rate: float = 0.0
    latency_seconds: float = 0.001
    seed: int = 1337
    activate_after: int = 0
    crash_at: Optional[int] = None

    def __post_init__(self):
        total = (
            self.transient_rate
            + self.timeout_rate
            + self.empty_result_rate
            + self.latency_rate
        )
        if not 0.0 <= total <= 1.0:
            raise ValueError(f"fault rates of plan {self.name!r} sum to {total}")

    def with_seed(self, seed: int) -> "FaultPlan":
        return dataclasses.replace(self, seed=seed)

    def draw(self, rng: random.Random) -> Optional[str]:
        """One fault decision; exactly one RNG draw regardless of outcome."""
        u = rng.random()
        for kind, rate in (
            ("transient", self.transient_rate),
            ("timeout", self.timeout_rate),
            ("empty", self.empty_result_rate),
            ("latency", self.latency_rate),
        ):
            if u < rate:
                return kind
            u -= rate
        return None

    @property
    def injects_timeouts(self) -> bool:
        return self.timeout_rate > 0.0


#: Named profiles for the ``repro chaos`` command and the chaos test suite.
FAULT_PROFILES: dict[str, FaultPlan] = {
    # No faults at all — a control run through the chaos harness.
    "calm": FaultPlan(name="calm"),
    # The acceptance profile: >=10% transient invocation failures.
    "transient": FaultPlan(name="transient", transient_rate=0.10),
    # Transient failures plus latency spikes.
    "flaky": FaultPlan(
        name="flaky", transient_rate=0.10, latency_rate=0.05, latency_seconds=0.001
    ),
    # Spurious hangs; survivable with ``retry_timeouts`` enabled.
    "timeouts": FaultPlan(name="timeouts", timeout_rate=0.10),
    # Heavy weather: everything at once.
    "storm": FaultPlan(
        name="storm",
        transient_rate=0.20,
        timeout_rate=0.05,
        latency_rate=0.05,
        latency_seconds=0.001,
    ),
    # Wrong-but-well-formed answers.  Retries cannot catch silently empty
    # results — extraction may diverge; the checker is the backstop.
    "byzantine": FaultPlan(name="byzantine", transient_rate=0.05, empty_result_rate=0.02),
}


class FaultyExecutable(Executable):
    """Wraps an executable and injects faults per a :class:`FaultPlan`.

    The wrapper is *outside* the inner executable's own tracing: an injected
    transient/timeout fault aborts the invocation before the application
    (and its ``invocation`` span) ever starts, exactly like an
    infrastructure failure in front of a real deployment.
    """

    def __init__(self, inner: Executable, plan: FaultPlan):
        super().__init__()
        self.inner = inner
        self.plan = plan
        self.name = f"chaos({inner.name})"
        self._rng = random.Random(plan.seed)
        #: injected fault counts by kind, for survival reports
        self.injected: dict[str, int] = {
            "transient": 0,
            "timeout": 0,
            "empty": 0,
            "latency": 0,
        }

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def run(self, db: Database, timeout: Optional[float] = None) -> Result:
        self.invocation_count += 1
        if self.plan.crash_at is not None and self.invocation_count == self.plan.crash_at:
            raise InjectedCrashError(
                f"injected crash at invocation {self.invocation_count}"
            )
        kind = None
        if self.invocation_count > self.plan.activate_after:
            kind = self.plan.draw(self._rng)
        if kind == "transient":
            self.injected["transient"] += 1
            raise TransientExecutableError(
                f"injected transient fault (invocation {self.invocation_count})"
            )
        if kind == "timeout":
            self.injected["timeout"] += 1
            raise ExecutableTimeoutError(
                f"injected timeout (invocation {self.invocation_count})"
            )
        if kind == "latency":
            self.injected["latency"] += 1
            time.sleep(self.plan.latency_seconds)
        result = self.inner.run(db, timeout=timeout)
        if kind == "empty":
            self.injected["empty"] += 1
            return Result(result.columns, [])
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultyExecutable plan={self.plan.name} seed={self.plan.seed}>"
