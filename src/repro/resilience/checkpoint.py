"""Per-module checkpoint/resume for the extraction pipeline.

After each pipeline module completes, the orchestrator serialises the
session's partial state — the :class:`~repro.core.model.ExtractedQuery` built
so far, the completed-module set, the minimal database ``D^1``, captured
results, per-module statistics, and the RNG state — into
``<checkpoint-dir>/checkpoint.json``.  A later run pointed at the same
directory (and the same initial instance + configuration) restores that state
and re-executes only the unfinished modules.

Writes are atomic and durable (temp file + fsync + ``os.replace`` through
the :mod:`~repro.resilience.diskfaults` filesystem seam), and every file
carries a sha-256 checksum envelope.  A torn or truncated checkpoint is
*quarantined* aside and ``load()`` returns ``None`` — the run restarts from
scratch instead of resuming corrupt state, and the evidence survives for the
post-mortem.  A full disk raises :class:`~repro.errors.StorageExhausted`
(the pipeline degrades to un-checkpointed execution); a fingerprint of the
initial instance and the extraction configuration is embedded and verified
on load, so resuming against a different database or config raises
:class:`~repro.errors.CheckpointError` instead of silently mixing state.
"""

from __future__ import annotations

import json
import logging
from pathlib import Path
from typing import Optional

# NOTE: this module must not import repro.core.session — the session imports
# repro.resilience.retry, and an eager import here would close the cycle.
# Sessions are duck-typed below.
from repro.errors import CheckpointError, StorageExhausted
from repro.resilience import serde
from repro.resilience.diskfaults import (
    REAL_FS,
    checksum_hex,
    is_storage_errno,
    quarantine_path,
)

logger = logging.getLogger("repro.resilience.checkpoint")

#: bumped whenever the snapshot layout changes incompatibly
#: (v2: sha-256 checksum envelope + quarantine-on-corruption)
CHECKPOINT_VERSION = 2


class CheckpointStore:
    """Owns one ``checkpoint.json`` inside a checkpoint directory."""

    FILENAME = "checkpoint.json"

    def __init__(self, directory, fs=None):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fs = fs if fs is not None else REAL_FS
        #: where the last corrupt checkpoint was moved, if any
        self.quarantined: Optional[Path] = None

    @property
    def path(self) -> Path:
        return self.directory / self.FILENAME

    def exists(self) -> bool:
        return self.path.exists()

    def load(self) -> Optional[dict]:
        """The stored snapshot, or None when absent *or corrupt*.

        Corruption (unreadable bytes, invalid JSON, missing or mismatched
        checksum) is not an error: the file is quarantined aside and the
        caller starts fresh.  Only a *valid* checkpoint from an incompatible
        build raises :class:`CheckpointError` — that needs a human decision.
        """
        if not self.path.exists():
            return None
        try:
            raw = self.fs.read_bytes(self.path)
            state = json.loads(raw.decode("utf-8"))
            if not isinstance(state, dict):
                raise ValueError("checkpoint is not a JSON object")
        except (OSError, ValueError, UnicodeDecodeError) as error:
            self._quarantine(f"unreadable checkpoint: {error}")
            return None
        expected = state.pop("checksum", None)
        actual = checksum_hex(_canonical(state))
        if expected != actual:
            self._quarantine(
                f"checksum mismatch (stored {expected!r}, computed {actual!r})"
            )
            return None
        if state.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {self.path} has version {state.get('version')!r}; "
                f"this build reads version {CHECKPOINT_VERSION}"
            )
        return state

    def save(self, state: dict) -> None:
        """Atomically replace the checkpoint with ``state`` (+ checksum)."""
        payload = dict(state)
        payload.pop("checksum", None)
        payload["checksum"] = checksum_hex(_canonical(payload))
        data = json.dumps(payload, indent=2, sort_keys=True).encode("utf-8")
        try:
            self.fs.write_atomic(self.path, data + b"\n")
        except OSError as error:
            if is_storage_errno(error):
                raise StorageExhausted("checkpoint", str(error)) from error
            raise

    def _quarantine(self, why: str) -> None:
        self.quarantined = quarantine_path(self.path)
        logger.warning(
            "quarantined corrupt checkpoint %s -> %s (%s); restarting fresh",
            self.path, self.quarantined, why,
        )

    def clear(self) -> None:
        """Remove the checkpoint (called after a successful extraction)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass


def _canonical(state: dict) -> bytes:
    """Canonical byte form the checksum is computed over (checksum excluded)."""
    body = {key: value for key, value in state.items() if key != "checksum"}
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode("utf-8")


# -- session snapshot / restore -------------------------------------------------


def snapshot_session(
    session,
    completed: list[str],
    degradations: list[dict],
) -> dict:
    """Everything a resumed run needs, as one JSON-serialisable dict."""
    stats = {
        name: {"seconds": module.seconds, "invocations": module.invocations}
        for name, module in session.stats.modules.items()
    }
    return {
        "version": CHECKPOINT_VERSION,
        "fingerprint": session.checkpoint_fingerprint,
        "completed": sorted(completed),
        "degradations": list(degradations),
        "query": serde.encode_query(session.query),
        "d1": serde.encode_rows_by_table(session.d1),
        "initial_result": serde.encode_result(session.initial_result),
        "baseline_result": serde.encode_result(session.baseline_result),
        "probe_multiplier": session.probe_multiplier,
        "multiplier_table": session.multiplier_table,
        "rng_state": serde.encode_rng_state(session.rng.getstate()),
        "stats": {
            "modules": stats,
            "retries": session.stats.retries,
            "invocation_timeouts": session.stats.invocation_timeouts,
        },
    }


def restore_session(session, state: dict) -> set[str]:
    """Install a snapshot into a fresh session; returns the completed set.

    The session must have been constructed from the same initial instance and
    configuration that produced the checkpoint (verified via fingerprint).
    """
    fingerprint = state.get("fingerprint")
    if fingerprint != session.checkpoint_fingerprint:
        raise CheckpointError(
            "checkpoint fingerprint mismatch — it was written for a different "
            f"database or configuration (checkpoint: {fingerprint}, "
            f"this run: {session.checkpoint_fingerprint}); if the instance "
            "was intentionally re-seeded, discard the stale checkpoint and "
            "start over (repro: pass --fresh)"
        )
    session.query = serde.decode_query(state["query"])
    session.probe_multiplier = state["probe_multiplier"]
    session.multiplier_table = state["multiplier_table"]
    d1 = serde.decode_rows_by_table(state["d1"])
    if d1:
        session.set_d1(d1)
    session.initial_result = serde.decode_result(state["initial_result"])
    session.baseline_result = serde.decode_result(state["baseline_result"])
    session.rng.setstate(serde.decode_rng_state(state["rng_state"]))
    stats = state.get("stats", {})
    for name, payload in stats.get("modules", {}).items():
        module = session.stats.module(name)
        module.seconds = payload["seconds"]
        module.invocations = payload["invocations"]
    session.stats.retries = stats.get("retries", 0)
    session.stats.invocation_timeouts = stats.get("invocation_timeouts", 0)
    return set(state["completed"])
