"""Per-module checkpoint/resume for the extraction pipeline.

After each pipeline module completes, the orchestrator serialises the
session's partial state — the :class:`~repro.core.model.ExtractedQuery` built
so far, the completed-module set, the minimal database ``D^1``, captured
results, per-module statistics, and the RNG state — into
``<checkpoint-dir>/checkpoint.json``.  A later run pointed at the same
directory (and the same initial instance + configuration) restores that state
and re-executes only the unfinished modules.

Writes are atomic (temp file + ``os.replace``), so a crash mid-save leaves
the previous checkpoint intact.  A fingerprint of the initial instance and
the extraction configuration is embedded and verified on load: resuming
against a different database or config raises
:class:`~repro.errors.CheckpointError` instead of silently mixing state.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional

# NOTE: this module must not import repro.core.session — the session imports
# repro.resilience.retry, and an eager import here would close the cycle.
# Sessions are duck-typed below.
from repro.errors import CheckpointError
from repro.resilience import serde

#: bumped whenever the snapshot layout changes incompatibly
CHECKPOINT_VERSION = 1


class CheckpointStore:
    """Owns one ``checkpoint.json`` inside a checkpoint directory."""

    FILENAME = "checkpoint.json"

    def __init__(self, directory):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    @property
    def path(self) -> Path:
        return self.directory / self.FILENAME

    def exists(self) -> bool:
        return self.path.exists()

    def load(self) -> Optional[dict]:
        """The stored snapshot, or None when no checkpoint exists."""
        if not self.path.exists():
            return None
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                state = json.load(fh)
        except (OSError, ValueError) as error:
            raise CheckpointError(
                f"cannot read checkpoint {self.path}: {error}"
            ) from error
        if state.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {self.path} has version {state.get('version')!r}; "
                f"this build reads version {CHECKPOINT_VERSION}"
            )
        return state

    def save(self, state: dict) -> None:
        """Atomically replace the checkpoint with ``state``."""
        tmp = self.path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(state, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, self.path)

    def clear(self) -> None:
        """Remove the checkpoint (called after a successful extraction)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass


# -- session snapshot / restore -------------------------------------------------


def snapshot_session(
    session,
    completed: list[str],
    degradations: list[dict],
) -> dict:
    """Everything a resumed run needs, as one JSON-serialisable dict."""
    stats = {
        name: {"seconds": module.seconds, "invocations": module.invocations}
        for name, module in session.stats.modules.items()
    }
    return {
        "version": CHECKPOINT_VERSION,
        "fingerprint": session.checkpoint_fingerprint,
        "completed": sorted(completed),
        "degradations": list(degradations),
        "query": serde.encode_query(session.query),
        "d1": serde.encode_rows_by_table(session.d1),
        "initial_result": serde.encode_result(session.initial_result),
        "baseline_result": serde.encode_result(session.baseline_result),
        "probe_multiplier": session.probe_multiplier,
        "multiplier_table": session.multiplier_table,
        "rng_state": serde.encode_rng_state(session.rng.getstate()),
        "stats": {
            "modules": stats,
            "retries": session.stats.retries,
            "invocation_timeouts": session.stats.invocation_timeouts,
        },
    }


def restore_session(session, state: dict) -> set[str]:
    """Install a snapshot into a fresh session; returns the completed set.

    The session must have been constructed from the same initial instance and
    configuration that produced the checkpoint (verified via fingerprint).
    """
    fingerprint = state.get("fingerprint")
    if fingerprint != session.checkpoint_fingerprint:
        raise CheckpointError(
            "checkpoint fingerprint mismatch — it was written for a different "
            f"database or configuration (checkpoint: {fingerprint}, "
            f"this run: {session.checkpoint_fingerprint}); if the instance "
            "was intentionally re-seeded, discard the stale checkpoint and "
            "start over (repro: pass --fresh)"
        )
    session.query = serde.decode_query(state["query"])
    session.probe_multiplier = state["probe_multiplier"]
    session.multiplier_table = state["multiplier_table"]
    d1 = serde.decode_rows_by_table(state["d1"])
    if d1:
        session.set_d1(d1)
    session.initial_result = serde.decode_result(state["initial_result"])
    session.baseline_result = serde.decode_result(state["baseline_result"])
    session.rng.setstate(serde.decode_rng_state(state["rng_state"]))
    stats = state.get("stats", {})
    for name, payload in stats.get("modules", {}).items():
        module = session.stats.module(name)
        module.seconds = payload["seconds"]
        module.invocations = payload["invocations"]
    session.stats.retries = stats.get("retries", 0)
    session.stats.invocation_timeouts = stats.get("invocation_timeouts", 0)
    return set(state["completed"])
