"""The ``net`` chaos harness: wire faults against the remote worker transport.

For every fault class in
:data:`~repro.resilience.netfaults.NET_FAULT_CLASSES` the harness arms a
one-shot :class:`~repro.resilience.netfaults.NetFaultPlan` at three pipeline
phases — early (From-clause identification), mid (filter extraction), late
(assembly-era probes) — and runs a full extraction through an in-process
:class:`~repro.isolation.agent.WorkerAgent` on loopback.  Every cell must end
in SQL byte-identical to the fault-free inline baseline (these are all
*recoverable* network pathologies; a structured verdict would mean the
transport gave up on something it should have survived), and the cells that
exist to prove the exactly-once contract carry extra obligations:

* ``duplicate``  — the agent's sequence numbers must have actually dropped a
  duplicate frame (one execution, not two);
* ``partition`` / ``reorder`` — the supervisor's fencing reader must have
  rejected at least one stale reply (the partition-then-late-reply proof:
  the abandoned lease's reply arrived and was dropped, so its side effects
  were never double-folded and its rows never double-charged);
* ``torn_frame`` / ``corrupt`` — the connection must have been torn down and
  re-established (CRC and framing caught the damage; reconnect + requeue
  recovered).

A ``clean`` cell (no fault) pins remote-over-loopback to the inline
baseline byte-for-byte.  Used by ``repro chaos --profile net`` and the slow
integration test; the survival matrix is written to
``<workdir>/net_chaos_matrix.json`` for CI artifact upload.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.isolation.remote import PeerHealthRegistry
from repro.resilience.netfaults import (
    NET_FAULT_CLASSES,
    NetFaultPlan,
    faulty_transport_factory,
)

#: fault classes whose recovery requires a reconnect (connection destroyed)
RECONNECT_CLASSES = ("torn_frame", "corrupt")

#: fault classes that must trip the fencing reader (a stale reply arrives)
FENCING_CLASSES = ("partition", "reorder")


def _remote_config(address: str, registry, transport_factory=None):
    from repro.core.config import ExtractionConfig

    return ExtractionConfig(
        fail_fast=False,
        isolate="remote",
        worker_peers=(address,),
        peer_registry=registry,
        transport_factory=transport_factory,
        # tight-but-safe wire budgets so a swallowed frame is detected in
        # seconds, not the production 30s default
        worker_default_timeout=5.0,
        worker_kill_grace=0.5,
        transport_heartbeat_interval=0.2,
        transport_backoff_base=0.01,
        transport_backoff_max=0.1,
    )


def _extract(query, workload, scale, seed, config=None):
    """One extraction; returns the pipeline outcome."""
    from repro.apps.executable import SQLExecutable
    from repro.core.config import ExtractionConfig
    from repro.core.pipeline import UnmasqueExtractor
    from repro.serve.jobs import JobRequest
    from repro.serve.service import build_instance, resolve_sql

    hidden_sql = resolve_sql(
        JobRequest(workload=workload, query=query, scale=scale, seed=seed)
    )
    db = build_instance(workload, scale, seed)
    app = SQLExecutable(hidden_sql, obfuscate_text=True, name="net-chaos")
    if config is None:
        config = ExtractionConfig(fail_fast=False)
    return UnmasqueExtractor(db, app, config).extract()


def _registry_totals(registry: PeerHealthRegistry) -> dict:
    totals = {"fenced_replies": 0, "duplicates_dropped": 0, "reconnects": 0,
              "quarantines": 0}
    for entry in registry.snapshot().values():
        for key in totals:
            totals[key] += entry[key]
    return totals


def _cell(fault: str, phase: str, ok: bool, outcome: str) -> dict:
    return {"fault": fault, "phase": phase, "ok": ok, "outcome": outcome}


def _fault_cell(fault, phase_name, at_op, agent, query, workload, scale,
                seed, chaos_seed, baseline_sql) -> dict:
    plan = NetFaultPlan(fault, at_op=at_op, seed=chaos_seed)
    registry = PeerHealthRegistry((agent.address,))
    agent_before = agent.transport_counters()
    config = _remote_config(
        agent.address, registry, faulty_transport_factory(plan)
    )
    try:
        outcome = _extract(query, workload, scale, seed, config=config)
    except Exception as error:  # noqa: BLE001 - a cell failure, not a crash
        return _cell(fault, phase_name, False,
                     f"extraction died: {type(error).__name__}: {error}")
    if not plan.fired:
        return _cell(fault, phase_name, False,
                     f"fault never fired (armed at run frame {at_op})")
    if outcome.sql != baseline_sql:
        return _cell(
            fault, phase_name, False,
            f"SQL diverged from baseline (verdict {outcome.verdict})",
        )
    totals = _registry_totals(registry)
    agent_delta = {
        key: agent.transport_counters()[key] - agent_before[key]
        for key in agent_before
    }
    if fault == "duplicate" and agent_delta["duplicates_dropped"] < 1:
        return _cell(fault, phase_name, False,
                     "duplicate delivery was never deduplicated")
    if fault == "reorder" and agent_delta["reorders_healed"] < 1:
        return _cell(fault, phase_name, False,
                     "reordered delivery was never healed")
    if fault in FENCING_CLASSES and totals["fenced_replies"] < 1:
        return _cell(fault, phase_name, False,
                     "no stale reply was fenced (exactly-once unproven)")
    if fault in RECONNECT_CLASSES and totals["reconnects"] < 1:
        return _cell(fault, phase_name, False,
                     "damaged connection was never re-established")
    detail = "byte-identical SQL"
    proofs = []
    if totals["fenced_replies"]:
        proofs.append(f"{totals['fenced_replies']} stale replies fenced")
    if agent_delta["duplicates_dropped"]:
        proofs.append(f"{agent_delta['duplicates_dropped']} duplicates dropped")
    if agent_delta["reorders_healed"]:
        proofs.append(f"{agent_delta['reorders_healed']} reorders healed")
    if totals["reconnects"]:
        proofs.append(f"{totals['reconnects']} reconnects")
    if proofs:
        detail += " (" + ", ".join(proofs) + ")"
    return _cell(fault, phase_name, True, detail)


def run_net_chaos(
    query: str,
    workload: str = "tpch",
    scale: float = 0.0005,
    seed: int = 11,
    chaos_seed: int = 1337,
    workdir=None,
    out=sys.stdout,
    fast: bool = False,
) -> dict:
    """The fault-class × pipeline-phase survival matrix; returns a report.

    ``fast=True`` runs one mid-pipeline cell per fault class instead of the
    full three-phase matrix (the CI smoke configuration).
    """
    from repro.isolation.agent import WorkerAgent

    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)

    out.write(f"baseline    : extracting {query} inline, fault-free\n")
    started = time.time()
    baseline = _extract(query, workload, scale, seed)
    baseline_sql = baseline.sql
    out.write(f"baseline    : done in {time.time() - started:.2f}s "
              f"(verdict {baseline.verdict})\n")

    agent = WorkerAgent()
    address = agent.start()
    out.write(f"agent       : worker agent on {address}\n")
    cells: list = []
    try:
        # The clean remote cell doubles as the run-frame census: a plan armed
        # past any realistic ordinal counts frames without ever firing.
        census = NetFaultPlan("delay", at_op=1 << 30, seed=chaos_seed)
        registry = PeerHealthRegistry((address,))
        clean = _extract(
            query, workload, scale, seed,
            config=_remote_config(address, registry,
                                  faulty_transport_factory(census)),
        )
        clean_ok = clean.sql == baseline_sql
        cells.append(_cell(
            "clean", "full", clean_ok,
            "remote loopback run byte-identical to inline baseline"
            if clean_ok else
            f"remote run diverged from baseline (verdict {clean.verdict})",
        ))
        mark = "ok " if clean_ok else "FAIL"
        out.write(f"{'clean':<12}: {mark} full       {cells[-1]['outcome']}\n")
        frames = census.op_count
        out.write(f"census      : {frames} run frames per extraction\n")

        phases = {"mid": max(2, frames // 2)}
        if not fast:
            phases = {
                "early": 2,
                "mid": max(2, frames // 2),
                "late": max(3, int(frames * 0.8)),
            }
        for fault in NET_FAULT_CLASSES:
            for phase_name, at_op in phases.items():
                cell = _fault_cell(
                    fault, phase_name, at_op, agent, query, workload, scale,
                    seed, chaos_seed, baseline_sql,
                )
                cells.append(cell)
                mark = "ok " if cell["ok"] else "FAIL"
                out.write(f"{fault:<12}: {mark} {phase_name:<10} "
                          f"{cell['outcome']}\n")
    finally:
        agent.stop()

    survived = all(cell["ok"] for cell in cells)
    report = {
        "survived": survived,
        "fault_classes": list(NET_FAULT_CLASSES),
        "phases": sorted({cell["phase"] for cell in cells}),
        "cells": cells,
        "baseline_sql": baseline_sql,
        "workdir": str(workdir),
    }
    matrix_path = workdir / "net_chaos_matrix.json"
    with open(matrix_path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    out.write(f"matrix      : {matrix_path}\n")
    return report
