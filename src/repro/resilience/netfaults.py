"""Network-fault injection for the remote worker transport (DESIGN.md §5.18).

The supervisor dials worker agents through a transport factory; under chaos
the factory hands back a :class:`FaultyTransport` — a real
:class:`~repro.isolation.protocol.TcpTransport` whose *send side* injects one
seeded fault from the wire-pathology taxonomy:

* ``delay``      — the request frame is delivered late (but within deadline);
                   the EWMA failure detector must absorb it without a fence
* ``drop``       — the request frame silently vanishes; the connection stays
                   up (the classic half-open link) and the read deadline is
                   the only thing that notices
* ``partition``  — the request is delivered, then the link goes dark: the
                   reply is trapped in the kernel until the supervisor has
                   abandoned the lease, and arrives *late* on the healed
                   link — the fencing reader must drop it
* ``torn_frame`` — half a frame, then the connection dies mid-byte
* ``duplicate``  — the frame is transmitted twice; the receiver's sequence
                   numbers must dedup it to exactly one execution
* ``reorder``    — the frame is held and released *after* the next frame;
                   the receiver's reorder window must heal the order
* ``corrupt``    — one bit of the payload is flipped; the CRC must catch it
* ``byte_drip``  — the frame arrives one sliver at a time; slow is not dead,
                   so this must simply succeed

Like :class:`~repro.resilience.diskfaults.FaultyFS`, the plan fires exactly
once — on the ``at_op``'th ``run`` frame — and the *same plan object* is
shared across reconnects (the factory closes over it), so the recovery path
runs fault-free and the harness can assert ``fired``.
"""

from __future__ import annotations

import random
import select
import socket
import time

from repro.isolation.protocol import (
    _TCP_HEADER,
    TcpTransport,
    TransportTimeout,
    parse_address,
)

#: every fault class the net-chaos profile must survive
NET_FAULT_CLASSES = (
    "delay",
    "drop",
    "partition",
    "torn_frame",
    "duplicate",
    "reorder",
    "corrupt",
    "byte_drip",
)


class NetFaultPlan:
    """One seeded, one-shot network fault, shared across reconnects.

    ``at_op`` counts supervisor→agent ``run`` frames (the pipeline-phase
    dial: early/mid/late arming points are invocation ordinals), matching
    ``FaultyFS.at_op`` counting matching filesystem operations.
    """

    def __init__(self, kind: str, at_op: int = 1, seed: int = 1337,
                 delay_seconds: float = 0.05):
        if kind not in NET_FAULT_CLASSES:
            raise ValueError(f"unknown network fault {kind!r}")
        self.kind = kind
        self.at_op = at_op
        self.seed = seed
        self.delay_seconds = delay_seconds
        self.op_count = 0
        self.fired = False
        #: injection bookkeeping, mirroring FaultyExecutable.injected
        self.injected: dict = {}

    def arm(self, message: dict) -> bool:
        """Count a matching frame; True when this one should fault."""
        if self.fired or message.get("cmd") != "run":
            return False
        self.op_count += 1
        if self.op_count == self.at_op:
            self.fired = True
            self.injected[self.kind] = self.injected.get(self.kind, 0) + 1
            return True
        return False


class FaultyTransport(TcpTransport):
    """A :class:`TcpTransport` that injects the plan's fault on send.

    All faults model the *network*, so they live between :meth:`encode` and
    the socket: the protocol layer above (sequence numbers, CRC, deadlines,
    fencing) is exactly the production code under test.
    """

    def __init__(self, sock: socket.socket, plan: NetFaultPlan,
                 secret: bytes | None = None):
        super().__init__(sock, secret=secret)
        self.plan = plan
        self._held: bytes | None = None
        self._partition_active = False
        self._stash = b""

    # -- send side -----------------------------------------------------------

    def send(self, message: dict) -> None:
        if self._partition_active:
            # any new outbound frame heals the partition: the retry/probe
            # traffic proves the route is back, and the trapped late reply
            # is released to exercise the fencing reader
            self._heal_partition()
        if not self.plan.arm(message):
            self._transmit_with_holds(self.encode(message))
            return
        kind = self.plan.kind
        if kind == "delay":
            time.sleep(self.plan.delay_seconds)
            self._transmit_with_holds(self.encode(message))
        elif kind == "drop":
            # vanish without consuming a sequence number: the stream stays
            # gapless and the connection looks perfectly healthy (half-open)
            return
        elif kind == "partition":
            self._transmit_with_holds(self.encode(message))
            self._partition_active = True
        elif kind == "torn_frame":
            data = self.encode(message)
            self._transmit(data[: max(1, len(data) // 2)])
            self.close()
        elif kind == "duplicate":
            data = self.encode(message)
            self._transmit(data)
            self._transmit(data)
        elif kind == "reorder":
            # hold this frame; it goes out *after* the next one
            self._held = self.encode(message)
        elif kind == "corrupt":
            data = bytearray(self.encode(message))
            rng = random.Random(self.plan.seed)
            payload_span = max(1, len(data) - _TCP_HEADER.size)
            position = _TCP_HEADER.size + rng.randrange(payload_span)
            data[position] ^= 1 << rng.randrange(8)
            self._transmit(bytes(data))
        elif kind == "byte_drip":
            data = self.encode(message)
            step = max(1, len(data) // 64)
            for offset in range(0, len(data), step):
                self._transmit(data[offset:offset + step])
                time.sleep(0.002)

    def _transmit_with_holds(self, data: bytes) -> None:
        self._transmit(data)
        if self._held is not None:
            held, self._held = self._held, None
            self._transmit(held)

    # -- receive side (partition darkness) ------------------------------------

    def recv(self, deadline_seconds):
        if self._partition_active:
            # the link is dark: whatever the peer sends stays trapped (we
            # deliberately do not read the socket, so the kernel holds the
            # late reply for the post-heal replay) and the caller sees only
            # its deadline expiring
            time.sleep(0.01)
            raise TransportTimeout()
        return super().recv(deadline_seconds)

    def _heal_partition(self) -> None:
        self._partition_active = False
        # drain anything the kernel buffered during the darkness into the
        # parse buffer ahead of future bytes — late replies arrive first
        while True:
            try:
                readable, _, _ = select.select([self.sock], [], [], 0)
            except (OSError, ValueError):
                return
            if not readable:
                break
            try:
                chunk = self.sock.recv(1 << 20)
            except OSError:
                return
            if not chunk:
                return
            self._stash += chunk
        if self._stash:
            self._buffer = self._stash + self._buffer
            self._stash = b""


def faulty_transport_factory(plan: NetFaultPlan, secret: bytes | None = None):
    """A transport factory injecting ``plan``, for ``config.transport_factory``.

    The returned factory is called on every (re)connect with the same plan
    object — one-shot semantics across connection generations, exactly like
    a :class:`~repro.resilience.diskfaults.FaultyFS` surviving a store
    reopen.
    """

    def factory(address: str, timeout: float) -> FaultyTransport:
        host, port = parse_address(address)
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.settimeout(None)
        return FaultyTransport(sock, plan, secret=secret)

    return factory
