"""Resource budgets and the extraction watchdog.

UNMASQUE's probe loop is open-ended: a pathological hidden application (or a
pathological synthetic database) can drive the pipeline into unbounded
invocation counts, giant scans, or runaway data generation.  A
:class:`ResourceBudget` caps four resources — application invocations, engine
rows scanned, synthetic-DB cells materialized, and wall-clock time — and
raises :class:`~repro.errors.BudgetExhausted` the moment any limit is hit.

Charging is cooperative and cheap: the session charges invocations and cells
at its own choke points, the engine charges rows scanned from the executor's
scan profile, and the wall-clock check piggybacks on the engine's existing
deadline poll (:meth:`~repro.engine.database.Database.check_deadline`), so
even a module stuck inside one giant scan is cut off within a tick of the
wall-clock limit.

``BudgetExhausted`` is a non-transient :class:`~repro.errors.ReproError`:
the retry layer never retries it, and the pipeline's best-effort path records
it as a degradation (or fails fast), so budget exhaustion always terminates
with a structured outcome rather than a hang.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import BudgetExhausted


@dataclass(frozen=True)
class BudgetSpec:
    """Declarative limits; ``None`` means unlimited.

    ``max_module_invocations`` caps invocations *within a single pipeline
    module* (reset on module change); all other limits are per-run.
    """

    max_invocations: Optional[int] = None
    max_module_invocations: Optional[int] = None
    max_rows_scanned: Optional[int] = None
    max_cells: Optional[int] = None
    max_seconds: Optional[float] = None

    @classmethod
    def unlimited(cls) -> "BudgetSpec":
        return cls()

    @property
    def enabled(self) -> bool:
        return any(
            limit is not None
            for limit in (
                self.max_invocations,
                self.max_module_invocations,
                self.max_rows_scanned,
                self.max_cells,
                self.max_seconds,
            )
        )


class ResourceBudget:
    """Mutable usage ledger enforcing a :class:`BudgetSpec`.

    The clock is injectable for deterministic tests.  When a metrics registry
    is attached, usage is mirrored into ``budget_*`` gauges and exhaustions
    into the ``budget_exhaustions_total`` counter.
    """

    def __init__(
        self,
        spec: BudgetSpec,
        clock: Callable[[], float] = time.perf_counter,
        metrics=None,
        observer: Optional[Callable[[str, int], None]] = None,
    ):
        self.spec = spec
        self.clock = clock
        self.metrics = metrics
        #: called as ``observer(resource, running_total)`` on every charge —
        #: telemetry only, never enforcement (the serve memory governor's
        #: per-job footprint feed).  Exceptions are swallowed: observability
        #: must not fail an extraction.
        self.observer = observer
        self.invocations = 0
        self.rows_scanned = 0
        self.cells = 0
        self.started_at: Optional[float] = None
        self.module: Optional[str] = None
        self.module_invocations: dict[str, int] = {}
        self.exhausted: Optional[BudgetExhausted] = None

    @property
    def enabled(self) -> bool:
        return self.spec.enabled

    @property
    def active(self) -> bool:
        """Should charge sites account at all?

        True when limits are set (*enforcing*) or an observer is attached
        (*observing*): an observer-only budget keeps the accounting running
        for telemetry while every ``None`` limit stays unlimited.
        """
        return self.spec.enabled or self.observer is not None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Start (or restart) the wall clock; idempotent within a run."""
        if self.started_at is None:
            self.started_at = self.clock()

    def set_module(self, module: Optional[str]) -> None:
        self.module = module

    def elapsed(self) -> float:
        if self.started_at is None:
            return 0.0
        return self.clock() - self.started_at

    def remaining_seconds(self) -> Optional[float]:
        """Wall-clock budget left, or ``None`` when unlimited.

        Before :meth:`start` the full limit remains; once the clock runs the
        remainder is clamped at ``0.0`` so callers can use it directly as a
        timeout (see :mod:`repro.resilience.deadlines`).
        """
        limit = self.spec.max_seconds
        if limit is None:
            return None
        if self.started_at is None:
            return limit
        return max(0.0, limit - self.elapsed())

    # -- charging ----------------------------------------------------------

    def charge_invocation(self) -> None:
        if not self.active:
            return
        self.invocations += 1
        module = self.module or "?"
        used = self.module_invocations.get(module, 0) + 1
        self.module_invocations[module] = used
        self._gauge("budget_invocations_used", self.invocations)
        limit = self.spec.max_invocations
        if limit is not None and self.invocations > limit:
            self._exhaust("invocations", limit, self.invocations)
        module_limit = self.spec.max_module_invocations
        if module_limit is not None and used > module_limit:
            self._exhaust("module_invocations", module_limit, used)

    def charge_invocations(self, count: int) -> None:
        """Bulk-charge ``count`` invocations (tenant ledgers settling a job)."""
        if not self.active or count <= 0:
            return
        self.invocations += count
        module = self.module or "?"
        used = self.module_invocations.get(module, 0) + count
        self.module_invocations[module] = used
        self._gauge("budget_invocations_used", self.invocations)
        limit = self.spec.max_invocations
        if limit is not None and self.invocations > limit:
            self._exhaust("invocations", limit, self.invocations)

    def charge_rows_scanned(self, count: int) -> None:
        if not self.active:
            return
        self.rows_scanned += count
        self._gauge("budget_rows_scanned_used", self.rows_scanned)
        limit = self.spec.max_rows_scanned
        if limit is not None and self.rows_scanned > limit:
            self._exhaust("rows_scanned", limit, self.rows_scanned)

    def charge_cells(self, count: int) -> None:
        if not self.active:
            return
        self.cells += count
        self._gauge("budget_cells_materialized_used", self.cells)
        self._notify("cells", self.cells)
        limit = self.spec.max_cells
        if limit is not None and self.cells > limit:
            self._exhaust("cells", limit, self.cells)

    def check_wall_clock(self) -> None:
        limit = self.spec.max_seconds
        if limit is None or self.started_at is None:
            return
        elapsed = self.elapsed()
        if elapsed > limit:
            self._gauge("budget_wall_seconds_used", elapsed)
            self._exhaust("wall_clock_seconds", limit, round(elapsed, 3))

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> dict:
        """Usage vs. limits, for span tags and outcome metadata."""
        spec = self.spec
        return {
            "invocations": self.invocations,
            "rows_scanned": self.rows_scanned,
            "cells_materialized": self.cells,
            "wall_seconds": round(self.elapsed(), 6),
            "limits": {
                "invocations": spec.max_invocations,
                "module_invocations": spec.max_module_invocations,
                "rows_scanned": spec.max_rows_scanned,
                "cells": spec.max_cells,
                "seconds": spec.max_seconds,
            },
            "exhausted": str(self.exhausted) if self.exhausted else None,
        }

    # -- internals ---------------------------------------------------------

    def _gauge(self, name: str, value) -> None:
        if self.metrics is not None:
            self.metrics.gauge(name).set(value)

    def _notify(self, resource: str, total: int) -> None:
        if self.observer is None:
            return
        try:
            self.observer(resource, total)
        except Exception:  # noqa: BLE001 — telemetry must never fail a run
            pass

    def _exhaust(self, resource: str, limit, used) -> None:
        error = BudgetExhausted(resource, limit, used, module=self.module)
        if self.exhausted is None:
            self.exhausted = error
        if self.metrics is not None:
            self.metrics.counter("budget_exhaustions_total").inc()
        raise error
