"""Retry with exponential backoff and seeded jitter.

A :class:`RetryPolicy` answers two questions for the invocation boundary:

* **is this error worth retrying?** — classification over the
  :mod:`repro.errors` hierarchy.  :class:`~repro.errors.TransientExecutableError`
  always is; :class:`~repro.errors.ExecutableTimeoutError` only when
  ``retry_timeouts`` is set (during From-clause identification a timeout is a
  *signal* — "table not referenced" — so retrying merely re-confirms it, at
  ``max_attempts``× probe cost); every :class:`~repro.errors.DatabaseError`
  is fatal because the pipeline interprets engine errors semantically
  (``UndefinedTableError`` drives table identification), and everything
  outside ``ReproError`` is a genuine bug that must propagate.

* **how long to wait?** — exponential backoff ``base · multiplier^(attempt-1)``
  capped at ``max_delay``, with ±``jitter`` fractional noise drawn from the
  policy's own seeded RNG (never the session RNG: retries must not perturb
  the extraction's probe sequence, or a faulted run would diverge from the
  fault-free one even after successful recovery).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import (
    DatabaseError,
    ExecutableTimeoutError,
    ReproError,
    TransientExecutableError,
)

RETRYABLE = "retryable"
FATAL = "fatal"


@dataclass
class RetryPolicy:
    """Backoff schedule + error classification for one session."""

    #: total attempts per invocation (1 disables retrying entirely)
    max_attempts: int = 3
    #: first backoff delay, seconds (0 disables sleeping)
    base_delay: float = 0.01
    #: geometric growth factor between attempts
    multiplier: float = 2.0
    #: ceiling on any single delay, seconds
    max_delay: float = 1.0
    #: ± fraction of the delay randomised away (0 disables jitter)
    jitter: float = 0.5
    #: treat invocation timeouts as retryable (see module docstring)
    retry_timeouts: bool = False
    #: seed for the jitter RNG (independent of the extraction RNG)
    seed: int = 0
    #: injectable sleeper, for tests and zero-wait chaos runs
    sleeper: Callable[[float], None] = time.sleep
    rng: random.Random = field(init=False, repr=False)

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        self.rng = random.Random(self.seed)

    # -- classification ------------------------------------------------------

    def classify(self, error: BaseException) -> str:
        if isinstance(error, TransientExecutableError):
            return RETRYABLE
        if isinstance(error, ExecutableTimeoutError):
            return RETRYABLE if self.retry_timeouts else FATAL
        if isinstance(error, (DatabaseError, ReproError)):
            return FATAL  # engine errors are signals; pipeline errors final
        return FATAL

    def is_retryable(self, error: BaseException) -> bool:
        return self.classify(error) == RETRYABLE

    # -- schedule ------------------------------------------------------------

    def backoff(self, attempt: int) -> float:
        """Delay before attempt ``attempt + 1`` (first attempt is 1)."""
        delay = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        if delay <= 0.0:
            return 0.0
        if self.jitter > 0.0:
            delay *= 1.0 + self.jitter * (2.0 * self.rng.random() - 1.0)
        return max(0.0, delay)

    def sleep(self, delay: float) -> None:
        if delay > 0.0:
            self.sleeper(delay)

    # -- convenience ---------------------------------------------------------

    def call(self, fn: Callable[[], object], on_retry: Optional[Callable] = None):
        """Run ``fn`` under this policy; ``on_retry(attempt, error)`` is
        invoked before each backoff sleep (for metrics hooks)."""
        attempt = 1
        while True:
            try:
                return fn()
            except Exception as error:
                if not self.is_retryable(error) or attempt >= self.max_attempts:
                    raise
                if on_retry is not None:
                    on_retry(attempt, error)
                self.sleep(self.backoff(attempt))
                attempt += 1
