"""Cross-run trace diffing behind ``repro trace-diff``.

Compares two extraction runs — ledger entries (``path.sqlite`` or
``path.sqlite@RUN_ID``) or recorded bench payloads (``benchmarks/
baseline.json`` / ``BENCH_extraction.json``) in any combination — and
reports:

* clause-by-clause SQL deltas (clauses added, removed, or re-attributed);
* per-module self-time and invocation-count regressions;
* cache hit-rate drift (plan cache + invocation memo).

The output separates *warnings* (drift beyond the threshold, default 25%)
from informational lines, and :func:`render_diff` returns the warning count
so CI can decide whether to annotate without failing the build.
"""

from __future__ import annotations

import json
import os
from typing import Optional


class RunView:
    """The diffable projection of one run, whatever its source."""

    __slots__ = (
        "label",
        "sql",
        "jobs",
        "seconds",
        "invocations",
        "modules",
        "caches",
        "clauses",
        "workers",
    )

    def __init__(self, label: str):
        self.label = label
        self.sql = ""
        self.jobs = 1
        self.seconds = 0.0
        self.invocations = 0
        #: module -> {"seconds": float, "invocations": int}
        self.modules: dict[str, dict] = {}
        #: metric name -> hit rate (plan_cache / invocation_cache)
        self.caches: dict[str, float] = {}
        #: (clause kind, clause SQL) in extraction order
        self.clauses: list[tuple[str, str]] = []
        #: worker-pool counters (respawns, quarantined, ...)
        self.workers: dict[str, int] = {}


# -- loading ------------------------------------------------------------------


def parse_source(source: str) -> tuple[str, Optional[int]]:
    """Split a ``path[@run_id]`` CLI argument."""
    if "@" in source:
        path, _, run_part = source.rpartition("@")
        if path and run_part.isdigit():
            return path, int(run_part)
    return source, None


def load_views(source: str) -> list[RunView]:
    """Load every comparable run view from a CLI source argument.

    A bench payload yields one view per ``(query, jobs)`` run; a ledger
    yields the selected run (or its latest finished run).
    """
    path, run_id = parse_source(source)
    if not os.path.exists(path):
        raise FileNotFoundError(f"no such run source: {path}")
    with open(path, "rb") as handle:
        head = handle.read(16)
    if head.startswith(b"SQLite format 3"):
        return [_view_from_ledger(path, run_id)]
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if "queries" in payload and "benchmark" in payload:
        return _views_from_bench(payload, label=os.path.basename(path))
    raise ValueError(
        f"{path}: neither a SQLite run ledger nor a bench payload"
    )


def _view_from_ledger(path: str, run_id: Optional[int]) -> RunView:
    from repro.obs.ledger import RunLedger

    with RunLedger(path) as ledger:
        run = ledger.run(run_id)
        if run is None:
            raise ValueError(f"{path}: no runs recorded")
        view = RunView(f"{os.path.basename(path)}@{run['run_id']}")
        view.sql = run["sql"]
        view.jobs = run["jobs"]
        view.seconds = run["seconds"]
        view.invocations = run["invocations"]
        view.modules = ledger.modules(run["run_id"])
        view.clauses = [
            (row["clause"], row["target"])
            for row in ledger.clauses(run["run_id"])
        ]
        caches = run.get("extras", {}).get("caches") or {}
        view.caches = _cache_rates(caches)
        view.workers = {
            k: int(v)
            for k, v in (run.get("extras", {}).get("workers") or {}).items()
            if isinstance(v, (int, float))
        }
    return view


def _cache_rates(caches: dict) -> dict[str, float]:
    rates = {}
    for name in ("plan_cache", "invocation_cache"):
        stats = caches.get(name)
        if isinstance(stats, dict) and "hit_rate" in stats:
            rates[name] = float(stats["hit_rate"])
    return rates


def _views_from_bench(payload: dict, label: str) -> list[RunView]:
    views = []
    for row in payload.get("queries", []):
        for run in row.get("runs", []):
            view = RunView(f"{label}:{row['query']}@jobs={run['jobs']}")
            view.sql = run.get("sql", "")
            view.jobs = run.get("jobs", 1)
            view.seconds = float(run.get("seconds", 0.0))
            view.invocations = int(run.get("invocations", 0))
            view.modules = {
                name: dict(stats)
                for name, stats in (run.get("modules") or {}).items()
            }
            for key, name in (
                ("plan_cache_hit_rate", "plan_cache"),
                ("invocation_cache_hit_rate", "invocation_cache"),
            ):
                if key in run:
                    view.caches[name] = float(run[key])
            view.workers = {
                k: int(v)
                for k, v in (run.get("workers") or {}).items()
                if isinstance(v, (int, float))
            }
            views.append(view)
    return views


def pair_views(
    a_views: list[RunView], b_views: list[RunView]
) -> list[tuple[RunView, RunView]]:
    """Match runs across two sources for comparison.

    Bench payloads are matched on the ``query@jobs`` suffix of the label so
    perf-smoke lines up with the committed baseline; single-run sources are
    compared head-to-head.
    """
    if len(a_views) == 1 and len(b_views) == 1:
        return [(a_views[0], b_views[0])]

    def _key(view: RunView) -> str:
        return view.label.split(":", 1)[-1]

    b_by_key = {_key(view): view for view in b_views}
    pairs = []
    for view in a_views:
        other = b_by_key.get(_key(view))
        if other is not None:
            pairs.append((view, other))
    return pairs


# -- diffing ------------------------------------------------------------------


def _clause_set(view: RunView) -> set[tuple[str, str]]:
    if view.clauses:
        return set(view.clauses)
    return set()


def diff_pair(a: RunView, b: RunView, threshold: float = 0.25) -> tuple[list, list]:
    """Diff one run pair; returns ``(info lines, warning lines)``."""
    info: list[str] = []
    warnings: list[str] = []

    # clause-level SQL delta
    if a.sql and b.sql and a.sql != b.sql:
        warnings.append("extracted SQL differs")
        clauses_a, clauses_b = _clause_set(a), _clause_set(b)
        if clauses_a or clauses_b:
            for clause, target in sorted(clauses_b - clauses_a):
                warnings.append(f"clause added   [{clause}] {target}")
            for clause, target in sorted(clauses_a - clauses_b):
                warnings.append(f"clause removed [{clause}] {target}")
        else:
            info.append("(no clause-level provenance recorded; raw SQL only)")
    elif a.sql:
        info.append("extracted SQL identical")

    # wall-clock / invocations
    if a.seconds > 0:
        delta = (b.seconds - a.seconds) / a.seconds
        line = (
            f"wall-clock {a.seconds:.3f}s -> {b.seconds:.3f}s "
            f"({delta:+.1%})"
        )
        (warnings if delta > threshold else info).append(line)
    if a.invocations:
        if b.invocations != a.invocations:
            line = f"invocations {a.invocations} -> {b.invocations}"
            grew = b.invocations > a.invocations * (1.0 + threshold)
            (warnings if grew else info).append(line)
        else:
            info.append(f"invocations {a.invocations} (unchanged)")

    # per-module self-time / invocation drift
    for module in sorted(set(a.modules) | set(b.modules)):
        stats_a = a.modules.get(module)
        stats_b = b.modules.get(module)
        if stats_a is None:
            info.append(f"module {module}: new in B")
            continue
        if stats_b is None:
            info.append(f"module {module}: gone in B")
            continue
        sec_a, sec_b = stats_a.get("seconds", 0.0), stats_b.get("seconds", 0.0)
        if sec_a > 0:
            delta = (sec_b - sec_a) / sec_a
            line = (
                f"module {module}: self-time {sec_a:.3f}s -> {sec_b:.3f}s "
                f"({delta:+.1%})"
            )
            (warnings if delta > threshold else info).append(line)
        inv_a = stats_a.get("invocations", 0)
        inv_b = stats_b.get("invocations", 0)
        if inv_b != inv_a:
            line = f"module {module}: invocations {inv_a} -> {inv_b}"
            grew = inv_a and inv_b > inv_a * (1.0 + threshold)
            (warnings if grew else info).append(line)

    # cache hit-rate drift
    for name in sorted(set(a.caches) | set(b.caches)):
        rate_a = a.caches.get(name, 0.0)
        rate_b = b.caches.get(name, 0.0)
        if abs(rate_b - rate_a) < 1e-9:
            continue
        line = f"{name} hit rate {rate_a:.1%} -> {rate_b:.1%}"
        dropped = rate_a > 0.0 and rate_b < rate_a * (1.0 - threshold)
        (warnings if dropped else info).append(line)

    # worker-pool counters
    for name in sorted(set(a.workers) | set(b.workers)):
        count_a = a.workers.get(name, 0)
        count_b = b.workers.get(name, 0)
        if count_a != count_b:
            info.append(f"workers {name}: {count_a} -> {count_b}")

    return info, warnings


def render_diff(
    source_a: str, source_b: str, threshold: float = 0.25
) -> tuple[str, int]:
    """The full ``repro trace-diff`` report; returns ``(text, warning count)``."""
    pairs = pair_views(load_views(source_a), load_views(source_b))
    lines = [
        "trace diff",
        "==========",
        f"A: {source_a}",
        f"B: {source_b}",
        f"threshold: {threshold:.0%}",
    ]
    if not pairs:
        lines.append("no comparable runs found between the two sources")
        return "\n".join(lines), 0
    total_warnings = 0
    for a, b in pairs:
        lines.append("")
        lines.append(f"-- {a.label}  vs  {b.label}")
        info, warnings = diff_pair(a, b, threshold)
        total_warnings += len(warnings)
        for line in warnings:
            lines.append(f"  WARN {line}")
        for line in info:
            lines.append(f"       {line}")
    lines.append("")
    lines.append(
        f"{total_warnings} warning(s) above the {threshold:.0%} threshold"
        if total_warnings
        else f"no drift above the {threshold:.0%} threshold"
    )
    return "\n".join(lines), total_warnings
