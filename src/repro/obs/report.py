"""Render a stored trace as a human-readable report.

Views of the same JSONL trace:

* a **flame-style tree** — each span indented under its parent with its
  duration, share of the root's wall-clock, and interesting tags.  Wide
  fan-outs (a module issuing hundreds of invocations) are elided after
  ``max_children`` entries with a one-line rollup so the report stays
  readable at any trace size;
* a **per-module self-time table** — each pipeline module's wall-clock,
  the time covered by its child spans, and the remainder (its own
  bookkeeping).  Child coverage is the *union* of the children's
  ``[start, end)`` intervals, not their sum: under ``--jobs N`` the probe
  scheduler records parallel invocation spans that overlap in wall-clock
  time, and summing them double-counts the overlap (producing "busy" times
  exceeding the module's wall-clock and negative self-times);
* a **cache / worker summary** — plan-cache and invocation-cache hit rates
  plus isolation worker-pool counters, read from the root span's ``caches``
  tag when the pipeline recorded one;
* a **top-N slowest queries** table — engine-query spans ranked by
  duration, with their rows-scanned / rows-emitted counts.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.obs.trace import Span

#: tags rendered inline next to a span line, in this order (``module`` and
#: ``statement`` are omitted — the span label already carries them)
_INLINE_TAGS = (
    "tables",
    "rows_scanned",
    "rows_emitted",
    "rows_affected",
    "invocations",
    "error",
)


def _build_tree(spans: Iterable[Span]):
    """(roots, children-by-parent-id), children ordered by start time."""
    spans = list(spans)
    children: dict[Optional[int], list[Span]] = {}
    ids = {span.span_id for span in spans}
    roots: list[Span] = []
    for span in spans:
        if span.parent_id is None or span.parent_id not in ids:
            roots.append(span)
        else:
            children.setdefault(span.parent_id, []).append(span)
    for bucket in children.values():
        bucket.sort(key=lambda s: s.start)
    roots.sort(key=lambda s: s.start)
    return roots, children


def _format_tags(span: Span) -> str:
    parts = []
    for key in _INLINE_TAGS:
        if key in span.tags:
            value = span.tags[key]
            if isinstance(value, (list, tuple)):
                value = ",".join(str(v) for v in value)
            parts.append(f"{key}={value}")
    return f"  [{' '.join(parts)}]" if parts else ""


def _render_span(
    span: Span,
    depth: int,
    total: float,
    children: dict,
    max_children: int,
    lines: list[str],
) -> None:
    share = f"{100.0 * span.duration / total:5.1f}%" if total > 0 else "    -"
    label = f"{'  ' * depth}{span.kind}:{span.name}"
    pad = max(1, 48 - len(label))
    lines.append(f"{label} {'.' * pad} {span.duration:9.4f}s {share}{_format_tags(span)}")

    kids = children.get(span.span_id, [])
    shown = kids[:max_children]
    for child in shown:
        _render_span(child, depth + 1, total, children, max_children, lines)
    hidden = kids[max_children:]
    if hidden:
        hidden_seconds = sum(c.duration for c in hidden)
        lines.append(
            f"{'  ' * (depth + 1)}… {len(hidden)} more child spans "
            f"({hidden_seconds:.4f}s total)"
        )


def _interval_union(intervals: list[tuple[float, float]]) -> float:
    """Total length covered by a set of possibly overlapping intervals."""
    total = 0.0
    last_end: Optional[float] = None
    for start, end in sorted(intervals):
        if end <= start:
            continue
        if last_end is None or start >= last_end:
            total += end - start
            last_end = end
        elif end > last_end:
            total += end - last_end
            last_end = end
    return total


def _module_table(spans: list[Span], children: dict) -> list[str]:
    """Per-module wall/busy/self-time rows, aggregated by span id/parent.

    ``busy`` is the interval union of each module span's direct children
    (clamped to the module's own window), so overlapping parallel invocation
    spans recorded under ``--jobs N`` count each wall-clock second once.
    ``self`` is the module's wall-clock not covered by any child.
    """
    modules: dict[str, dict] = {}
    order: list[str] = []
    for span in spans:
        # verifier phases (kind "verify") earn a row alongside the pipeline
        # modules: certify time is extraction time the user waits for
        if span.kind not in ("module", "verify") or span.end is None:
            continue
        kids = [c for c in children.get(span.span_id, []) if c.end is not None]
        busy = _interval_union(
            [(max(c.start, span.start), min(c.end, span.end)) for c in kids]
        )
        row = modules.get(span.name)
        if row is None:
            row = modules[span.name] = {
                "wall": 0.0,
                "busy": 0.0,
                "invocations": 0,
            }
            order.append(span.name)
        row["wall"] += span.duration
        row["busy"] += busy
        row["invocations"] += sum(1 for c in kids if c.kind == "invocation")
    if not modules:
        return []
    lines = ["per-module self-time", "-" * 20]
    lines.append(
        f"{'module':<18} {'wall':>10} {'busy':>10} {'self':>10} "
        f"{'invocations':>12}"
    )
    for name in order:
        row = modules[name]
        self_time = max(0.0, row["wall"] - row["busy"])
        lines.append(
            f"{name:<18} {row['wall']:>9.4f}s {row['busy']:>9.4f}s "
            f"{self_time:>9.4f}s {row['invocations']:>12}"
        )
    return lines


def _cache_lines(roots: list[Span]) -> list[str]:
    """Cache hit rates and worker-pool counters from the root span's tag."""
    lines: list[str] = []
    for root in roots:
        caches = root.tags.get("caches")
        if not isinstance(caches, dict):
            continue
        parts = []
        for label, key in (("plan", "plan_cache"), ("invocation", "invocation_cache")):
            stats = caches.get(key)
            if isinstance(stats, dict) and "hit_rate" in stats:
                parts.append(
                    f"{label} {stats['hit_rate']:.0%} hit"
                    f" ({stats.get('hits', 0)} hits)"
                )
        if parts:
            lines.append("caches: " + ", ".join(parts))
        workers = caches.get("workers")
        if isinstance(workers, dict):
            lines.append(
                f"workers: {workers.get('invocations', 0)} invocations, "
                f"{workers.get('crashes', 0)} crashes, "
                f"{workers.get('kills', 0)} kills, "
                f"{workers.get('respawns', 0)} respawns, "
                f"{workers.get('quarantined', 0)} quarantined"
            )
    return lines


def _slowest_queries(spans: list[Span], top: int) -> list[str]:
    queries = sorted(
        (s for s in spans if s.kind == "query"),
        key=lambda s: s.duration,
        reverse=True,
    )[:top]
    if not queries:
        return []
    lines = [f"top {len(queries)} slowest engine queries", "-" * 34]
    header = f"{'#':>3} {'seconds':>10} {'scanned':>9} {'emitted':>9}  statement"
    lines.append(header)
    for rank, span in enumerate(queries, 1):
        scanned = span.tags.get("rows_scanned", "-")
        emitted = span.tags.get("rows_emitted", span.tags.get("rows_affected", "-"))
        statement = span.tags.get("statement", span.name)
        tables = span.tags.get("tables")
        if tables:
            if isinstance(tables, (list, tuple)):
                tables = ",".join(str(t) for t in tables)
            statement = f"{statement}({tables})"
        lines.append(
            f"{rank:>3} {span.duration:>10.4f} {scanned!s:>9} {emitted!s:>9}  {statement}"
        )
    return lines


def render_trace_report(
    spans: Iterable[Span],
    top_queries: int = 10,
    max_children: int = 8,
) -> str:
    """The full report: summary header, span tree, slowest-query table."""
    spans = list(spans)
    if not spans:
        return "trace report: no spans recorded"

    roots, children = _build_tree(spans)
    total = sum(root.duration for root in roots)
    by_kind: dict[str, int] = {}
    for span in spans:
        by_kind[span.kind] = by_kind.get(span.kind, 0) + 1

    lines = [
        "trace report",
        "============",
        f"spans: {len(spans)} "
        f"({', '.join(f'{kind}={n}' for kind, n in sorted(by_kind.items()))})",
        f"wall-clock: {total:.4f}s across {len(roots)} root span(s)",
        "",
    ]
    cache_lines = _cache_lines(roots)
    if cache_lines:
        lines.extend(cache_lines)
        lines.append("")
    for root in roots:
        _render_span(root, 0, total, children, max_children, lines)

    module_lines = _module_table(spans, children)
    if module_lines:
        lines.append("")
        lines.extend(module_lines)

    slow = _slowest_queries(spans, top_queries)
    if slow:
        lines.append("")
        lines.extend(slow)
    return "\n".join(lines)
