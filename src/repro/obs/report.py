"""Render a stored trace as a human-readable report.

Two views of the same JSONL trace:

* a **flame-style tree** — each span indented under its parent with its
  duration, share of the root's wall-clock, and interesting tags.  Wide
  fan-outs (a module issuing hundreds of invocations) are elided after
  ``max_children`` entries with a one-line rollup so the report stays
  readable at any trace size;
* a **top-N slowest queries** table — engine-query spans ranked by
  duration, with their rows-scanned / rows-emitted counts.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.obs.trace import Span

#: tags rendered inline next to a span line, in this order (``module`` and
#: ``statement`` are omitted — the span label already carries them)
_INLINE_TAGS = (
    "tables",
    "rows_scanned",
    "rows_emitted",
    "rows_affected",
    "invocations",
    "error",
)


def _build_tree(spans: Iterable[Span]):
    """(roots, children-by-parent-id), children ordered by start time."""
    spans = list(spans)
    children: dict[Optional[int], list[Span]] = {}
    ids = {span.span_id for span in spans}
    roots: list[Span] = []
    for span in spans:
        if span.parent_id is None or span.parent_id not in ids:
            roots.append(span)
        else:
            children.setdefault(span.parent_id, []).append(span)
    for bucket in children.values():
        bucket.sort(key=lambda s: s.start)
    roots.sort(key=lambda s: s.start)
    return roots, children


def _format_tags(span: Span) -> str:
    parts = []
    for key in _INLINE_TAGS:
        if key in span.tags:
            value = span.tags[key]
            if isinstance(value, (list, tuple)):
                value = ",".join(str(v) for v in value)
            parts.append(f"{key}={value}")
    return f"  [{' '.join(parts)}]" if parts else ""


def _render_span(
    span: Span,
    depth: int,
    total: float,
    children: dict,
    max_children: int,
    lines: list[str],
) -> None:
    share = f"{100.0 * span.duration / total:5.1f}%" if total > 0 else "    -"
    label = f"{'  ' * depth}{span.kind}:{span.name}"
    pad = max(1, 48 - len(label))
    lines.append(f"{label} {'.' * pad} {span.duration:9.4f}s {share}{_format_tags(span)}")

    kids = children.get(span.span_id, [])
    shown = kids[:max_children]
    for child in shown:
        _render_span(child, depth + 1, total, children, max_children, lines)
    hidden = kids[max_children:]
    if hidden:
        hidden_seconds = sum(c.duration for c in hidden)
        lines.append(
            f"{'  ' * (depth + 1)}… {len(hidden)} more child spans "
            f"({hidden_seconds:.4f}s total)"
        )


def _slowest_queries(spans: list[Span], top: int) -> list[str]:
    queries = sorted(
        (s for s in spans if s.kind == "query"),
        key=lambda s: s.duration,
        reverse=True,
    )[:top]
    if not queries:
        return []
    lines = [f"top {len(queries)} slowest engine queries", "-" * 34]
    header = f"{'#':>3} {'seconds':>10} {'scanned':>9} {'emitted':>9}  statement"
    lines.append(header)
    for rank, span in enumerate(queries, 1):
        scanned = span.tags.get("rows_scanned", "-")
        emitted = span.tags.get("rows_emitted", span.tags.get("rows_affected", "-"))
        statement = span.tags.get("statement", span.name)
        tables = span.tags.get("tables")
        if tables:
            if isinstance(tables, (list, tuple)):
                tables = ",".join(str(t) for t in tables)
            statement = f"{statement}({tables})"
        lines.append(
            f"{rank:>3} {span.duration:>10.4f} {scanned!s:>9} {emitted!s:>9}  {statement}"
        )
    return lines


def render_trace_report(
    spans: Iterable[Span],
    top_queries: int = 10,
    max_children: int = 8,
) -> str:
    """The full report: summary header, span tree, slowest-query table."""
    spans = list(spans)
    if not spans:
        return "trace report: no spans recorded"

    roots, children = _build_tree(spans)
    total = sum(root.duration for root in roots)
    by_kind: dict[str, int] = {}
    for span in spans:
        by_kind[span.kind] = by_kind.get(span.kind, 0) + 1

    lines = [
        "trace report",
        "============",
        f"spans: {len(spans)} "
        f"({', '.join(f'{kind}={n}' for kind, n in sorted(by_kind.items()))})",
        f"wall-clock: {total:.4f}s across {len(roots)} root span(s)",
        "",
    ]
    for root in roots:
        _render_span(root, 0, total, children, max_children, lines)

    slow = _slowest_queries(spans, top_queries)
    if slow:
        lines.append("")
        lines.extend(slow)
    return "\n".join(lines)
