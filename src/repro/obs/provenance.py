"""Clause-level provenance: typed evidence events behind every decision.

The extraction pipeline shines light on an opaque application, yet — before
this module — it was opaque about *itself*: nothing recorded which probes
established a filter bound, killed a join-clique candidate, or flipped the
EQC guard's verdict.  A :class:`ProvenanceRecorder` closes that gap with a
durable, queryable stream of :class:`EvidenceEvent` records:

* ``probe``   — one logical black-box invocation (counted exactly once, on
  the same schedule as ``stats.invocations``: memo hits and retry attempts
  are recorded, discarded speculative executions are not);
* ``mutation`` — a persistent database-state change (a halving link keeping
  one half, a D¹ s-value refresh);
* ``observation`` — a derived fact that is not a probe (an EQC signal, a
  checker verdict, a module summary);
* ``clause_accepted`` / ``clause_rejected`` / ``clause_refined`` — one
  decision about one clause of the extracted SQL, carrying the *evidence
  chain*: the probe sequence numbers that established it.

Every event is stamped with the pipeline module it occurred in, and probes
additionally carry the probe database's content fingerprint (when cheap to
compute), whether the invocation was served from the invocation memo
(``cached``), whether it was executed ahead of the sequential schedule by
the ``--jobs`` scheduler (``speculative``), and whether it ran in an
isolation worker (``isolated``).

**Exactly-once contract** (DESIGN.md §5.15): the number of ``probe`` events
equals the logical invocation count for every ``--jobs`` value.  Parallel
map tasks record into task-local recorders that are absorbed on the main
thread in submission order (the same fold the metrics registry and span
records use); speculative halving links are recorded only when consumed.

The default recorder everywhere is :data:`NULL_PROVENANCE`, a shared no-op:
call sites pay one attribute load and one method call, nothing else.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Optional

#: event kinds
PROBE = "probe"
MUTATION = "mutation"
OBSERVATION = "observation"
ACCEPTED = "clause_accepted"
REJECTED = "clause_rejected"
REFINED = "clause_refined"

#: clause keys used by clause events, matching the assembled SQL's clauses
CLAUSE_FROM = "from"
CLAUSE_JOINS = "joins"
CLAUSE_FILTERS = "filters"
CLAUSE_SELECT = "select"
CLAUSE_GROUP_BY = "group_by"
CLAUSE_HAVING = "having"
CLAUSE_ORDER_BY = "order_by"
CLAUSE_LIMIT = "limit"

CLAUSE_KINDS = (
    CLAUSE_FROM,
    CLAUSE_JOINS,
    CLAUSE_FILTERS,
    CLAUSE_SELECT,
    CLAUSE_GROUP_BY,
    CLAUSE_HAVING,
    CLAUSE_ORDER_BY,
    CLAUSE_LIMIT,
)


class EvidenceEvent:
    """One typed provenance record."""

    __slots__ = (
        "seq",
        "ts",
        "module",
        "kind",
        "clause",
        "target",
        "detail",
        "rows",
        "error",
        "cached",
        "speculative",
        "isolated",
        "db_fingerprint",
        "evidence",
    )

    def __init__(
        self,
        seq: int,
        module: str,
        kind: str,
        clause: str = "",
        target: str = "",
        detail: str = "",
        rows: Optional[int] = None,
        error: str = "",
        cached: bool = False,
        speculative: bool = False,
        isolated: bool = False,
        db_fingerprint: str = "",
        evidence: tuple = (),
        ts: Optional[float] = None,
    ):
        self.seq = seq
        self.ts = time.time() if ts is None else ts
        self.module = module
        self.kind = kind
        self.clause = clause
        self.target = target
        self.detail = detail
        self.rows = rows
        self.error = error
        self.cached = cached
        self.speculative = speculative
        self.isolated = isolated
        self.db_fingerprint = db_fingerprint
        self.evidence = tuple(evidence)

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "ts": self.ts,
            "module": self.module,
            "kind": self.kind,
            "clause": self.clause,
            "target": self.target,
            "detail": self.detail,
            "rows": self.rows,
            "error": self.error,
            "cached": self.cached,
            "speculative": self.speculative,
            "isolated": self.isolated,
            "db_fingerprint": self.db_fingerprint,
            "evidence": list(self.evidence),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "EvidenceEvent":
        return cls(
            seq=payload["seq"],
            module=payload.get("module", ""),
            kind=payload.get("kind", OBSERVATION),
            clause=payload.get("clause", ""),
            target=payload.get("target", ""),
            detail=payload.get("detail", ""),
            rows=payload.get("rows"),
            error=payload.get("error", ""),
            cached=bool(payload.get("cached")),
            speculative=bool(payload.get("speculative")),
            isolated=bool(payload.get("isolated")),
            db_fingerprint=payload.get("db_fingerprint", ""),
            evidence=tuple(payload.get("evidence") or ()),
            ts=payload.get("ts"),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = f" {self.clause}:{self.target}" if self.clause else ""
        return f"<Evidence #{self.seq} {self.module}/{self.kind}{extra}>"


class ProvenanceRecorder:
    """Collects evidence events and attributes probes to clause decisions.

    ``sink`` — an optional ``callable(events: list[EvidenceEvent])`` invoked
    by :meth:`flush` with the events recorded since the previous flush; the
    session flushes at every module boundary, so a ledger sink receives the
    run's history incrementally and a crashed run keeps its partial trail.

    Attribution model: probes enter a per-module *unclaimed* pool; a clause
    event with ``claim=True`` drains the pool of its module into the event's
    evidence chain, so interleaved probe→decide loops (filters per column,
    order-by per candidate) slice their probes per decision for free.
    Modules whose probes collectively establish several clauses at once
    (group-by candidates, projection dependency fan-outs) instead pass
    ``include_module_probes=True`` to cite the module's whole probe range.
    A ``key`` links refinement stages across modules (projections → select
    refinement in aggregations): events sharing ``(clause, key)`` accumulate
    one evidence chain.
    """

    enabled = True

    def __init__(self, sink: Optional[Callable] = None):
        self.sink = sink
        self.events: list[EvidenceEvent] = []
        self._next_seq = 1
        self._flushed = 0
        #: module -> probe seqs not yet claimed by a clause event
        self._unclaimed: dict[str, list[int]] = {}
        #: module -> every probe seq recorded in it
        self._module_probes: dict[str, list[int]] = {}
        #: (clause, key) -> accumulated evidence chain across events
        self._by_key: dict[tuple, tuple] = {}

    # -- recording -----------------------------------------------------------

    def _append(self, event: EvidenceEvent) -> EvidenceEvent:
        self.events.append(event)
        return event

    def probe(
        self,
        module: str,
        rows: Optional[int] = None,
        error: str = "",
        cached: bool = False,
        speculative: bool = False,
        isolated: bool = False,
        db_fingerprint: str = "",
        detail: str = "",
    ) -> int:
        """Record one logical invocation; returns its sequence number."""
        seq = self._next_seq
        self._next_seq += 1
        self._unclaimed.setdefault(module, []).append(seq)
        self._module_probes.setdefault(module, []).append(seq)
        self._append(
            EvidenceEvent(
                seq,
                module,
                PROBE,
                rows=rows,
                error=error,
                cached=cached,
                speculative=speculative,
                isolated=isolated,
                db_fingerprint=db_fingerprint,
                detail=detail,
            )
        )
        return seq

    def mutation(self, module: str, target: str, detail: str = "") -> int:
        seq = self._next_seq
        self._next_seq += 1
        self._append(EvidenceEvent(seq, module, MUTATION, target=target, detail=detail))
        return seq

    def observation(
        self, module: str, target: str = "", detail: str = "", clause: str = ""
    ) -> int:
        seq = self._next_seq
        self._next_seq += 1
        self._append(
            EvidenceEvent(
                seq, module, OBSERVATION, clause=clause, target=target, detail=detail
            )
        )
        return seq

    def clause(
        self,
        action: str,
        clause: str,
        target: str,
        module: str,
        detail: str = "",
        key=None,
        claim: bool = True,
        include_module_probes: bool = False,
        extra_evidence: Iterable[int] = (),
    ) -> int:
        """Record one clause decision with its evidence chain."""
        evidence: list[int] = list(extra_evidence)
        if include_module_probes:
            evidence.extend(self._module_probes.get(module, ()))
            self._unclaimed.get(module, []).clear()
        elif claim:
            pool = self._unclaimed.get(module)
            if pool:
                evidence.extend(pool)
                pool.clear()
        if key is not None:
            inherited = self._by_key.get((clause, key), ())
            evidence = list(inherited) + [s for s in evidence if s not in inherited]
            self._by_key[(clause, key)] = tuple(evidence)
        seq = self._next_seq
        self._next_seq += 1
        self._append(
            EvidenceEvent(
                seq,
                module,
                action,
                clause=clause,
                target=target,
                detail=detail,
                evidence=tuple(dict.fromkeys(evidence)),
            )
        )
        return seq

    def accept(self, clause: str, target: str, module: str, **kwargs) -> int:
        return self.clause(ACCEPTED, clause, target, module, **kwargs)

    def reject(self, clause: str, target: str, module: str, **kwargs) -> int:
        return self.clause(REJECTED, clause, target, module, **kwargs)

    def refine(self, clause: str, target: str, module: str, **kwargs) -> int:
        return self.clause(REFINED, clause, target, module, **kwargs)

    # -- parallel fold -------------------------------------------------------

    def absorb(self, other: "ProvenanceRecorder") -> None:
        """Fold a task-local recorder's events into this one, renumbering.

        Called on the main thread in deterministic submission order (the
        probe scheduler's batch finalisation), so the merged stream is
        order-independent of thread interleaving — evidence stays
        exactly-once and clause chains keep pointing at their own probes.
        """
        remap: dict[int, int] = {}
        for event in other.events:
            new_seq = self._next_seq
            self._next_seq += 1
            remap[event.seq] = new_seq
            event.seq = new_seq
            event.evidence = tuple(remap.get(s, s) for s in event.evidence)
            self.events.append(event)
            if event.kind == PROBE:
                self._module_probes.setdefault(event.module, []).append(new_seq)
        for module, pool in other._unclaimed.items():
            if pool:
                self._unclaimed.setdefault(module, []).extend(
                    remap[s] for s in pool
                )
        for (clause, key), chain in other._by_key.items():
            mine = self._by_key.get((clause, key), ())
            self._by_key[(clause, key)] = tuple(mine) + tuple(
                remap.get(s, s) for s in chain
            )

    # -- queries -------------------------------------------------------------

    @property
    def probe_count(self) -> int:
        return sum(len(seqs) for seqs in self._module_probes.values())

    def module_probes(self, module: str) -> tuple[int, ...]:
        return tuple(self._module_probes.get(module, ()))

    def clause_events(self) -> list[EvidenceEvent]:
        return [
            e for e in self.events if e.kind in (ACCEPTED, REJECTED, REFINED)
        ]

    def probes_by_seq(self) -> dict[int, EvidenceEvent]:
        return {e.seq: e for e in self.events if e.kind == PROBE}

    # -- persistence ---------------------------------------------------------

    def flush(self) -> None:
        """Hand events recorded since the previous flush to the sink."""
        if self.sink is None or self._flushed >= len(self.events):
            return
        pending = self.events[self._flushed :]
        self._flushed = len(self.events)
        self.sink(pending)


class NullProvenance:
    """Disabled recorder: every method is a no-op returning 0."""

    enabled = False
    sink = None
    events: tuple = ()

    def probe(self, module, **kwargs) -> int:
        return 0

    def mutation(self, module, target, detail="") -> int:
        return 0

    def observation(self, module, target="", detail="", clause="") -> int:
        return 0

    def clause(self, action, clause, target, module, **kwargs) -> int:
        return 0

    def accept(self, clause, target, module, **kwargs) -> int:
        return 0

    def reject(self, clause, target, module, **kwargs) -> int:
        return 0

    def refine(self, clause, target, module, **kwargs) -> int:
        return 0

    def absorb(self, other) -> None:
        pass

    def module_probes(self, module) -> tuple:
        return ()

    def clause_events(self) -> list:
        return []

    def probes_by_seq(self) -> dict:
        return {}

    @property
    def probe_count(self) -> int:
        return 0

    def flush(self) -> None:
        pass


#: the process-wide disabled recorder; sessions default to this.
NULL_PROVENANCE = NullProvenance()


# -- explain ------------------------------------------------------------------


def query_clauses(query) -> list[tuple[str, str]]:
    """``(clause kind, clause SQL)`` pairs for every clause of ``Q_E``.

    This is the coverage universe of ``repro explain``: each pair must be
    backed by at least one clause event whose evidence chain names a probe.
    """
    pairs: list[tuple[str, str]] = []
    for table in query.tables:
        pairs.append((CLAUSE_FROM, table))
    for clique in query.join_cliques:
        for predicate in clique.predicates():
            pairs.append((CLAUSE_JOINS, predicate))
    for predicate in query.filters:
        pairs.append((CLAUSE_FILTERS, predicate.to_sql()))
    for output in query.outputs:
        pairs.append((CLAUSE_SELECT, output.select_sql()))
    for column in query.group_by:
        pairs.append((CLAUSE_GROUP_BY, f"{column.table}.{column.column}"))
    for predicate in query.having:
        pairs.append((CLAUSE_HAVING, predicate.to_sql()))
    for spec in query.order_by:
        pairs.append((CLAUSE_ORDER_BY, spec.to_sql()))
    if query.limit is not None:
        pairs.append((CLAUSE_LIMIT, str(query.limit)))
    return pairs


class ClauseEvidence:
    """The explain view of one clause: its decision and its probe chain."""

    __slots__ = (
        "clause",
        "target",
        "module",
        "action",
        "evidence",
        "probes",
        "cached",
        "speculative",
        "isolated",
        "confidence",
    )

    def __init__(self, clause: str, target: str):
        self.clause = clause
        self.target = target
        self.module = ""
        self.action = ""
        self.evidence: tuple[int, ...] = ()
        self.probes = 0
        self.cached = 0
        self.speculative = 0
        self.isolated = 0
        self.confidence: Optional[float] = None

    @property
    def covered(self) -> bool:
        return self.probes > 0

    def to_dict(self) -> dict:
        return {
            "clause": self.clause,
            "target": self.target,
            "module": self.module,
            "action": self.action,
            "probes": self.probes,
            "first_seq": self.evidence[0] if self.evidence else None,
            "last_seq": self.evidence[-1] if self.evidence else None,
            "cached": self.cached,
            "speculative": self.speculative,
            "isolated": self.isolated,
            "confidence": self.confidence,
        }


def clause_evidence(
    query,
    events: Iterable[EvidenceEvent],
    clause_confidence: Optional[dict] = None,
) -> list[ClauseEvidence]:
    """Match every clause of ``query`` to its recorded evidence chain."""
    events = list(events)
    probes = {e.seq: e for e in events if e.kind == PROBE}
    #: (clause, target) -> last decision event carrying evidence
    by_target: dict[tuple[str, str], EvidenceEvent] = {}
    for event in events:
        if event.kind in (ACCEPTED, REFINED, REJECTED):
            key = (event.clause, event.target)
            existing = by_target.get(key)
            if existing is None or event.evidence or not existing.evidence:
                by_target[key] = event

    rows: list[ClauseEvidence] = []
    for clause, target in query_clauses(query):
        row = ClauseEvidence(clause, target)
        event = by_target.get((clause, target))
        if event is not None:
            row.module = event.module
            row.action = event.kind
            row.evidence = event.evidence
            row.probes = len(event.evidence)
            for seq in event.evidence:
                probe = probes.get(seq)
                if probe is None:
                    continue
                if probe.cached:
                    row.cached += 1
                if probe.speculative:
                    row.speculative += 1
                if probe.isolated:
                    row.isolated += 1
        if clause_confidence:
            row.confidence = clause_confidence.get(clause)
        rows.append(row)
    return rows


def render_explain(
    rows: list[ClauseEvidence],
    sql: str = "",
    header: str = "",
    total_probes: Optional[int] = None,
) -> str:
    """The ``repro explain`` report: each clause with its evidence chain."""
    lines = ["clause provenance", "================="]
    if header:
        lines.append(header)
    if sql:
        lines.append(f"sql: {sql}")
    if total_probes is not None:
        lines.append(f"probes recorded: {total_probes}")
    lines.append("")
    covered = sum(1 for row in rows if row.covered)
    lines.append(f"clauses: {len(rows)}, evidence-covered: {covered}")
    current = None
    for row in rows:
        if row.clause != current:
            current = row.clause
            lines.append(f"{row.clause}:")
        flags = []
        if row.cached:
            flags.append(f"{row.cached} cache-served")
        if row.speculative:
            flags.append(f"{row.speculative} speculative")
        if row.isolated:
            flags.append(f"{row.isolated} isolated")
        chain = (
            f"probes {row.evidence[0]}..{row.evidence[-1]} (n={row.probes}"
            + (", " + ", ".join(flags) if flags else "")
            + ")"
            if row.covered
            else "NO EVIDENCE"
        )
        conf = (
            f"  confidence {row.confidence:.2f}"
            if row.confidence is not None
            else ""
        )
        via = f" via {row.module}/{row.action}" if row.module else ""
        lines.append(f"  {row.target}")
        lines.append(f"    established by {chain}{via}{conf}")
    return "\n".join(lines)
