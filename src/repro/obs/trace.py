"""Hierarchical span tracing with JSONL export.

A :class:`Tracer` maintains a stack of open :class:`Span` objects; entering
``tracer.span(...)`` opens a child of the current top of stack, so the
natural nesting of the extraction — pipeline run → pipeline module →
application invocation → engine query — is captured without any explicit
parent bookkeeping at the call sites.

Span *kinds* used by the instrumented code:

* ``pipeline``   — one whole extraction run (the root span);
* ``module``     — one pipeline module (``from_clause``, ``minimizer``, …);
* ``invocation`` — one black-box application invocation;
* ``query``      — one engine statement (with parse/plan/execute timing and
  rows-scanned / rows-emitted tags for SELECTs);
* ``verify``     — one bounded-verifier phase (``certify`` wrapping the whole
  CEGIS loop, ``certify_search`` per symbolic search round,
  ``certify_refine`` per counterexample-driven re-extraction); the verifier
  also ticks the ``certificates_total`` / ``counterexamples_total`` /
  ``certify_probes_total`` counters.

The default tracer everywhere is :data:`NULL_TRACER`, whose ``span()``
returns a single shared no-op context manager — call sites pay one attribute
load and one method call, nothing else.  Code that would compute expensive
tag values must guard on ``tracer.enabled``.
"""

from __future__ import annotations

import json
import time
from typing import Iterable, Optional


class Span:
    """One timed unit of work in a trace tree."""

    __slots__ = ("span_id", "parent_id", "name", "kind", "start", "end", "tags")

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        kind: str,
        start: float,
        tags: Optional[dict] = None,
    ):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.start = start
        self.end: Optional[float] = None
        self.tags: dict = tags if tags is not None else {}

    @property
    def duration(self) -> float:
        """Seconds from start to finish (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set_tag(self, key: str, value) -> None:
        self.tags[key] = value

    def set_tags(self, **tags) -> None:
        self.tags.update(tags)

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "duration": round(self.duration, 9),
            "tags": self.tags,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        span = cls(
            span_id=payload["span_id"],
            parent_id=payload.get("parent_id"),
            name=payload["name"],
            kind=payload.get("kind", "span"),
            start=payload["start"],
            tags=dict(payload.get("tags") or {}),
        )
        span.end = payload.get("end")
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Span #{self.span_id} {self.kind}:{self.name} "
            f"{self.duration:.6f}s tags={self.tags}>"
        )


class _SpanContext:
    """Context manager that closes its span and pops the tracer stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.tags.setdefault("error", exc_type.__name__)
        self._tracer._finish(self._span)
        return False


class Tracer:
    """Records a tree of spans (and optionally feeds a metrics registry).

    ``metrics`` — an optional :class:`~repro.obs.metrics.MetricsRegistry`;
    instrumented code updates it alongside span tags so counters work even
    in span-free mode.

    ``keep_spans=False`` keeps the tracer *enabled* (timing, tags, metrics)
    but discards finished spans instead of accumulating them — the memory-
    bounded mode the benchmark harness uses to collect metrics snapshots
    over thousands of engine queries.
    """

    enabled = True

    def __init__(self, metrics=None, keep_spans: bool = True):
        self.metrics = metrics
        self.keep_spans = keep_spans
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 1

    # -- span lifecycle ------------------------------------------------------

    def span(self, name: str, kind: str = "span", tags: Optional[dict] = None):
        """Open a span as a child of the current innermost open span."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(
            span_id=self._next_id,
            parent_id=parent,
            name=name,
            kind=kind,
            start=time.perf_counter(),
            tags=tags,
        )
        self._next_id += 1
        self._stack.append(span)
        return _SpanContext(self, span)

    def _finish(self, span: Span) -> None:
        span.end = time.perf_counter()
        # Pop back to (and including) this span; tolerates exceptional exits
        # that unwound several levels at once.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        if self.keep_spans:
            self.spans.append(span)

    def record(
        self,
        name: str,
        kind: str = "span",
        start: Optional[float] = None,
        end: Optional[float] = None,
        tags: Optional[dict] = None,
    ) -> Span:
        """Append an already-finished span as a child of the current span.

        This is the probe scheduler's post-hoc span path: worker threads must
        not touch the tracer's span stack (it is not thread-safe and their
        spans would nest under whatever the main thread has open), so the
        scheduler captures timing off-thread and *records* the finished
        invocation spans afterwards, in deterministic submission order.
        """
        now = time.perf_counter()
        span = Span(
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            kind=kind,
            start=start if start is not None else now,
            tags=dict(tags) if tags else None,
        )
        self._next_id += 1
        span.end = end if end is not None else now
        if self.keep_spans:
            self.spans.append(span)
        return span

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, or None outside any span."""
        return self._stack[-1] if self._stack else None

    @property
    def root(self) -> Optional[Span]:
        """The first recorded root span (parent_id is None), if any."""
        for span in self.spans:
            if span.parent_id is None:
                return span
        return None

    # -- export --------------------------------------------------------------

    def write_jsonl(self, path) -> None:
        """One finished span per line, completion order (children first)."""
        with open(path, "w", encoding="utf-8") as fh:
            for span in self.spans:
                fh.write(json.dumps(span.to_dict(), default=str) + "\n")


def read_jsonl(path) -> list[Span]:
    """Load spans written by :meth:`Tracer.write_jsonl` (blank lines ok)."""
    spans: list[Span] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(Span.from_dict(json.loads(line)))
    return spans


# -- the no-op default ---------------------------------------------------------


class _NullSpan:
    """Absorbs tag writes; shared singleton, never allocated per call."""

    __slots__ = ()

    def set_tag(self, key: str, value) -> None:
        pass

    def set_tags(self, **tags) -> None:
        pass


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()
_NULL_CONTEXT = _NullSpanContext()


class NullTracer:
    """Disabled tracer: every ``span()`` is the same shared no-op context."""

    enabled = False
    metrics = None
    keep_spans = False
    spans: tuple = ()

    def span(self, name: str, kind: str = "span", tags: Optional[dict] = None):
        return _NULL_CONTEXT

    def record(self, name, kind="span", start=None, end=None, tags=None):
        return _NULL_SPAN

    @property
    def current(self):
        return None

    @property
    def root(self):
        return None

    def write_jsonl(self, path) -> None:  # pragma: no cover - symmetry only
        with open(path, "w", encoding="utf-8"):
            pass


#: The process-wide disabled tracer; instrumented objects default to this.
NULL_TRACER = NullTracer()
