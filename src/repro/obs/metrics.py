"""Counters, gauges, and fixed-bucket histograms with a snapshot API.

Prometheus-flavoured semantics, in-process scale: a
:class:`MetricsRegistry` hands out named instruments on first use
(``registry.counter("invocations_total")``), and :meth:`MetricsRegistry.snapshot`
returns one JSON-serialisable dict of everything observed so far.

Histogram buckets are *cumulative upper bounds* (``value <= bound`` lands in
that bucket and every later one), matching the ``le`` convention, plus an
implicit ``+Inf`` bucket — so bucket counts are monotonically non-decreasing
and the last equals the observation count.
"""

from __future__ import annotations

import json
import math
from typing import Optional, Sequence

#: Default latency buckets (seconds): sub-millisecond engine queries up to
#: multi-second whole-pipeline runs.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def label_key(name: str, labels: Optional[dict]) -> str:
    """Storage/exposition key for a (family, labels) pair.

    ``peer_quarantines_total`` + ``{"peer": "h:1"}`` →
    ``peer_quarantines_total{peer="h:1"}`` — the exact Prometheus sample
    syntax, so the key doubles as the rendered series name.
    """
    if not labels:
        return name
    inner = ",".join(f'{key}="{labels[key]}"' for key in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count, optionally labelled.

    Labels support the per-peer transport series (one ``Counter`` per label
    combination, all sharing a family name); the rest of the registry stays
    label-free.
    """

    __slots__ = ("name", "value", "labels")

    def __init__(self, name: str, labels: Optional[dict] = None):
        self.name = name
        self.value = 0
        self.labels = dict(labels) if labels else None

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def to_dict(self) -> dict:
        out = {"type": "counter", "value": self.value}
        if self.labels:
            out["labels"] = dict(self.labels)
        return out


class Gauge:
    """A value that can go up and down (e.g. current silo row count)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def to_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bucket histogram with cumulative ``le`` bucket semantics."""

    __slots__ = ("name", "bounds", "bucket_counts", "count", "sum")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        bounds = tuple(sorted(buckets))
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        self.name = name
        self.bounds = bounds
        #: non-cumulative per-bucket counts; index len(bounds) is +Inf
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        # Linear scan: bucket lists are short and observation is on a path
        # where a bisect call's overhead is comparable.
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(le_bound, cumulative_count)`` pairs, ending with ``inf``."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.bucket_counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), self.count))
        return out

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The smallest bucket bound covering fraction ``q`` of observations.

        Standard bucketed-percentile semantics (the resolution is the bucket
        grid, as with Prometheus ``histogram_quantile``): returns the upper
        bound of the first cumulative bucket at or past rank ``ceil(q * n)``.
        Edge cases: an empty histogram reports ``0.0``; ``q == 0`` reports
        the first occupied bucket's bound; observations that landed past the
        last finite bound (the ``+Inf`` bucket) clamp to the last finite
        bound, which is then a *lower* estimate.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"percentile fraction must be in [0, 1], got {q!r}")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        running = 0
        for bound, n in zip(self.bounds, self.bucket_counts):
            running += n
            if running >= rank:
                return bound
        return self.bounds[-1]

    def percentiles(
        self, qs: Sequence[float] = (0.5, 0.95, 0.99)
    ) -> dict[str, float]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` via :meth:`percentile`."""
        out: dict[str, float] = {}
        for q in qs:
            label = f"p{q * 100:g}"
            out[label] = self.percentile(q)
        return out

    def to_dict(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": round(self.sum, 9),
            "mean": round(self.mean, 9),
            "buckets": [
                {"le": "inf" if bound == float("inf") else bound, "count": n}
                for bound, n in self.cumulative_buckets()
            ],
        }


class MetricsRegistry:
    """Named instruments, created on first use, snapshot on demand."""

    def __init__(self):
        self._instruments: dict[str, object] = {}

    def _get(self, name: str, kind, *args):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(name, *args)
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, requested {kind.__name__}"
            )
        return instrument

    def counter(self, name: str, labels: Optional[dict] = None) -> Counter:
        if labels is None:
            return self._get(name, Counter)
        key = label_key(name, labels)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = Counter(name, labels)
            self._instruments[key] = instrument
        elif not isinstance(instrument, Counter):
            raise TypeError(
                f"metric {key!r} already registered as "
                f"{type(instrument).__name__}, requested Counter"
            )
        return instrument

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        if buckets is None:
            return self._get(name, Histogram)
        return self._get(name, Histogram, buckets)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's observations into this one.

        The probe scheduler gives each parallel probe task a private registry
        (the shared one is not thread-safe) and merges them back on the main
        thread in deterministic task order — so counter totals and histogram
        distributions match what the same probes would have recorded
        sequentially.  Counters and histograms accumulate; gauges adopt the
        other registry's latest value (last writer wins, as sequentially).
        """
        for name in sorted(other._instruments):
            instrument = other._instruments[name]
            if isinstance(instrument, Counter):
                self.counter(
                    instrument.name, labels=instrument.labels
                ).inc(instrument.value)
            elif isinstance(instrument, Histogram):
                mine = self.histogram(name, instrument.bounds)
                if mine.bounds != instrument.bounds:
                    raise ValueError(
                        f"histogram {name!r} bucket bounds differ; cannot merge"
                    )
                mine.count += instrument.count
                mine.sum += instrument.sum
                for i, n in enumerate(instrument.bucket_counts):
                    mine.bucket_counts[i] += n
            elif isinstance(instrument, Gauge):
                self.gauge(name).set(instrument.value)

    def snapshot(self) -> dict:
        """All instruments as one JSON-serialisable dict, sorted by name."""
        return {
            name: self._instruments[name].to_dict()
            for name in sorted(self._instruments)
        }

    def counters(self, prefix: str = "") -> dict[str, int]:
        """Flat ``{name: value}`` view of counters, optionally by prefix.

        The serve ``/status`` endpoint uses this to surface e.g. every
        ``worker_*`` counter without serialising full instrument payloads.
        """
        return {
            name: instrument.value
            for name, instrument in sorted(self._instruments.items())
            if isinstance(instrument, Counter) and name.startswith(prefix)
        }

    def instruments(self) -> list[object]:
        """All instruments, sorted by name (the exposition order)."""
        return [self._instruments[name] for name in sorted(self._instruments)]

    def write_json(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")


def _prom_name(name: str) -> str:
    """Sanitise a metric name to the Prometheus charset ``[a-zA-Z0-9_:]``."""
    return "".join(
        ch if ch.isascii() and (ch.isalnum() or ch in "_:") else "_"
        for ch in name
    )


def _prom_value(value) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4).

    Counters and gauges render as single samples; histograms render the
    standard cumulative ``_bucket{le=...}`` series plus ``_sum`` / ``_count``
    and convenience ``_p50`` / ``_p95`` / ``_p99`` gauges (bucket-grid
    resolution, see :meth:`Histogram.percentile`) so dashboards get
    quantiles without running ``histogram_quantile``.
    """
    lines: list[str] = []
    counter_families_typed: set = set()
    for instrument in registry.instruments():
        name = _prom_name(instrument.name)
        if isinstance(instrument, Counter):
            # one TYPE line per family, however many label combinations
            if name not in counter_families_typed:
                counter_families_typed.add(name)
                lines.append(f"# TYPE {name} counter")
            sample = _prom_name(instrument.name)
            if instrument.labels:
                inner = ",".join(
                    f'{_prom_name(key)}="{value}"'
                    for key, value in sorted(instrument.labels.items())
                )
                sample = f"{sample}{{{inner}}}"
            lines.append(f"{sample} {_prom_value(instrument.value)}")
        elif isinstance(instrument, Gauge):
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_prom_value(instrument.value)}")
        elif isinstance(instrument, Histogram):
            lines.append(f"# TYPE {name} histogram")
            for bound, count in instrument.cumulative_buckets():
                lines.append(
                    f'{name}_bucket{{le="{_prom_value(bound)}"}} {count}'
                )
            lines.append(f"{name}_sum {_prom_value(instrument.sum)}")
            lines.append(f"{name}_count {instrument.count}")
            for label, value in instrument.percentiles().items():
                lines.append(f"# TYPE {name}_{label} gauge")
                lines.append(f"{name}_{label} {_prom_value(value)}")
    return "\n".join(lines) + "\n"
