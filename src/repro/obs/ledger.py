"""Durable run ledger: extraction provenance persisted to SQLite.

One ledger file (``--ledger PATH``) accumulates every extraction run made
against it — runs, per-module self-time, clause decisions with their
evidence chains, the raw evidence stream, and metrics snapshots — in plain
SQLite (stdlib ``sqlite3``, no dependency), so ``repro explain`` and
``repro trace-diff`` can inspect finished runs, CI can archive them as
artifacts, and future consumers (the ``repro serve`` status API, the
symbolic-verifier counterexample loop) get a queryable substrate.

Writes are incremental: the run row is committed at :meth:`RunLedger.begin_run`
with ``status='running'``, evidence batches are committed as the session
flushes them at module boundaries, and :meth:`RunLedger.finish_run` flips the
status — so a crashed or killed run keeps its partial history (its last
committed module tells you where it died), mirroring the checkpoint story.

Crash hardening: ``begin_run`` records the writer's pid, and opening a
ledger sweeps ``status='running'`` rows whose writer is no longer alive to
``status='aborted'`` — so a SIGKILLed run (or a torn final write) reads as a
structured abort instead of crashing ``repro explain --from-ledger`` or
masquerading as live work, while concurrent live writers (the ``repro
serve`` ledger is shared across worker threads and processes) are left
untouched.  Readers tolerate torn ``extras_json`` by degrading to ``{}``.

Storage hardening (DESIGN.md §5.17): a ledger file that fails ``PRAGMA
quick_check`` on open is quarantined aside (``<name>.corrupt-<k>``) and a
fresh ledger replaces it — provenance is an *audit trail*, so keeping the
damaged evidence beats refusing to serve; commits go through the
:mod:`~repro.resilience.diskfaults` seam and a full disk surfaces as
:class:`~repro.errors.StorageExhausted` after a rollback (the service
degrades to no-ledger operation rather than failing jobs).

Schema (``PRAGMA user_version = 2``; v1 ledgers are migrated in place by
adding the ``pid`` column)::

    runs     (run_id, started, finished, label, workload, query_name, jobs,
              status, verdict, sql, invocations, seconds, extras_json, pid)
    modules  (run_id, module, seconds, invocations)
    clauses  (run_id, clause, target, module, action, probes, first_seq,
              last_seq, cached, speculative, isolated, confidence)
    evidence (run_id, seq, ts, module, kind, clause, target, detail, rows,
              error, cached, speculative, isolated, db_fingerprint,
              evidence_json)
    metrics  (run_id, name, payload_json)
"""

from __future__ import annotations

import json
import logging
import os
import sqlite3
import time
from pathlib import Path
from typing import Iterable, Optional

from repro.errors import StorageExhausted
from repro.obs.provenance import EvidenceEvent
from repro.resilience.diskfaults import (
    REAL_FS,
    is_sqlite_storage_error,
    quarantine_path,
    sqlite_is_healthy,
)

logger = logging.getLogger("repro.obs.ledger")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id      INTEGER PRIMARY KEY AUTOINCREMENT,
    started     REAL NOT NULL,
    finished    REAL,
    label       TEXT NOT NULL DEFAULT '',
    workload    TEXT NOT NULL DEFAULT '',
    query_name  TEXT NOT NULL DEFAULT '',
    jobs        INTEGER NOT NULL DEFAULT 1,
    status      TEXT NOT NULL DEFAULT 'running',
    verdict     TEXT NOT NULL DEFAULT '',
    sql         TEXT NOT NULL DEFAULT '',
    invocations INTEGER NOT NULL DEFAULT 0,
    seconds     REAL NOT NULL DEFAULT 0.0,
    extras_json TEXT NOT NULL DEFAULT '{}',
    pid         INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS modules (
    run_id      INTEGER NOT NULL REFERENCES runs(run_id),
    module      TEXT NOT NULL,
    seconds     REAL NOT NULL,
    invocations INTEGER NOT NULL,
    PRIMARY KEY (run_id, module)
);
CREATE TABLE IF NOT EXISTS clauses (
    run_id      INTEGER NOT NULL REFERENCES runs(run_id),
    clause      TEXT NOT NULL,
    target      TEXT NOT NULL,
    module      TEXT NOT NULL DEFAULT '',
    action      TEXT NOT NULL DEFAULT '',
    probes      INTEGER NOT NULL DEFAULT 0,
    first_seq   INTEGER,
    last_seq    INTEGER,
    cached      INTEGER NOT NULL DEFAULT 0,
    speculative INTEGER NOT NULL DEFAULT 0,
    isolated    INTEGER NOT NULL DEFAULT 0,
    confidence  REAL
);
CREATE TABLE IF NOT EXISTS evidence (
    run_id         INTEGER NOT NULL REFERENCES runs(run_id),
    seq            INTEGER NOT NULL,
    ts             REAL NOT NULL,
    module         TEXT NOT NULL,
    kind           TEXT NOT NULL,
    clause         TEXT NOT NULL DEFAULT '',
    target         TEXT NOT NULL DEFAULT '',
    detail         TEXT NOT NULL DEFAULT '',
    rows           INTEGER,
    error          TEXT NOT NULL DEFAULT '',
    cached         INTEGER NOT NULL DEFAULT 0,
    speculative    INTEGER NOT NULL DEFAULT 0,
    isolated       INTEGER NOT NULL DEFAULT 0,
    db_fingerprint TEXT NOT NULL DEFAULT '',
    evidence_json  TEXT NOT NULL DEFAULT '[]',
    PRIMARY KEY (run_id, seq)
);
CREATE TABLE IF NOT EXISTS metrics (
    run_id       INTEGER NOT NULL REFERENCES runs(run_id),
    name         TEXT NOT NULL,
    payload_json TEXT NOT NULL,
    PRIMARY KEY (run_id, name)
);
"""


class RunLedger:
    """Append-oriented SQLite store for extraction provenance."""

    def __init__(self, path: str, fs=None):
        self.path = str(path)
        self.fs = fs if fs is not None else REAL_FS
        #: where a corrupt ledger was moved, if quarantine ran on open
        self.quarantined: Optional[Path] = None
        if Path(self.path).exists() and not sqlite_is_healthy(self.path):
            self.quarantined = quarantine_path(self.path)
            logger.warning(
                "ledger %s failed quick_check; quarantined to %s and starting"
                " a fresh ledger", self.path, self.quarantined,
            )
        self._conn = sqlite3.connect(self.path)
        self._conn.row_factory = sqlite3.Row
        # WAL + synchronous=NORMAL: committed batches survive a process
        # crash (the failure mode the chaos harness models) without paying
        # a full fsync per commit; both pragmas degrade gracefully on
        # filesystems that reject them.  busy_timeout covers concurrent
        # writers — `repro serve` opens one connection per job thread
        # against a shared ledger file.
        self._conn.execute("PRAGMA journal_mode = WAL")
        self._conn.execute("PRAGMA synchronous = NORMAL")
        self._conn.execute("PRAGMA busy_timeout = 5000")
        self._conn.executescript(_SCHEMA)
        self._migrate()
        self._conn.execute("PRAGMA user_version = 2")
        self._conn.commit()  # schema setup commits outside the fault seam
        self.recover_stale_runs()

    def _migrate(self) -> None:
        """In-place v1 → v2: add the writer-pid column."""
        columns = {
            row["name"]
            for row in self._conn.execute("PRAGMA table_info(runs)")
        }
        if "pid" not in columns:
            self._conn.execute(
                "ALTER TABLE runs ADD COLUMN pid INTEGER NOT NULL DEFAULT 0"
            )

    def recover_stale_runs(self) -> list[int]:
        """Mark ``running`` rows whose writer died as ``aborted``.

        A run row is stale when its recorded pid is gone (or predates the
        pid column, recorded as 0): the process that opened it can no longer
        finish it, so whatever it last committed is all there will ever be.
        Live pids — concurrent writers against a shared ledger — are left
        alone.  Returns the aborted run ids.
        """
        rows = self._conn.execute(
            "SELECT run_id, pid FROM runs WHERE status = 'running'"
        ).fetchall()
        stale = [
            row["run_id"]
            for row in rows
            if row["pid"] != os.getpid() and not _pid_alive(row["pid"])
        ]
        if stale:
            marks = ",".join("?" for _ in stale)
            self._conn.execute(
                f"UPDATE runs SET status = 'aborted', finished = ?"
                f" WHERE run_id IN ({marks})",
                (time.time(), *stale),
            )
            self._commit()
        return stale

    def _commit(self) -> None:
        """Commit through the fault seam; full-disk → StorageExhausted.

        Rolls back first so the ledger stays consistent at the previous
        commit — the caller's batch is the thing shed, never the file.
        """
        try:
            self.fs.before_commit("ledger")
            self._conn.commit()
        except sqlite3.OperationalError as error:
            try:
                self._conn.rollback()
            except sqlite3.Error:
                pass
            if is_sqlite_storage_error(error):
                raise StorageExhausted("ledger", str(error)) from error
            raise
        self.fs.after_commit("ledger")

    # -- writing -------------------------------------------------------------

    def begin_run(
        self,
        label: str = "",
        workload: str = "",
        query_name: str = "",
        jobs: int = 1,
        extras: Optional[dict] = None,
    ) -> int:
        """Open a run row (``status='running'``) and commit it immediately."""
        cursor = self._conn.execute(
            "INSERT INTO runs (started, label, workload, query_name, jobs,"
            " extras_json, pid) VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                time.time(),
                label,
                workload,
                query_name,
                jobs,
                json.dumps(extras or {}, sort_keys=True),
                os.getpid(),
            ),
        )
        self._commit()
        return int(cursor.lastrowid)

    def sink(self, run_id: int):
        """A flush callback for :class:`~repro.obs.provenance.ProvenanceRecorder`."""

        def _append(events):
            self.append_events(run_id, events)

        return _append

    def append_events(self, run_id: int, events: Iterable[EvidenceEvent]) -> None:
        self._conn.executemany(
            "INSERT OR REPLACE INTO evidence (run_id, seq, ts, module, kind,"
            " clause, target, detail, rows, error, cached, speculative,"
            " isolated, db_fingerprint, evidence_json)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            [
                (
                    run_id,
                    e.seq,
                    e.ts,
                    e.module,
                    e.kind,
                    e.clause,
                    e.target,
                    e.detail,
                    e.rows,
                    e.error,
                    int(e.cached),
                    int(e.speculative),
                    int(e.isolated),
                    e.db_fingerprint,
                    json.dumps(list(e.evidence)),
                )
                for e in events
            ],
        )
        self._commit()

    def record_modules(self, run_id: int, modules: dict) -> None:
        """Persist per-module self-time/invocations (``ExtractionStats.modules``)."""
        self._conn.executemany(
            "INSERT OR REPLACE INTO modules (run_id, module, seconds,"
            " invocations) VALUES (?, ?, ?, ?)",
            [
                (run_id, name, stats.seconds, stats.invocations)
                for name, stats in modules.items()
            ],
        )
        self._commit()

    def record_clauses(self, run_id: int, rows) -> None:
        """Persist the explain view (:func:`~repro.obs.provenance.clause_evidence`)."""
        self._conn.execute("DELETE FROM clauses WHERE run_id = ?", (run_id,))
        self._conn.executemany(
            "INSERT INTO clauses (run_id, clause, target, module, action,"
            " probes, first_seq, last_seq, cached, speculative, isolated,"
            " confidence) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            [
                (
                    run_id,
                    row.clause,
                    row.target,
                    row.module,
                    row.action,
                    row.probes,
                    row.evidence[0] if row.evidence else None,
                    row.evidence[-1] if row.evidence else None,
                    row.cached,
                    row.speculative,
                    row.isolated,
                    row.confidence,
                )
                for row in rows
            ],
        )
        self._commit()

    def record_metrics(self, run_id: int, name: str, payload: dict) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO metrics (run_id, name, payload_json)"
            " VALUES (?, ?, ?)",
            (run_id, name, json.dumps(payload, sort_keys=True, default=str)),
        )
        self._commit()

    def finish_run(
        self,
        run_id: int,
        status: str = "finished",
        verdict: str = "",
        sql: str = "",
        invocations: int = 0,
        seconds: float = 0.0,
        extras: Optional[dict] = None,
    ) -> None:
        if extras is not None:
            row = self._conn.execute(
                "SELECT extras_json FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
            merged = _tolerant_extras(row["extras_json"]) if row else {}
            merged.update(extras)
            self._conn.execute(
                "UPDATE runs SET extras_json = ? WHERE run_id = ?",
                (json.dumps(merged, sort_keys=True, default=str), run_id),
            )
        self._conn.execute(
            "UPDATE runs SET finished = ?, status = ?, verdict = ?, sql = ?,"
            " invocations = ?, seconds = ? WHERE run_id = ?",
            (time.time(), status, verdict, sql, invocations, seconds, run_id),
        )
        self._commit()

    # -- reading -------------------------------------------------------------

    def runs(self) -> list[dict]:
        return [
            dict(row)
            for row in self._conn.execute("SELECT * FROM runs ORDER BY run_id")
        ]

    def run(self, run_id: Optional[int] = None) -> Optional[dict]:
        """One run row; ``None`` selects the most recent run."""
        if run_id is None:
            row = self._conn.execute(
                "SELECT * FROM runs ORDER BY run_id DESC LIMIT 1"
            ).fetchone()
        else:
            row = self._conn.execute(
                "SELECT * FROM runs WHERE run_id = ?", (run_id,)
            ).fetchone()
        if row is None:
            return None
        payload = dict(row)
        payload["extras"] = _tolerant_extras(payload.pop("extras_json"))
        return payload

    def events(self, run_id: int) -> list[EvidenceEvent]:
        events = []
        for row in self._conn.execute(
            "SELECT * FROM evidence WHERE run_id = ? ORDER BY seq", (run_id,)
        ):
            events.append(
                EvidenceEvent(
                    seq=row["seq"],
                    module=row["module"],
                    kind=row["kind"],
                    clause=row["clause"],
                    target=row["target"],
                    detail=row["detail"],
                    rows=row["rows"],
                    error=row["error"],
                    cached=bool(row["cached"]),
                    speculative=bool(row["speculative"]),
                    isolated=bool(row["isolated"]),
                    db_fingerprint=row["db_fingerprint"],
                    evidence=tuple(json.loads(row["evidence_json"])),
                    ts=row["ts"],
                )
            )
        return events

    def modules(self, run_id: int) -> dict[str, dict]:
        return {
            row["module"]: {
                "seconds": row["seconds"],
                "invocations": row["invocations"],
            }
            for row in self._conn.execute(
                "SELECT * FROM modules WHERE run_id = ?", (run_id,)
            )
        }

    def clauses(self, run_id: int) -> list[dict]:
        return [
            dict(row)
            for row in self._conn.execute(
                "SELECT * FROM clauses WHERE run_id = ? ORDER BY rowid",
                (run_id,),
            )
        ]

    def metrics(self, run_id: int) -> dict[str, dict]:
        return {
            row["name"]: json.loads(row["payload_json"])
            for row in self._conn.execute(
                "SELECT * FROM metrics WHERE run_id = ?", (run_id,)
            )
        }

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe; 0/negative pids count as dead."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # alive, owned by someone else
        return True
    except OSError:
        return False
    return True


def _tolerant_extras(text) -> dict:
    """Parse extras_json, degrading torn/invalid payloads to ``{}``."""
    try:
        payload = json.loads(text or "{}")
    except (ValueError, TypeError):
        return {}
    return payload if isinstance(payload, dict) else {}
