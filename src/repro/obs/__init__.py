"""Observability: span tracing, metrics, and trace reporting.

The extraction pipeline is a tower of nested loops — pipeline modules invoke
the black-box application, which executes engine queries — and the paper's
whole evaluation (Figures 8–11) is about where that time and those
invocations go.  This package provides the three layers needed to see it:

* :mod:`repro.obs.trace` — a hierarchical span tracer.  A
  :class:`~repro.obs.trace.Span` covers one unit of work (pipeline run,
  pipeline module, application invocation, engine query) with wall-clock
  timing and free-form tags; finished spans export to JSONL.
* :mod:`repro.obs.metrics` — a registry of counters, gauges, and
  fixed-bucket histograms (``invocations_total``, ``rows_scanned_total``,
  ``query_latency_seconds``, …) with a JSON snapshot API.
* :mod:`repro.obs.report` — renders a stored trace as a flame-style
  indented tree plus a top-N slowest-queries table.
* :mod:`repro.obs.provenance` — clause-level evidence recording: every
  probe, mutation, and clause decision of an extraction, with the probe
  chains that established each clause of the emitted SQL (``repro explain``).
* :mod:`repro.obs.ledger` — a durable SQLite run ledger persisting runs,
  modules, clauses, evidence, and metrics incrementally.
* :mod:`repro.obs.diff` — cross-run comparison (``repro trace-diff``):
  clause-by-clause SQL deltas, per-module self-time and invocation-count
  regressions, cache hit-rate drift.

Tracing is **opt-in and zero-cost when off**: every instrumented call site
goes through :data:`~repro.obs.trace.NULL_TRACER` by default, whose
``span()`` returns one shared no-op context manager (no allocation, no
timing, no branching beyond a single ``enabled`` check on hot paths).
"""

from repro.obs.diff import render_diff
from repro.obs.ledger import RunLedger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.provenance import (
    NULL_PROVENANCE,
    EvidenceEvent,
    NullProvenance,
    ProvenanceRecorder,
    clause_evidence,
    query_clauses,
    render_explain,
)
from repro.obs.report import render_trace_report
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    read_jsonl,
)

__all__ = [
    "Counter",
    "EvidenceEvent",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_PROVENANCE",
    "NULL_TRACER",
    "NullProvenance",
    "NullTracer",
    "ProvenanceRecorder",
    "RunLedger",
    "Span",
    "Tracer",
    "clause_evidence",
    "query_clauses",
    "read_jsonl",
    "render_diff",
    "render_explain",
    "render_trace_report",
]
