"""TALOS-lite: decision-tree query reverse engineering (paper §6.1, TR set).

TALOS frames QRE as *instance-equivalent classification*: label each tuple of
the source table by membership in the result, learn a decision tree over the
attributes, and read selection predicates off the root-to-accepting-leaf
paths.  This compact re-implementation covers TALOS's core single-table
select-project case, which is what the paper's UCI-archive comparison runs.

Like the original, the output is only *instance-equivalent*: predicates are
induced from one (D_I, R_I) pair and routinely drift from the hidden query's
true constants — the qualitative gap to UNMASQUE's exact extraction.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Optional

from repro.engine.database import Database
from repro.engine.result import Result
from repro.engine.types import format_sql_literal


@dataclass
class TalosOutcome:
    status: str  # 'ok' | 'failed'
    sql: Optional[str] = None
    seconds: float = 0.0
    tree_nodes: int = 0

    @property
    def completed(self) -> bool:
        return self.status == "ok"


@dataclass
class _Node:
    # internal split
    column: Optional[str] = None
    threshold: object = None
    is_categorical: bool = False
    left: Optional["_Node"] = None  # <= threshold / == category
    right: Optional["_Node"] = None
    # leaf
    label: Optional[bool] = None

    def count(self) -> int:
        if self.label is not None:
            return 1
        return 1 + self.left.count() + self.right.count()


class TalosBaseline:
    """Single-table select-project reverse engineering via decision trees."""

    def __init__(self, db: Database, table: str, result: Result, max_depth: int = 8):
        self.db = db
        self.table = table
        self.result = result
        self.max_depth = max_depth

    def reverse_engineer(self) -> TalosOutcome:
        started = time.perf_counter()
        schema = self.db.schema(self.table)
        rows = self.db.rows(self.table)

        labeling = self._match_projection_with_labels(schema, rows)
        if labeling is None:
            return TalosOutcome(status="failed", seconds=time.perf_counter() - started)
        projection, labels = labeling

        feature_columns = [
            (i, col)
            for i, col in enumerate(schema.columns)
            if i not in projection or len(rows) < 10_000
        ]
        tree = self._grow(rows, labels, feature_columns, depth=0)
        predicates = self._paths_to_predicates(tree)
        select_list = ", ".join(
            f"{self.table}.{schema.columns[i].name.lower()}" for i in projection
        )
        sql = f"select {select_list} from {self.table}"
        if predicates:
            sql += " where " + " or ".join(f"({p})" for p in predicates)
        elif tree.label is False:
            return TalosOutcome(status="failed", seconds=time.perf_counter() - started)
        return TalosOutcome(
            status="ok",
            sql=sql,
            seconds=time.perf_counter() - started,
            tree_nodes=tree.count(),
        )

    # -- projection discovery --------------------------------------------------

    def _match_projection_with_labels(self, schema, rows):
        """Find a projection mapping whose labeling covers the result exactly.

        Value containment alone is ambiguous (a surrogate key contains most
        small integers), so candidate combinations are tried until one labels
        every target tuple — TALOS's candidate-enumeration step.
        """
        import itertools

        per_position: list[list[int]] = []
        for position in range(self.result.column_count):
            values = set(self.result.column_values(position))
            matches = [
                index
                for index in range(len(schema.columns))
                if values <= {row[index] for row in rows}
            ]
            if not matches:
                return None
            per_position.append(matches)

        target = self.result.as_multiset()
        for attempt, projection in enumerate(itertools.product(*per_position)):
            if attempt >= 200:
                break
            if len(set(projection)) != len(projection):
                continue
            remaining = dict(target)
            labels = []
            for row in rows:
                projected = tuple(row[i] for i in projection)
                if remaining.get(projected, 0) > 0:
                    remaining[projected] -= 1
                    labels.append(True)
                else:
                    labels.append(False)
            if all(count == 0 for count in remaining.values()):
                return list(projection), labels
        return None

    # -- tree induction -----------------------------------------------------------

    def _grow(self, rows, labels, feature_columns, depth) -> _Node:
        positives = sum(labels)
        if positives == 0:
            return _Node(label=False)
        if positives == len(labels):
            return _Node(label=True)
        if depth >= self.max_depth:
            return _Node(label=positives * 2 >= len(labels))

        best = None
        base_entropy = _entropy(positives, len(labels) - positives)
        for index, column in feature_columns:
            values = sorted({row[index] for row in rows if row[index] is not None})
            if len(values) < 2:
                continue
            categorical = column.type.is_textual
            candidates = values if categorical else values[:-1]
            step = max(1, len(candidates) // 16)
            for threshold in candidates[::step]:
                left_idx, right_idx = [], []
                for i, row in enumerate(rows):
                    into_left = (
                        row[index] == threshold
                        if categorical
                        else (row[index] is not None and row[index] <= threshold)
                    )
                    (left_idx if into_left else right_idx).append(i)
                if not left_idx or not right_idx:
                    continue
                gain = base_entropy - _split_entropy(labels, left_idx, right_idx)
                if best is None or gain > best[0]:
                    best = (gain, index, column, threshold, left_idx, right_idx, categorical)
        if best is None or best[0] <= 1e-9:
            return _Node(label=positives * 2 >= len(labels))
        _, index, column, threshold, left_idx, right_idx, categorical = best
        left = self._grow(
            [rows[i] for i in left_idx], [labels[i] for i in left_idx],
            feature_columns, depth + 1,
        )
        right = self._grow(
            [rows[i] for i in right_idx], [labels[i] for i in right_idx],
            feature_columns, depth + 1,
        )
        return _Node(
            column=column.name.lower(),
            threshold=threshold,
            is_categorical=categorical,
            left=left,
            right=right,
        )

    def _paths_to_predicates(self, tree: _Node) -> list[str]:
        predicates: list[str] = []

        def walk(node: _Node, conditions: list[str]):
            if node.label is True:
                predicates.append(" and ".join(conditions) if conditions else "true")
                return
            if node.label is False:
                return
            literal = format_sql_literal(node.threshold)
            name = f"{self.table}.{node.column}"
            if node.is_categorical:
                walk(node.left, conditions + [f"{name} = {literal}"])
                walk(node.right, conditions + [f"not {name} = {literal}"])
            else:
                walk(node.left, conditions + [f"{name} <= {literal}"])
                walk(node.right, conditions + [f"{name} > {literal}"])

        walk(tree, [])
        return predicates


def _entropy(a: int, b: int) -> float:
    total = a + b
    if a == 0 or b == 0:
        return 0.0
    pa, pb = a / total, b / total
    return -(pa * math.log2(pa) + pb * math.log2(pb))


def _split_entropy(labels, left_idx, right_idx) -> float:
    def side(indexes):
        positives = sum(1 for i in indexes if labels[i])
        return _entropy(positives, len(indexes) - positives), len(indexes)

    left_entropy, left_n = side(left_idx)
    right_entropy, right_n = side(right_idx)
    total = left_n + right_n
    return left_entropy * left_n / total + right_entropy * right_n / total
