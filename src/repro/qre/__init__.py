"""Classical query-reverse-engineering baselines (REGAL/TALOS style)."""
