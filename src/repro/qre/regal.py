"""REGAL-like query reverse-engineering baseline (paper §6.1, Figure 8).

REGAL's source is not public; this baseline reproduces its *approach* as the
paper describes it (§8): speculative, instance-driven candidate enumeration —

1. value-based discovery of candidate (table, column) pairs per result
   column (native columns by value containment, aggregates by type);
2. enumeration of connected table sets and their join trees over the schema
   graph;
3. a grouping lattice over the native output columns, with aggregation
   candidates for the remaining columns;
4. validation of every candidate by executing it against (D_I, R_I) and
   pruning on mismatch, with a backward data-driven filter-inference step
   when the candidate over-produces.

Because every candidate validation joins over the *full* initial database,
the baseline's cost grows with |D_I| × #candidates — the asymptotic gap to
UNMASQUE's directed probing that Figure 8 quantifies.  A wall-clock budget
and a candidate cap yield the paper's DNC outcomes.
"""

from __future__ import annotations

import itertools
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

import networkx as nx

from repro.engine.database import Database
from repro.engine.result import Result
from repro.errors import ReproError
from repro.sgraph.schema_graph import ColumnNode, SchemaGraph

AGGREGATES = ("sum", "avg", "count", "min", "max")


@dataclass
class QREOutcome:
    """Result of a reverse-engineering attempt."""

    status: str  # 'ok' | 'dnc_timeout' | 'dnc_candidates' | 'failed'
    sql: Optional[str] = None
    candidates_validated: int = 0
    seconds: float = 0.0

    @property
    def completed(self) -> bool:
        return self.status == "ok"


@dataclass
class _Candidate:
    tables: tuple[str, ...]
    join_edges: tuple[tuple[ColumnNode, ColumnNode], ...]
    group_columns: tuple[ColumnNode, ...]  # per native output position
    agg_columns: dict[int, tuple[str, Optional[ColumnNode]]]  # position -> (fn, col)
    filters: list[str] = field(default_factory=list)

    def to_sql(self, output_arity: int) -> str:
        select_items = []
        native = {i: col for i, col in zip(self._native_positions(output_arity), self.group_columns)}
        for position in range(output_arity):
            if position in self.agg_columns:
                fn, col = self.agg_columns[position]
                if col is None:
                    select_items.append("count(*)")
                else:
                    select_items.append(f"{fn}({col.table}.{col.column})")
            else:
                col = native[position]
                select_items.append(f"{col.table}.{col.column}")
        parts = [f"select {', '.join(select_items)}"]
        parts.append("from " + ", ".join(sorted(self.tables)))
        predicates = [
            f"{a.table}.{a.column} = {b.table}.{b.column}" for a, b in self.join_edges
        ]
        predicates.extend(self.filters)
        if predicates:
            parts.append("where " + " and ".join(predicates))
        if self.agg_columns and self.group_columns:
            parts.append(
                "group by " + ", ".join(f"{c.table}.{c.column}" for c in self.group_columns)
            )
        return " ".join(parts)

    def _native_positions(self, output_arity: int) -> list[int]:
        return [i for i in range(output_arity) if i not in self.agg_columns]


class RegalBaseline:
    """Speculative SPJA reverse engineering from a (D_I, R_I) instance."""

    def __init__(
        self,
        db: Database,
        result: Result,
        time_budget: float = 120.0,
        candidate_cap: int = 20_000,
        max_tables: int = 4,
    ):
        self.db = db
        self.result = result
        self.time_budget = time_budget
        self.candidate_cap = candidate_cap
        self.max_tables = max_tables
        self.schema_graph = SchemaGraph(db.catalog)
        self._started = 0.0
        self._validated = 0

    # -- public API ---------------------------------------------------------

    def reverse_engineer(self) -> QREOutcome:
        self._started = time.perf_counter()
        self._validated = 0
        try:
            sql = self._search()
        except _BudgetExceeded as exc:
            return QREOutcome(
                status=exc.status,
                candidates_validated=self._validated,
                seconds=time.perf_counter() - self._started,
            )
        status = "ok" if sql is not None else "failed"
        return QREOutcome(
            status=status,
            sql=sql,
            candidates_validated=self._validated,
            seconds=time.perf_counter() - self._started,
        )

    # -- candidate generation --------------------------------------------------

    def _tick(self) -> None:
        if time.perf_counter() - self._started > self.time_budget:
            raise _BudgetExceeded("dnc_timeout")
        if self._validated > self.candidate_cap:
            raise _BudgetExceeded("dnc_candidates")

    def _search(self) -> Optional[str]:
        native_candidates, forced_aggregates = self._column_candidates()
        for table_set in self._table_sets(native_candidates):
            for join_edges in self._join_trees(table_set):
                for group_positions in self._grouping_lattice(
                    native_candidates, forced_aggregates, table_set
                ):
                    aggregate_positions = [
                        p
                        for p in range(self.result.column_count)
                        if p not in group_positions
                    ]
                    for assignment in self._assignments(
                        native_candidates, group_positions, table_set
                    ):
                        for agg_assignment in self._aggregate_assignments(
                            aggregate_positions, table_set
                        ):
                            self._tick()
                            candidate = _Candidate(
                                tables=table_set,
                                join_edges=join_edges,
                                group_columns=tuple(assignment),
                                agg_columns=agg_assignment,
                            )
                            sql = self._validate(candidate)
                            if sql is not None:
                                return sql
        return None

    def _grouping_lattice(
        self,
        native_candidates,
        forced_aggregates: list[int],
        table_set: tuple[str, ...],
    ):
        """Subsets of output positions treated as grouping columns.

        A position with a value-contained native candidate may still be an
        aggregate (min/max outputs always exist in the base data), so REGAL
        descends a lattice from "all candidates native" toward "everything
        aggregated".
        """
        eligible = [
            p
            for p, matches in sorted(native_candidates.items())
            if any(c.table in table_set for c in matches)
        ]
        seen = set()
        for size in range(len(eligible), -1, -1):
            for combo in itertools.combinations(eligible, size):
                if combo not in seen:
                    seen.add(combo)
                    yield combo

    def _column_candidates(self):
        """Value-containment discovery of native column candidates."""
        native: dict[int, list[ColumnNode]] = {}
        aggregate_positions: list[int] = []
        for position in range(self.result.column_count):
            values = set(self.result.column_values(position))
            matches = []
            for table in self.db.table_names:
                schema = self.db.schema(table)
                rows = self.db.rows(table)
                for index, column in enumerate(schema.columns):
                    column_values = {row[index] for row in rows}
                    if values <= column_values:
                        matches.append(ColumnNode(table.lower(), column.name.lower()))
            if matches:
                native[position] = matches
            else:
                aggregate_positions.append(position)
        return native, aggregate_positions

    def _table_sets(self, native_candidates) -> list[tuple[str, ...]]:
        """Connected table sets, candidate-covering sets first.

        REGAL must consider tables beyond the value-matched ones (an
        aggregate's argument may live in a table none of whose columns
        contain a result value), so all connected combinations are
        enumerated, ordered by size and by how many candidate tables they
        include.
        """
        candidate_tables = set()
        for matches in native_candidates.values():
            candidate_tables.update(c.table for c in matches)
        all_tables = sorted(t.lower() for t in self.db.table_names)
        sets: list[tuple[str, ...]] = []
        for size in range(1, self.max_tables + 1):
            sized = [
                combo
                for combo in itertools.combinations(all_tables, size)
                if self._is_connected(combo)
            ]
            sized.sort(key=lambda combo: -len(candidate_tables & set(combo)))
            sets.extend(sized)
        return sets

    def _is_connected(self, tables: tuple[str, ...]) -> bool:
        if len(tables) == 1:
            return True
        graph = nx.Graph()
        graph.add_nodes_from(tables)
        for a, b in self.schema_graph.graph.edges:
            if a.table in tables and b.table in tables:
                graph.add_edge(a.table, b.table)
        return nx.is_connected(graph)

    def _join_trees(self, tables: tuple[str, ...]):
        """Spanning join-edge sets over the schema-graph edges."""
        if len(tables) == 1:
            yield ()
            return
        edges = [
            (a, b)
            for a, b in self.schema_graph.graph.edges
            if a.table in tables and b.table in tables and a.table != b.table
        ]
        n_needed = len(tables) - 1
        for combo in itertools.combinations(edges, n_needed):
            graph = nx.Graph()
            graph.add_nodes_from(tables)
            for a, b in combo:
                graph.add_edge(a.table, b.table)
            if nx.is_connected(graph):
                yield tuple(combo)

    def _assignments(
        self, native_candidates, group_positions, tables: tuple[str, ...]
    ):
        """Per-group-position choices of native columns within the table set."""
        pools = []
        for position in group_positions:
            pool = [c for c in native_candidates[position] if c.table in tables]
            if not pool:
                return
            pools.append(pool)
        for combo in itertools.product(*pools):
            yield list(combo)

    def _aggregate_assignments(self, positions: list[int], tables: tuple[str, ...]):
        """Aggregation function/column choices for non-native positions."""
        if not positions:
            yield {}
            return
        numeric_columns: list[Optional[ColumnNode]] = [None]  # count(*)
        for table in tables:
            schema = self.db.schema(table)
            for column in schema.columns:
                if column.type.is_numeric:
                    numeric_columns.append(ColumnNode(table, column.name.lower()))
        options = []
        for column in numeric_columns:
            if column is None:
                options.append(("count", None))
            else:
                options.extend((fn, column) for fn in AGGREGATES)
        for combo in itertools.product(options, repeat=len(positions)):
            yield dict(zip(positions, combo))

    # -- validation ------------------------------------------------------------

    def _validate(self, candidate: _Candidate) -> Optional[str]:
        self._validated += 1
        sql = candidate.to_sql(self.result.column_count)
        try:
            produced = self.db.execute(sql)
        except ReproError:
            return None
        target = self.result.as_multiset(float_precision=4)
        got = produced.as_multiset(float_precision=4)
        if got == target:
            return sql
        if target and set(target) <= set(got):
            # Over-production: backward filter inference on the native columns.
            refined = self._infer_filters(candidate, produced)
            if refined is not None:
                try:
                    refined_result = self.db.execute(refined)
                except ReproError:
                    refined_result = None
                if (
                    refined_result is not None
                    and refined_result.as_multiset(float_precision=4) == target
                ):
                    return refined
        if candidate.agg_columns:
            return self._aggregate_filter_search(candidate, produced, target)
        return None

    def _aggregate_filter_search(
        self, candidate: _Candidate, produced: Result, target: Counter
    ) -> Optional[str]:
        """Hypothesize single range filters when aggregate values mismatch.

        A WHERE predicate removed from an aggregation query changes every
        aggregate value, so the only recourse for an instance-driven tool is
        to *guess* cut points over the base data and re-validate — the
        brute-force inner loop that dominates REGAL's runtime on filtered
        queries.
        """
        native_positions = candidate._native_positions(self.result.column_count)
        target_keys = {tuple(row[i] for i in native_positions) for row in target}
        produced_keys = {tuple(row[i] for i in native_positions) for row in produced.rows}
        if not target_keys <= produced_keys:
            return None

        from repro.engine.types import format_sql_literal

        for table in candidate.tables:
            schema = self.db.schema(table)
            key_columns = schema.key_columns()
            for index, column in enumerate(schema.columns):
                if column.name.lower() in key_columns:
                    continue
                if not (column.type.is_numeric or column.type.is_temporal):
                    continue
                distinct = sorted({row[index] for row in self.db.rows(table)})
                if len(distinct) < 2:
                    continue
                step = max(1, len(distinct) // 24)
                cutpoints = distinct[::step]
                for op in ("<=", ">="):
                    for cut in cutpoints:
                        self._tick()
                        predicate = (
                            f"{table}.{column.name.lower()} {op} "
                            f"{format_sql_literal(cut)}"
                        )
                        refined = _Candidate(
                            tables=candidate.tables,
                            join_edges=candidate.join_edges,
                            group_columns=candidate.group_columns,
                            agg_columns=candidate.agg_columns,
                            filters=[predicate],
                        )
                        sql = refined.to_sql(self.result.column_count)
                        self._validated += 1
                        try:
                            result = self.db.execute(sql)
                        except ReproError:
                            continue
                        if result.as_multiset(float_precision=4) == target:
                            return sql
        return None

    def _infer_filters(self, candidate: _Candidate, produced: Result) -> Optional[str]:
        """Bound each native column by the min/max over contributing rows.

        This mirrors REGAL's matrix-projection step: find the tightest ranges
        on the candidate dimensions that retain every target row — and, like
        the original, it can settle on imprecise ranges when the instance
        underdetermines the true predicate.
        """
        target_rows = set(self.result.as_multiset())
        native_positions = [
            i for i in range(self.result.column_count) if i not in candidate.agg_columns
        ]
        if not native_positions:
            return None
        contributing = [row for row in produced.rows if row in target_rows]
        if not contributing:
            return None
        filters = []
        for position, column in zip(native_positions, candidate.group_columns):
            values = [row[position] for row in contributing]
            col_type = self.db.schema(column.table).column(column.column).type
            if col_type.is_numeric or col_type.is_temporal:
                lo, hi = min(values), max(values)
                from repro.engine.types import format_sql_literal

                filters.append(
                    f"{column.table}.{column.column} between "
                    f"{format_sql_literal(lo)} and {format_sql_literal(hi)}"
                )
            else:
                distinct = sorted(set(values))
                if len(distinct) == 1:
                    from repro.engine.types import format_sql_literal

                    filters.append(
                        f"{column.table}.{column.column} = "
                        f"{format_sql_literal(distinct[0])}"
                    )
        if not filters:
            return None
        refined = _Candidate(
            tables=candidate.tables,
            join_edges=candidate.join_edges,
            group_columns=candidate.group_columns,
            agg_columns=candidate.agg_columns,
            filters=filters,
        )
        return refined.to_sql(self.result.column_count)


class _BudgetExceeded(Exception):
    def __init__(self, status: str):
        super().__init__(status)
        self.status = status
