"""S-value sourcing.

An *s-value* (paper §4.4) is a column value that satisfies the query's filter
predicates — every database the Generation Pipeline synthesizes is populated
exclusively with s-values so the SPJ core passes rows through.  This module
turns the extracted filters + catalog domains into a value factory:

* ``value(column)`` — one valid s-value;
* ``distinct(column, n)`` — ``n`` pairwise-distinct s-values (ascending for
  ordered types), raising :class:`SValueError` when the filter admits fewer;
* ``capacity(column)`` — how many distinct s-values exist (the ``n_i`` terms
  of the ``l_max`` bound in limit extraction, §5.4).
"""

from __future__ import annotations

import datetime
import string

from repro.core.model import (
    InListFilter,
    MultiRangeFilter,
    NullFilter,
    NumericFilter,
    TextFilter,
)
from repro.core.session import ExtractionSession
from repro.engine.expressions import like_matches
from repro.engine.types import DateType, NumericType, VarcharType
from repro.errors import ExtractionError
from repro.sgraph.schema_graph import ColumnNode


class SValueError(ExtractionError):
    """The requested number of distinct s-values does not exist."""


class SValueSource:
    """Factory for filter-compatible column values."""

    def __init__(self, session: ExtractionSession):
        self._session = session
        # Both caches are sound because the source is constructed after the
        # filter set (and any HAVING guards) is final.
        self._capacity_cache: dict[ColumnNode, int] = {}
        self._distinct_cache: dict[ColumnNode, list] = {}

    # -- public API -----------------------------------------------------------

    def value(self, column: ColumnNode):
        return self.distinct(column, 1)[0]

    def pair(self, column: ColumnNode) -> tuple:
        values = self.distinct(column, 2)
        return values[0], values[1]

    def distinct(self, column: ColumnNode, n: int) -> list:
        """``n`` distinct s-values, ascending where the type is ordered."""
        cached = self._distinct_cache.get(column)
        if cached is not None and len(cached) >= n:
            return cached[:n]
        col_type = self._session.column_type(column)
        predicate = self._session.query.filter_on(column)
        if isinstance(predicate, NullFilter):
            if predicate.negated:
                predicate = None  # any non-NULL domain value qualifies
            else:
                values = [None]
                if len(values) < n:
                    raise SValueError(
                        f"column {column} is pinned to NULL; {n} values requested"
                    )
                return values
        if isinstance(predicate, InListFilter):
            values = sorted(predicate.values)[:n]
        elif isinstance(predicate, MultiRangeFilter):
            values = self._multirange_values(predicate, n, col_type)
        elif col_type.is_textual:
            values = self._text_values(column, predicate, n)
        else:
            values = self._numeric_values(column, predicate, n, col_type)
        if len(values) < n:
            raise SValueError(
                f"column {column} admits only {len(values)} distinct s-values, "
                f"{n} requested"
            )
        if cached is None or len(values) > len(cached):
            self._distinct_cache[column] = values
        return values

    #: text capacity is measured by actual generation, capped here — far above
    #: any probe cardinality the pipeline requests.
    TEXT_CAPACITY_CAP = 4096

    def capacity(self, column: ColumnNode) -> int:
        """Number of distinct s-values the column admits (possibly huge).

        For textual columns the count is established constructively — by
        generating candidate values under the column's length limit — so a
        ``distinct(column, n)`` call with ``n <= capacity(column)`` never
        fails.
        """
        cached = self._capacity_cache.get(column)
        if cached is not None:
            return cached
        col_type = self._session.column_type(column)
        predicate = self._session.query.filter_on(column)
        if isinstance(predicate, NullFilter):
            predicate = None if predicate.negated else predicate
        if isinstance(predicate, NullFilter):
            capacity = 1  # IS NULL pins the column
        elif isinstance(predicate, InListFilter):
            capacity = len(predicate.values)
        elif isinstance(predicate, MultiRangeFilter):
            capacity = sum(
                self._to_axis(hi, col_type) - self._to_axis(lo, col_type) + 1
                for lo, hi in predicate.intervals
            )
        elif col_type.is_textual:
            capacity = len(self._text_values(column, predicate, self.TEXT_CAPACITY_CAP))
        else:
            lo_axis, hi_axis = self._numeric_axis_range(column, predicate, col_type)
            capacity = hi_axis - lo_axis + 1
        self._capacity_cache[column] = capacity
        return capacity

    def is_equality_constrained(self, column: ColumnNode) -> bool:
        """True when the filter pins the column to a single value."""
        return self.capacity(column) == 1

    # -- numeric / date --------------------------------------------------------

    def _numeric_axis_range(self, column, predicate, col_type) -> tuple[int, int]:
        domain = self._session.column_domain(column)
        lo = predicate.lo if predicate is not None else domain.lo
        hi = predicate.hi if predicate is not None else domain.hi
        guard = self._session.svalue_guards.get(column)
        if guard is not None:
            guard_lo, guard_hi = guard
            if guard_lo is not None and guard_lo > lo:
                lo = guard_lo
            if guard_hi is not None and guard_hi < hi:
                hi = guard_hi
        return self._to_axis(lo, col_type), self._to_axis(hi, col_type)

    @staticmethod
    def _to_axis(value, col_type) -> int:
        if isinstance(col_type, DateType):
            return value.toordinal()
        if isinstance(col_type, NumericType):
            return round(value * 10**col_type.scale)
        return value

    @staticmethod
    def _from_axis(axis: int, col_type):
        if isinstance(col_type, DateType):
            return datetime.date.fromordinal(axis)
        if isinstance(col_type, NumericType):
            return axis / 10**col_type.scale
        return axis

    def _numeric_values(self, column, predicate, n, col_type) -> list:
        lo_axis, hi_axis = self._numeric_axis_range(column, predicate, col_type)
        # Prefer small positive values when the range allows (positive keys,
        # readable probe databases); otherwise start at the lower bound.
        start = lo_axis if lo_axis > 1 else min(max(lo_axis, 1), hi_axis)
        if start + n - 1 > hi_axis:
            start = max(lo_axis, hi_axis - n + 1)
        values = []
        axis = start
        while axis <= hi_axis and len(values) < n:
            values.append(self._from_axis(axis, col_type))
            axis += 1
        return values

    def _multirange_values(self, predicate, n, col_type) -> list:
        """Ascending s-values drawn across a union of intervals."""
        values: list = []
        for lo, hi in predicate.intervals:
            axis = self._to_axis(lo, col_type)
            end = self._to_axis(hi, col_type)
            while axis <= end and len(values) < n:
                values.append(self._from_axis(axis, col_type))
                axis += 1
            if len(values) == n:
                break
        return values

    # -- textual --------------------------------------------------------------

    def _text_values(self, column, predicate, n) -> list[str]:
        max_length = self._max_length(column)
        if predicate is None:
            return _enumerate_strings(n, max_length)
        assert isinstance(predicate, TextFilter)
        return _expand_pattern(predicate.pattern, n, max_length)

    def _max_length(self, column) -> int:
        col_type = self._session.column_type(column)
        if isinstance(col_type, VarcharType):
            return col_type.max_length
        return 10**6


def _enumerate_strings(n: int, max_length: int) -> list[str]:
    """The first ``n`` strings in shortlex order over a 26-letter alphabet."""
    alphabet = string.ascii_lowercase
    values: list[str] = []
    length = 1
    while len(values) < n and length <= max_length:
        count_at_length = 26**length
        for i in range(count_at_length):
            chars = []
            remainder = i
            for _ in range(length):
                chars.append(alphabet[remainder % 26])
                remainder //= 26
            values.append("".join(reversed(chars)))
            if len(values) == n:
                return values
        length += 1
    return values


def _expand_pattern(pattern: str, n: int, max_length: int) -> list[str]:
    """Generate up to ``n`` distinct strings matching a LIKE pattern."""
    results: list[str] = []
    if "%" in pattern:
        # Vary both the expansion length and the expansion character of the
        # first '%' (the remaining wildcards collapse to fixed fillers).
        first = pattern.index("%")
        prefix = pattern[:first].replace("_", "a")
        suffix = pattern[first + 1 :].replace("%", "").replace("_", "a")
        alphabet = string.ascii_lowercase
        for k in range(0, max(2, n + 4)):
            base_len = len(prefix) + k + len(suffix)
            if base_len > max_length:
                break
            fillers = alphabet if k > 0 else "b"
            for ch in fillers:
                candidate = prefix + ch * k + suffix
                if like_matches(candidate, pattern) and candidate not in results:
                    results.append(candidate)
                if len(results) == n:
                    return results
        return results
    if "_" in pattern:
        # Vary the characters bound to '_' positions.
        slots = [i for i, ch in enumerate(pattern) if ch == "_"]
        alphabet = string.ascii_lowercase
        count = 0
        while len(results) < n and count < 26 ** len(slots):
            chars = []
            remainder = count
            for _slot in slots:
                chars.append(alphabet[remainder % 26])
                remainder //= 26
            candidate = list(pattern)
            for slot, ch in zip(slots, chars):
                candidate[slot] = ch
            text = "".join(candidate)
            if len(text) <= max_length and text not in results:
                results.append(text)
            count += 1
        return results
    return [pattern] if len(pattern) <= max_length else []
