"""HAVING-clause extraction — the restructured pipeline of paper §7.

The paper sketches the approach and defers details to its technical report;
this module implements the reconstruction documented in DESIGN.md §5:

1. **From clause** as usual, then **multi-row minimization** (Lemma 1 fails
   under HAVING — a group may need several rows to satisfy a count/sum
   bound), then **join extraction** (whole-column negation works unchanged on
   a multi-row ``D_min``).
2. **Unified bound extraction** — a filter ``a <= A <= b`` is semantically a
   ``min(A) >= a ∧ max(A) <= b`` HAVING pair, so both families are found with
   one set of probes.  Setting *every* row of column ``A`` to a common value
   ``v`` makes filter/min/max/avg predicates flip emptiness exactly at their
   constants; bisection on the ``v``-axis recovers the bounds.
3. **Family classification** per bound:
   * *cardinality probe* — duplicating the column's rows halves a ``sum``
     threshold on the ``v``-axis but leaves the other families fixed;
   * *mixed-value probes* — with per-group value pairs ``(x, y)`` straddling
     the bound, a filter merely drops the ``x`` rows (populated), a ``min``
     bound kills whole groups (empty), and an ``avg`` bound follows the pair
     mean; two probes separate the three.
4. **count(*) bounds** — a single-row template database is replicated ``j``
   times; the smallest populated ``j`` is the count lower bound, installed as
   the session's *probe multiplier* so every later synthetic database
   satisfies it.  (Count *upper* bounds would invalidate multi-row probe
   databases and are reported as unsupported.)
5. The remaining modules (text filters, projections, group by, aggregations,
   order by, limit) run unchanged on the reduced template ``D^1`` — the
   discovered bounds are registered as *s-value guards* so every probe
   database satisfies the HAVING predicates by construction.
6. Per the paper's final step, ``min(A) >= a`` / ``max(A) <= b`` bounds whose
   mixed-value probes matched *filter* semantics are emitted as WHERE
   predicates; genuine min/max/avg/sum/count HAVING bounds are emitted in the
   HAVING clause.

Scope restrictions (beyond the paper's FE/HE attribute disjointness):
at most one sum-HAVING bound per query; count upper bounds unsupported;
sum-aggregated projections cannot be combined with a count-HAVING bound
(the probe multiplier would scale their coefficients).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

from repro.core import (
    aggregates,
    checker,
    filters as filters_module,
    from_clause,
    groupby,
    joins,
    limit as limit_module,
    minimizer,
    orderby,
    projections,
)
from repro.core.filters import _Axis, _check_textual
from repro.core.model import HavingPredicate, NumericFilter
from repro.core.session import ExtractionSession
from repro.core.svalues import SValueSource
from repro.errors import ExtractionError, UnsupportedQueryError
from repro.sgraph.schema_graph import ColumnNode

_MAX_COUNT_BOUND = 64


@dataclass
class _Bound:
    """One discovered bound on a column's unified value axis."""

    column: ColumnNode
    side: str  # 'lower' | 'upper'
    axis_value: int  # emptiness flips at this all-equal probe value
    family: str = "filter"  # 'filter' | 'min' | 'max' | 'avg' | 'sum'
    constant: object = None  # resolved SQL-space constant


def extract_with_having(session: ExtractionSession):
    """Run the §7 pipeline; returns an ExtractionOutcome."""
    from repro.core.pipeline import ExtractionOutcome

    limit_module.capture_initial_result(session)
    if session.initial_result.is_effectively_empty:
        raise ExtractionError(
            "the application's result on D_I is empty; extraction requires a "
            "populated initial result (paper §3)"
        )

    from_clause.extract_tables(session)
    minimizer.minimize_multirow(session)
    joins.extract_joins(session)

    with session.module("having_bounds"):
        bounds = _extract_unified_bounds(session)
        _classify_families(session, bounds)
        _install_bounds(session, bounds)
        _record_bound_clauses(session)

    with session.module("having_count"):
        _install_template_d1(session, bounds)
        _detect_count_bounds(session)

    with session.module("filters"):
        _extract_text_filters(session)

    svalues = SValueSource(session)
    projections.extract_projections(session, svalues)
    groupby.extract_group_by(session, svalues)
    aggregates.extract_aggregations(session, svalues)
    if session.probe_multiplier > 1:
        _reject_sum_outputs(session)
    orderby.extract_order_by(session, svalues)
    limit_module.extract_limit(session, svalues)

    report = None
    if session.config.run_checker:
        report = checker.verify_extraction(session, svalues)

    return ExtractionOutcome(
        query=session.query,
        sql=session.query.sql,
        stats=session.stats,
        checker_report=report,
    )


def _record_bound_clauses(session: ExtractionSession) -> None:
    """Evidence for every filter/HAVING predicate the bound pass installed.

    The all-equal bisections and family-classification probes established the
    whole bound set collectively, so each rendered predicate cites the
    module's probe range rather than a per-predicate slice.
    """
    provenance = session.provenance
    if not provenance.enabled:
        return
    for predicate in session.query.filters:
        provenance.accept(
            "filters",
            predicate.to_sql(),
            "having_bounds",
            detail="all-equal axis bisection; mixed-value probes matched filter semantics",
            claim=False,
            include_module_probes=True,
            key=("filters", (predicate.column.table, predicate.column.column)),
        )
    for predicate in session.query.having:
        provenance.accept(
            "having",
            predicate.to_sql(),
            "having_bounds",
            detail=(
                f"all-equal axis bisection; classified as {predicate.aggregate} "
                "by cardinality/mixed-value probes"
            ),
            claim=False,
            include_module_probes=True,
        )


# --- unified bound extraction ---------------------------------------------------


def _numeric_candidates(session: ExtractionSession) -> list[ColumnNode]:
    columns = []
    for table in session.query.tables:
        for column in session.nonkey_columns(table):
            col_type = session.column_type(column)
            if col_type.is_numeric or col_type.is_temporal:
                columns.append(column)
    return columns


def _set_all_probe(session: ExtractionSession, column: ColumnNode, value) -> bool:
    """Set every row of the column to ``value``; True if populated."""
    schema = session.silo.schema(column.table)
    index = schema.column_index(column.column)
    rows = [
        row[:index] + (value,) + row[index + 1 :]
        for row in session.silo.rows(column.table)
    ]
    return not session.run_on({column.table: rows}).is_effectively_empty


def _extract_unified_bounds(session: ExtractionSession) -> list[_Bound]:
    bounds: list[_Bound] = []
    for column in _numeric_candidates(session):
        axis = _Axis(session, column)
        anchor = _current_axis_anchor(session, column, axis)
        lo_ok = _set_all_probe(session, column, axis.from_axis(axis.lo))
        hi_ok = _set_all_probe(session, column, axis.from_axis(axis.hi))
        if not lo_ok:
            flip = _bisect_lower(session, column, axis, anchor)
            bounds.append(_Bound(column=column, side="lower", axis_value=flip))
        if not hi_ok:
            flip = _bisect_upper(session, column, axis, anchor)
            bounds.append(_Bound(column=column, side="upper", axis_value=flip))
    return bounds


def _current_axis_anchor(session, column: ColumnNode, axis: _Axis) -> int:
    """An axis value known to qualify: the column's mean would not be safe for
    min/max bounds, so use a value present in D_min — for all-equal probes any
    current value works because the *current* database is populated... except
    sum bounds, where the all-equal anchor must be probed explicitly."""
    schema = session.silo.schema(column.table)
    index = schema.column_index(column.column)
    values = [row[index] for row in session.silo.rows(column.table)]
    anchor = max(values)
    anchor_axis = axis.to_axis(anchor)
    if _set_all_probe(session, column, axis.from_axis(anchor_axis)):
        return anchor_axis
    # For tight sum windows the max may overshoot; scan the present values.
    for value in sorted(set(values)):
        candidate = axis.to_axis(value)
        if _set_all_probe(session, column, axis.from_axis(candidate)):
            return candidate
    raise UnsupportedQueryError(
        f"no all-equal qualifying value found for {column}; the HAVING window "
        "is narrower than this pipeline's probes support"
    )


def _bisect_lower(session, column, axis: _Axis, anchor: int) -> int:
    lo, hi = axis.lo + 1, anchor
    while lo < hi:
        mid = (lo + hi) // 2
        if _set_all_probe(session, column, axis.from_axis(mid)):
            hi = mid
        else:
            lo = mid + 1
    return lo


def _bisect_upper(session, column, axis: _Axis, anchor: int) -> int:
    lo, hi = anchor, axis.hi - 1
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if _set_all_probe(session, column, axis.from_axis(mid)):
            lo = mid
        else:
            hi = mid - 1
    return lo


# --- family classification ------------------------------------------------------


def _doubled_rows(session, table: str) -> list[tuple]:
    rows = session.silo.rows(table)
    return [row for row in rows for _ in (0, 1)]


def _mixed_probe(
    session, column: ColumnNode, x, y
) -> bool:
    """Duplicate the column's rows pairwise with values (x, y); populated?"""
    schema = session.silo.schema(column.table)
    index = schema.column_index(column.column)
    rows = []
    for row in session.silo.rows(column.table):
        rows.append(row[:index] + (x,) + row[index + 1 :])
        rows.append(row[:index] + (y,) + row[index + 1 :])
    return not session.run_on({column.table: rows}).is_effectively_empty


def _classify_families(session: ExtractionSession, bounds: list[_Bound]) -> None:
    sum_seen = False
    for bound in bounds:
        axis = _Axis(session, bound.column)
        if _is_sum_bound(session, bound, axis):
            if sum_seen:
                raise UnsupportedQueryError(
                    "multiple sum-HAVING bounds are outside the supported class"
                )
            sum_seen = True
            bound.family = "sum"
            bound.constant = _resolve_sum_constant(session, bound, axis)
            continue
        bound.family = _classify_invariant_family(session, bound, axis)
        bound.constant = axis.from_axis(bound.axis_value)


def _is_sum_bound(session, bound: _Bound, axis: _Axis) -> bool:
    """Doubling the rows halves a sum threshold on the all-equal axis."""
    table = bound.column.table
    n = session.silo.row_count(table)
    if n < 1:
        return False
    original_rows = session.silo.rows(table)
    doubled = _doubled_rows(session, table)
    schema = session.silo.schema(table)
    index = schema.column_index(bound.column.column)

    def probe(axis_value: int) -> bool:
        value = axis.from_axis(axis_value)
        rows = [row[:index] + (value,) + row[index + 1 :] for row in doubled]
        return not session.run_on({table: rows}).is_effectively_empty

    if bound.side == "lower":
        just_below = bound.axis_value - 1
        if just_below <= axis.lo:
            return False
        # a sum bound relaxes per-row under doubling; the others do not
        return probe(_halfway(axis, bound.axis_value, "lower")) or probe(just_below)
    just_above = bound.axis_value + 1
    if just_above >= axis.hi:
        return False
    return probe(_halfway(axis, bound.axis_value, "upper")) or probe(just_above)


def _halfway(axis: _Axis, flip: int, side: str) -> int:
    if side == "lower":
        return max(axis.lo + 1, flip // 2 if flip > 0 else flip * 2)
    return min(axis.hi - 1, flip * 2 if flip > 0 else flip // 2)


def _resolve_sum_constant(session, bound: _Bound, axis: _Axis):
    """Recover the exact sum threshold: fix n-1 rows, bisect the last."""
    table = bound.column.table
    schema = session.silo.schema(table)
    index = schema.column_index(bound.column.column)
    rows = session.silo.rows(table)
    n = len(rows)
    pivot_axis = bound.axis_value
    pivot = axis.from_axis(pivot_axis)
    fixed = [row[:index] + (pivot,) + row[index + 1 :] for row in rows[:-1]]

    def probe(axis_value: int) -> bool:
        last = rows[-1][:index] + (axis.from_axis(axis_value),) + rows[-1][index + 1 :]
        return not session.run_on({table: fixed + [last]}).is_effectively_empty

    if bound.side == "lower":
        lo, hi = axis.lo + 1, pivot_axis
        while lo < hi:
            mid = (lo + hi) // 2
            if probe(mid):
                hi = mid
            else:
                lo = mid + 1
        w_star = lo
        total_axis = pivot_axis * (n - 1) + w_star
    else:
        lo, hi = pivot_axis, axis.hi - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if probe(mid):
                lo = mid
            else:
                hi = mid - 1
        w_star = lo
        total_axis = pivot_axis * (n - 1) + w_star
    return axis.from_axis(total_axis)


def _classify_invariant_family(session, bound: _Bound, axis: _Axis) -> str:
    """Separate filter / min (or max) / avg via mixed-value probes."""
    delta = 1
    flip = bound.axis_value
    if bound.side == "lower":
        x_minmax = flip - delta
        y_minmax = flip + 3 * delta
        x_avg = flip - 3 * delta
        y_avg = flip + delta
        extreme_family = "min"
    else:
        x_minmax = flip + delta
        y_minmax = flip - 3 * delta
        x_avg = flip + 3 * delta
        y_avg = flip - delta
        extreme_family = "max"

    in_domain = lambda v: axis.lo <= v <= axis.hi
    if not all(in_domain(v) for v in (x_minmax, y_minmax, x_avg, y_avg)):
        return "filter"  # cramped window: default to the filter rendering

    if not _mixed_probe(
        session,
        bound.column,
        axis.from_axis(x_minmax),
        axis.from_axis(y_minmax),
    ):
        return extreme_family
    if not _mixed_probe(
        session,
        bound.column,
        axis.from_axis(x_avg),
        axis.from_axis(y_avg),
    ):
        return "avg"
    return "filter"


# --- bound installation --------------------------------------------------------


def _install_bounds(session: ExtractionSession, bounds: list[_Bound]) -> None:
    """Record bounds as filters / HAVING predicates plus s-value guards."""
    by_column: dict[ColumnNode, dict[str, _Bound]] = {}
    for bound in bounds:
        by_column.setdefault(bound.column, {})[bound.side] = bound

    for column, sides in by_column.items():
        axis = _Axis(session, column)
        domain_lo = axis.from_axis(axis.lo)
        domain_hi = axis.from_axis(axis.hi)
        lower = sides.get("lower")
        upper = sides.get("upper")
        families = {b.family for b in sides.values()}

        if families <= {"filter", "min", "max"}:
            filter_like = all(b.family == "filter" for b in sides.values())
            lo = lower.constant if lower else domain_lo
            hi = upper.constant if upper else domain_hi
            if filter_like:
                session.query.filters.append(
                    NumericFilter(
                        column=column,
                        lo=lo,
                        hi=hi,
                        domain_lo=domain_lo,
                        domain_hi=domain_hi,
                    )
                )
            else:
                if lower and lower.family == "min":
                    session.query.having.append(
                        HavingPredicate(
                            aggregate="min",
                            column=column,
                            lo=lower.constant,
                            hi=None,
                            domain_lo=domain_lo,
                            domain_hi=domain_hi,
                        )
                    )
                if upper and upper.family == "max":
                    session.query.having.append(
                        HavingPredicate(
                            aggregate="max",
                            column=column,
                            lo=None,
                            hi=upper.constant,
                            domain_lo=domain_lo,
                            domain_hi=domain_hi,
                        )
                    )
                # a filter-family side alongside a min/max side
                if lower and lower.family == "filter":
                    session.query.filters.append(
                        NumericFilter(
                            column=column,
                            lo=lower.constant,
                            hi=domain_hi,
                            domain_lo=domain_lo,
                            domain_hi=domain_hi,
                        )
                    )
                if upper and upper.family == "filter":
                    session.query.filters.append(
                        NumericFilter(
                            column=column,
                            lo=domain_lo,
                            hi=upper.constant,
                            domain_lo=domain_lo,
                            domain_hi=domain_hi,
                        )
                    )
            session.svalue_guards[column] = (lo, hi)
            continue

        if "avg" in families:
            lo = lower.constant if lower and lower.family == "avg" else None
            hi = upper.constant if upper and upper.family == "avg" else None
            session.query.having.append(
                HavingPredicate(
                    aggregate="avg",
                    column=column,
                    lo=lo,
                    hi=hi,
                    domain_lo=domain_lo,
                    domain_hi=domain_hi,
                )
            )
            # a non-avg side on the same column keeps its own rendering
            for side_bound in (lower, upper):
                if side_bound is None or side_bound.family == "avg":
                    continue
                if side_bound.family != "filter":
                    raise UnsupportedQueryError(
                        f"mixed {side_bound.family}/avg bounds on {column} are "
                        "outside the supported class"
                    )
                session.query.filters.append(
                    NumericFilter(
                        column=column,
                        lo=side_bound.constant if side_bound.side == "lower" else domain_lo,
                        hi=side_bound.constant if side_bound.side == "upper" else domain_hi,
                        domain_lo=domain_lo,
                        domain_hi=domain_hi,
                    )
                )
            guard_lo = lo if lo is not None else domain_lo
            guard_hi = hi if hi is not None else domain_hi
            if lower and lower.family == "filter":
                guard_lo = max(guard_lo, lower.constant)
            if upper and upper.family == "filter":
                guard_hi = min(guard_hi, upper.constant)
            session.svalue_guards[column] = (guard_lo, guard_hi)
            continue

        if "sum" in families:
            bound = lower if lower and lower.family == "sum" else upper
            if bound.side == "lower":
                if bound.constant <= 0:
                    raise UnsupportedQueryError(
                        "sum-HAVING lower bounds require positive thresholds"
                    )
                session.query.having.append(
                    HavingPredicate(
                        aggregate="sum",
                        column=column,
                        lo=bound.constant,
                        hi=None,
                        domain_lo=domain_lo,
                        domain_hi=domain_hi,
                    )
                )
                # single rows at >= the threshold qualify any group size
                session.svalue_guards[column] = (bound.constant, domain_hi)
            else:
                session.query.having.append(
                    HavingPredicate(
                        aggregate="sum",
                        column=column,
                        lo=None,
                        hi=bound.constant,
                        domain_lo=domain_lo,
                        domain_hi=domain_hi,
                    )
                )
                # groups in probe databases hold at most ~32 rows
                guard_hi = _scaled_guard(session, column, bound.constant, 32)
                session.svalue_guards[column] = (domain_lo, guard_hi)
            continue

        raise UnsupportedQueryError(
            f"unsupported bound family combination on {column}: {families}"
        )


def _scaled_guard(session, column: ColumnNode, constant, divisor: int):
    axis = _Axis(session, column)
    scaled = axis.to_axis(constant) // divisor
    if scaled <= axis.lo:
        raise UnsupportedQueryError(
            f"sum-HAVING upper bound on {column} is too tight for probe groups"
        )
    return axis.from_axis(scaled)


# --- template D^1 + count bounds -----------------------------------------------


def _install_template_d1(session: ExtractionSession, bounds: list[_Bound]) -> None:
    """Reduce D_min to a single logical row per table, mutated to qualify.

    Rows drawn from different tables of a multi-row ``D_min`` need not join
    with each other, so every join-clique column is pinned to the canonical
    key value 1 (keys carry no filters in EQC); non-key columns are clamped
    into their discovered HAVING/filter guards.
    """
    clique_columns: set[ColumnNode] = set()
    for clique in session.query.join_cliques:
        clique_columns.update(clique.columns)

    template: dict[str, tuple] = {}
    for table in session.query.tables:
        row = list(session.silo.rows(table)[0])
        schema = session.silo.schema(table)
        for column, guard in session.svalue_guards.items():
            if column.table != table:
                continue
            index = schema.column_index(column.column)
            lo, hi = guard
            value = row[index]
            if lo is not None and value < lo:
                value = lo
            if hi is not None and value > hi:
                value = hi
            row[index] = value
        for column in clique_columns:
            if column.table == table:
                row[schema.column_index(column.column)] = 1
        template[table] = tuple(row)
    session.set_d1(template)


def _detect_count_bounds(session: ExtractionSession) -> None:
    """Bisect the template multiplicity for a count(*) lower bound."""
    if not session.run().is_effectively_empty:
        _reject_count_upper_bound(session)
        return  # single rows qualify: no count lower bound

    table = max(session.query.tables, key=lambda t: len(session.silo.rows(t)))
    base_row = session.d1[table]
    j = 2
    while j <= _MAX_COUNT_BOUND:
        result = session.run_on({table: [base_row] * j})
        if not result.is_effectively_empty:
            break
        j *= 2
    else:
        raise UnsupportedQueryError(
            "template database never qualifies — the HAVING class is outside "
            "this pipeline's scope"
        )
    lo, hi = j // 2 + 1, j
    while lo < hi:
        mid = (lo + hi) // 2
        if session.run_on({table: [base_row] * mid}).is_effectively_empty:
            lo = mid + 1
        else:
            hi = mid
    count_bound = lo
    session.probe_multiplier = count_bound
    session.multiplier_table = table
    session.set_d1(dict(session.d1))  # reinstall with the multiplier applied
    if session.run().is_effectively_empty:
        raise ExtractionError("template database with multiplier does not qualify")
    predicate = HavingPredicate(
        aggregate="count",
        column=None,
        lo=count_bound,
        hi=None,
        domain_lo=0,
        domain_hi=10**9,
    )
    session.query.having.append(predicate)
    if session.provenance.enabled:
        session.provenance.accept(
            "having",
            predicate.to_sql(),
            "having_count",
            detail=(
                f"template multiplicity bisection: {count_bound} rows is the "
                "smallest qualifying replication"
            ),
        )
    _reject_count_upper_bound(session)


def _reject_count_upper_bound(session: ExtractionSession) -> None:
    table = session.multiplier_table or session.query.tables[0]
    base_row = session.d1[table]
    stress = max(8, session.probe_multiplier * 8)
    if session.run_on({table: [base_row] * stress}).is_effectively_empty:
        raise UnsupportedQueryError(
            "a count(*) upper bound was detected; it would invalidate "
            "multi-row probe databases and is outside the supported class"
        )


# --- remaining clause extraction ------------------------------------------------


def _extract_text_filters(session: ExtractionSession) -> None:
    provenance = session.provenance
    for table in session.query.tables:
        for column in session.nonkey_columns(table):
            if not session.column_type(column).is_textual:
                continue
            predicate = _check_textual(session, column)
            if predicate is not None:
                session.query.filters.append(predicate)
                if provenance.enabled:
                    provenance.accept(
                        "filters",
                        predicate.to_sql(),
                        "filters",
                        detail=f"column {column.table}.{column.column}",
                        key=("filters", (column.table, column.column)),
                    )
            elif provenance.enabled:
                provenance.reject(
                    "filters",
                    f"{column.table}.{column.column}",
                    "filters",
                    detail="no textual predicate on this column",
                )


def _reject_sum_outputs(session: ExtractionSession) -> None:
    for output in session.query.outputs:
        if output.aggregate == "sum":
            raise UnsupportedQueryError(
                "sum-aggregated projections cannot be extracted together with "
                "a count(*) HAVING bound (probe multiplier would scale the "
                "projection function)"
            )
