"""Database minimization (paper §4.2).

Reduces the initial instance ``D_I`` to the single-row database ``D^1``
guaranteed by Lemma 1 for ``EQC¯H``:

1. *Sampling pre-pass* — iteratively replace large tables with small random
   samples (escalating the fraction on failure), so the expensive halving
   phase starts from a few hundred rows rather than millions;
2. *Iterative halving* — repeatedly split one multi-row table into two halves
   and keep a half on which the application still produces a populated result.
   A result row draws exactly one row from each joined table, so at least one
   half always succeeds; the paper found halving the *currently largest*
   table to converge fastest, which is the default policy here.

Both phases are timed separately — they are the maroon/pink bars of Figure 9.
"""

from __future__ import annotations

import math

from repro.core.session import ExtractionSession
from repro.errors import ExtractionError


def minimize(session: ExtractionSession) -> dict[str, tuple]:
    """Reduce the silo to ``D^1`` and install it on the session."""
    with session.module("sampler"):
        if session.config.minimizer_sampling:
            _sampling_prepass(session)
    with session.module("minimizer"):
        d1 = _halve_to_single_rows(session)
    session.set_d1(d1)
    if session.provenance.enabled:
        session.provenance.observation(
            "minimizer",
            detail=(
                "D^1 installed: one row per table for "
                + ", ".join(sorted(d1))
            ),
        )
    return d1


def _sampling_prepass(session: ExtractionSession) -> None:
    """Shrink big tables by sampling while the result stays populated."""
    config = session.config
    tables = sorted(
        session.query.tables, key=session.silo.row_count, reverse=True
    )
    for table in tables:
        size = session.silo.row_count(table)
        if size <= config.sampling_threshold:
            continue
        original_rows = session.silo.rows(table)
        for fraction in config.sampling_fractions:
            count = max(1, math.ceil(size * fraction))
            if count >= size:
                break
            sample = session.silo.sample_rows(
                table, count, seed=session.rng.randrange(2**31)
            )
            session.silo.replace_rows(table, sample)
            if not session.run().is_effectively_empty:
                session.provenance.mutation(
                    "sampler",
                    table,
                    detail=f"kept a {count}-row sample of {size} rows",
                )
                break
            session.silo.replace_rows(table, original_rows)


def _halve_to_single_rows(session: ExtractionSession) -> dict[str, tuple]:
    """Iteratively halve tables until each holds exactly one row.

    The halving loop is inherently sequential — each step's probe outcome
    decides the next database state — but every step has only two possible
    outcomes (populated → keep the probed half, empty → keep the other, per
    Lemma 1's single execution per step).  The chain therefore runs through
    the probe scheduler, which executes it inline at ``--jobs 1`` and
    speculates ahead down the binary outcome tree on idle workers otherwise.
    The ``random`` halving policy draws from the session RNG per *consumed*
    link, so it must never evaluate hypothetical states: speculation is
    disabled for it.
    """
    silo = session.silo
    state = {table: silo.rows(table) for table in session.query.tables}
    session.scheduler.run_chain(
        state,
        lambda current: _next_halving(session, current),
        speculate=session.config.halving_policy != "random",
        label="minimizer",
    )
    d1 = {}
    for table in session.query.tables:
        rows = silo.rows(table)
        if len(rows) != 1:
            raise ExtractionError(f"table {table!r} not reduced to one row")
        d1[table] = rows[0]
    if session.run().is_effectively_empty:
        raise ExtractionError(
            "minimization produced an empty-result D^1 — the hidden query "
            "appears to fall outside EQC¯H (e.g. it may carry a HAVING clause)"
        )
    return d1


def minimize_multirow(session: ExtractionSession) -> dict[str, list[tuple]]:
    """Row-minimal reduction when Lemma 1 does not hold (HAVING pipeline, §7).

    Halving proceeds as usual, but a table where *neither* half keeps the
    result populated (e.g. a group must retain enough rows for a count/sum
    bound) is restored whole and set aside; a final per-row elimination pass
    then removes whatever individual rows are still redundant.  The result is
    a row-minimal ``D_min`` that may hold several rows per table.
    """
    with session.module("sampler"):
        if session.config.minimizer_sampling:
            _sampling_prepass(session)
    with session.module("minimizer"):
        silo = session.silo
        stuck: set[str] = set()
        while True:
            candidates = [
                t
                for t in session.query.tables
                if silo.row_count(t) > 1 and t not in stuck
            ]
            if not candidates:
                break
            table = max(candidates, key=silo.row_count)
            first, second = silo.table(table).halves()
            silo.replace_rows(table, first)
            if not session.run().is_effectively_empty:
                stuck.clear()
                continue
            silo.replace_rows(table, second)
            if not session.run().is_effectively_empty:
                stuck.clear()
                continue
            silo.replace_rows(table, first + second)
            stuck.add(table)

        for table in session.query.tables:
            _eliminate_rows(session, table)

        if session.run().is_effectively_empty:
            raise ExtractionError("multi-row minimization lost the populated result")
        return {table: silo.rows(table) for table in session.query.tables}


_ELIMINATION_CAP = 1024


def _eliminate_rows(session: ExtractionSession, table: str) -> None:
    """ddmin-style chunk elimination (for tables halving could not shrink).

    Plain halving fails when the surviving rows of a group are scattered
    across both halves (e.g. a ``sum``/``count`` HAVING bound needs several
    co-grouped rows); delta-debugging-style complement testing at increasing
    granularity still converges to a row-minimal subset.
    """
    silo = session.silo
    rows = silo.rows(table)
    if len(rows) > _ELIMINATION_CAP:
        raise ExtractionError(
            f"table {table!r} still holds {len(rows)} rows after halving; "
            "row elimination is capped (query may be outside the supported "
            "HAVING class)"
        )
    granularity = 2
    while len(rows) > 1:
        chunk = max(1, (len(rows) + granularity - 1) // granularity)
        reduced = False
        start = 0
        while start < len(rows):
            candidate = rows[:start] + rows[start + chunk :]
            if not candidate:
                start += chunk
                continue
            silo.replace_rows(table, candidate)
            if not session.run().is_effectively_empty:
                rows = candidate
                granularity = max(2, granularity - 1)
                reduced = True
                break
            start += chunk
        if not reduced:
            if chunk == 1:
                break
            granularity = min(len(rows), granularity * 2)
    silo.replace_rows(table, rows)


def _next_halving(
    session: ExtractionSession, state: dict[str, list[tuple]]
) -> tuple[str, list[tuple], list[tuple]] | None:
    """The next halving link: ``(table, probed half, fallback half)``.

    Operates on the chain *state* rather than the silo so the scheduler can
    evaluate it against hypothetical future states during speculation; the
    table choice and the split mirror the historical silo-based code exactly
    (``TableData.halves``'s ``(n + 1) // 2`` midpoint, ties resolved in
    ``query.tables`` order).
    """
    candidates = [t for t in session.query.tables if len(state[t]) > 1]
    if not candidates:
        return None
    policy = session.config.halving_policy
    if policy == "largest":
        table = max(candidates, key=lambda t: len(state[t]))
    elif policy == "smallest":
        table = min(candidates, key=lambda t: len(state[t]))
    elif policy == "random":
        table = session.rng.choice(candidates)
    elif policy == "round_robin":
        table = candidates[0]
    else:
        raise ExtractionError(f"unknown halving policy {policy!r}")
    rows = state[table]
    mid = (len(rows) + 1) // 2
    return table, rows[:mid], rows[mid:]
