"""Database minimization (paper §4.2).

Reduces the initial instance ``D_I`` to the single-row database ``D^1``
guaranteed by Lemma 1 for ``EQC¯H``:

1. *Sampling pre-pass* — iteratively replace large tables with small random
   samples (escalating the fraction on failure), so the expensive halving
   phase starts from a few hundred rows rather than millions;
2. *Iterative halving* — repeatedly split one multi-row table into two halves
   and keep a half on which the application still produces a populated result.
   A result row draws exactly one row from each joined table, so at least one
   half always succeeds; the paper found halving the *currently largest*
   table to converge fastest, which is the default policy here.

Both phases are timed separately — they are the maroon/pink bars of Figure 9.
"""

from __future__ import annotations

import math

from repro.core.session import ExtractionSession
from repro.errors import ExtractionError


def minimize(session: ExtractionSession) -> dict[str, tuple]:
    """Reduce the silo to ``D^1`` and install it on the session."""
    with session.module("sampler"):
        if session.config.minimizer_sampling:
            _sampling_prepass(session)
    with session.module("minimizer"):
        d1 = _halve_to_single_rows(session)
    session.set_d1(d1)
    return d1


def _sampling_prepass(session: ExtractionSession) -> None:
    """Shrink big tables by sampling while the result stays populated."""
    config = session.config
    tables = sorted(
        session.query.tables, key=session.silo.row_count, reverse=True
    )
    for table in tables:
        size = session.silo.row_count(table)
        if size <= config.sampling_threshold:
            continue
        original_rows = session.silo.rows(table)
        for fraction in config.sampling_fractions:
            count = max(1, math.ceil(size * fraction))
            if count >= size:
                break
            sample = session.silo.sample_rows(
                table, count, seed=session.rng.randrange(2**31)
            )
            session.silo.replace_rows(table, sample)
            if not session.run().is_effectively_empty:
                break
            session.silo.replace_rows(table, original_rows)


def _halve_to_single_rows(session: ExtractionSession) -> dict[str, tuple]:
    """Iteratively halve tables until each holds exactly one row."""
    silo = session.silo
    while True:
        table = _pick_table(session)
        if table is None:
            break
        data = silo.table(table)
        first, second = data.halves()
        silo.replace_rows(table, first)
        if session.run().is_effectively_empty:
            # Lemma 1: the second half must contain a result-generating row,
            # so it is retained without a confirming run (matching the
            # paper's single execution per halving step).
            silo.replace_rows(table, second)
    d1 = {}
    for table in session.query.tables:
        rows = silo.rows(table)
        if len(rows) != 1:
            raise ExtractionError(f"table {table!r} not reduced to one row")
        d1[table] = rows[0]
    if session.run().is_effectively_empty:
        raise ExtractionError(
            "minimization produced an empty-result D^1 — the hidden query "
            "appears to fall outside EQC¯H (e.g. it may carry a HAVING clause)"
        )
    return d1


def minimize_multirow(session: ExtractionSession) -> dict[str, list[tuple]]:
    """Row-minimal reduction when Lemma 1 does not hold (HAVING pipeline, §7).

    Halving proceeds as usual, but a table where *neither* half keeps the
    result populated (e.g. a group must retain enough rows for a count/sum
    bound) is restored whole and set aside; a final per-row elimination pass
    then removes whatever individual rows are still redundant.  The result is
    a row-minimal ``D_min`` that may hold several rows per table.
    """
    with session.module("sampler"):
        if session.config.minimizer_sampling:
            _sampling_prepass(session)
    with session.module("minimizer"):
        silo = session.silo
        stuck: set[str] = set()
        while True:
            candidates = [
                t
                for t in session.query.tables
                if silo.row_count(t) > 1 and t not in stuck
            ]
            if not candidates:
                break
            table = max(candidates, key=silo.row_count)
            first, second = silo.table(table).halves()
            silo.replace_rows(table, first)
            if not session.run().is_effectively_empty:
                stuck.clear()
                continue
            silo.replace_rows(table, second)
            if not session.run().is_effectively_empty:
                stuck.clear()
                continue
            silo.replace_rows(table, first + second)
            stuck.add(table)

        for table in session.query.tables:
            _eliminate_rows(session, table)

        if session.run().is_effectively_empty:
            raise ExtractionError("multi-row minimization lost the populated result")
        return {table: silo.rows(table) for table in session.query.tables}


_ELIMINATION_CAP = 1024


def _eliminate_rows(session: ExtractionSession, table: str) -> None:
    """ddmin-style chunk elimination (for tables halving could not shrink).

    Plain halving fails when the surviving rows of a group are scattered
    across both halves (e.g. a ``sum``/``count`` HAVING bound needs several
    co-grouped rows); delta-debugging-style complement testing at increasing
    granularity still converges to a row-minimal subset.
    """
    silo = session.silo
    rows = silo.rows(table)
    if len(rows) > _ELIMINATION_CAP:
        raise ExtractionError(
            f"table {table!r} still holds {len(rows)} rows after halving; "
            "row elimination is capped (query may be outside the supported "
            "HAVING class)"
        )
    granularity = 2
    while len(rows) > 1:
        chunk = max(1, (len(rows) + granularity - 1) // granularity)
        reduced = False
        start = 0
        while start < len(rows):
            candidate = rows[:start] + rows[start + chunk :]
            if not candidate:
                start += chunk
                continue
            silo.replace_rows(table, candidate)
            if not session.run().is_effectively_empty:
                rows = candidate
                granularity = max(2, granularity - 1)
                reduced = True
                break
            start += chunk
        if not reduced:
            if chunk == 1:
                break
            granularity = min(len(rows), granularity * 2)
    silo.replace_rows(table, rows)


def _pick_table(session: ExtractionSession) -> str | None:
    """Choose the next table to halve, per the configured policy."""
    candidates = [
        t for t in session.query.tables if session.silo.row_count(t) > 1
    ]
    if not candidates:
        return None
    policy = session.config.halving_policy
    if policy == "largest":
        return max(candidates, key=session.silo.row_count)
    if policy == "smallest":
        return min(candidates, key=session.silo.row_count)
    if policy == "random":
        return session.rng.choice(candidates)
    if policy == "round_robin":
        return candidates[0]
    raise ExtractionError(f"unknown halving policy {policy!r}")
