"""Order-by extraction (paper §5.3).

Ordering columns are discovered left-to-right.  For the output column under
test, a pair of two-row databases is generated — ``D²_same``, where every
output varies in one common direction, and ``D²_rev``, where only the tested
column's argument values are swapped between the rows.  If the tested column
comes out sorted the same way in both results, it (with that direction) is the
ordering column at the current position; every other candidate is refuted
because the true driver keeps the result order fixed while the candidate's
values flip.

Already-extracted ordering outputs (``S_1``) are *tied* — their argument
columns receive a common value in both rows — so the comparison falls through
to the position under test.  Because the extractor already knows every
output's scalar function and aggregate, it *predicts* the output values for a
candidate assignment and retries until the required sortedness invariants
hold (the constructive counterpart of the paper's value-vector selection).

``count(*)`` candidates cannot be steered by values; they are probed by
varying per-group row multiplicities instead (the technical-report extension
noted in DESIGN.md §5), with the other aggregates pinned by the predicted
invariants so only the count flips between the two instances.
"""

from __future__ import annotations

from repro.core.dgen import DgenBuilder
from repro.core.model import OrderSpec, OutputColumn
from repro.core.session import ExtractionSession
from repro.core.svalues import SValueError, SValueSource
from repro.engine.result import values_sorted
from repro.sgraph.schema_graph import ColumnNode


def extract_order_by(session: ExtractionSession, svalues: SValueSource) -> list[OrderSpec]:
    """Identify the ordered output sequence ``O_E``."""
    with session.module("order_by"):
        query = session.query
        if query.ungrouped_aggregation and not query.group_by:
            query.order_by = []  # single-row results carry no observable order
            return []

        candidates = list(query.outputs)
        order: list[OrderSpec] = []
        s1: list[OutputColumn] = []
        provenance = session.provenance
        while candidates:
            hit = None
            for candidate in candidates:
                direction = _probe_candidate(session, svalues, candidate, s1)
                if direction is not None:
                    hit = (candidate, direction)
                    break
            if hit is None:
                if provenance.enabled and order:
                    # the probes since the last accept refuted every remaining
                    # candidate: the ordering prefix ends here
                    provenance.observation(
                        "order_by",
                        detail=(
                            f"no candidate sorted consistently at position "
                            f"{len(order) + 1}; ordering prefix closed"
                        ),
                    )
                break
            candidate, direction = hit
            spec = OrderSpec(candidate.name, descending=(direction == "desc"))
            order.append(spec)
            if provenance.enabled:
                # claim the whole pool: the same-vs-reversed pair for this
                # candidate plus the probes that refuted the ones tried first
                provenance.accept(
                    "order_by",
                    spec.to_sql(),
                    "order_by",
                    detail=(
                        f"position {len(order)}: sorted {direction} in both "
                        "the same-direction and argument-swapped instances"
                    ),
                )
            s1.append(candidate)
            candidates.remove(candidate)
        query.order_by = order
        return order


# --- candidate probing -----------------------------------------------------


def _probe_candidate(
    session: ExtractionSession,
    svalues: SValueSource,
    target: OutputColumn,
    s1: list[OutputColumn],
) -> str | None:
    if target.count_star:
        return _probe_count_star(session, svalues, target, s1)
    if target.function is None or target.function.is_constant:
        return None
    return _probe_value_driven(session, svalues, target, s1)


def _tied_columns(session: ExtractionSession, s1: list[OutputColumn]) -> set[ColumnNode]:
    """Argument columns of S1 outputs (closed over join cliques)."""
    tied: set[ColumnNode] = set()
    for output in s1:
        if output.function is None:
            continue
        for dep in output.function.deps:
            tied.add(dep)
            clique = session.query.clique_of(dep)
            if clique is not None:
                tied.update(clique.columns)
    return tied


def _assignment_plan(
    session: ExtractionSession,
    svalues: SValueSource,
    s1: list[OutputColumn],
) -> tuple[dict[str, int], dict[ColumnNode, list], dict[ColumnNode, tuple]] | None:
    """Choose per-column row-pair values for the two-row probe databases.

    Returns (row_counts, overrides, pairs) where ``pairs`` records columns
    whose two rows differ (orientation may later be flipped per column).
    Tied join cliques (arguments of S1 outputs) force single-key layouts; when
    two multi-row tables would cross-join through a tied clique the probe is
    infeasible and None is returned.
    """
    tied = _tied_columns(session, s1)
    cliques = session.query.join_cliques
    tied_cliques = [c for c in cliques if any(m in tied for m in c.columns)]
    free_cliques = [c for c in cliques if c not in tied_cliques]

    # Tables that must vary: those with any free clique or any free column.
    row_counts: dict[str, int] = {}
    if not tied_cliques:
        for table in session.query.tables:
            row_counts[table] = 2
    else:
        varying_tables = {m.table for c in free_cliques for m in c.columns}
        for table in session.query.tables:
            free_column_exists = any(
                column not in tied and session.query.clique_of(column) is None
                for column in session.table_columns(table)
            )
            if table in varying_tables or free_column_exists:
                row_counts[table] = 2
            else:
                row_counts[table] = 1
        # Feasibility: two 2-row tables must not be linked only by tied cliques.
        for clique in tied_cliques:
            two_row = [t for t in clique.tables() if row_counts.get(t, 1) == 2]
            if len(two_row) > 1 and not _also_linked_free(clique, free_cliques):
                return None

    overrides: dict[ColumnNode, list] = {}
    pairs: dict[ColumnNode, tuple] = {}

    for clique in cliques:
        clique_tied = clique in tied_cliques
        for member in clique.sorted_columns():
            count = row_counts.get(member.table, 1)
            if clique_tied:
                overrides[member] = [1] * count
            else:
                overrides[member] = [1, 2][:count] if count == 2 else [1]
                if count == 2:
                    pairs[member] = (1, 2)

    for table in session.query.tables:
        count = row_counts.get(table, 1)
        for column in session.table_columns(table):
            if column in overrides:
                continue
            if count == 1:
                overrides[column] = [svalues.value(column)]
                continue
            if column in tied or svalues.is_equality_constrained(column):
                overrides[column] = [svalues.value(column)] * 2
                continue
            try:
                p, q = svalues.pair(column)
            except SValueError:
                overrides[column] = [svalues.value(column)] * 2
                continue
            overrides[column] = [p, q]
            pairs[column] = (p, q)
    return row_counts, overrides, pairs


def _also_linked_free(tied_clique, free_cliques) -> bool:
    tables = tied_clique.tables()
    for clique in free_cliques:
        if len(tables & clique.tables()) > 1:
            return True
    return False


def _row_values(
    session: ExtractionSession, overrides: dict[ColumnNode, list], row: int
) -> dict[ColumnNode, object]:
    return {
        column: values[row if len(values) > 1 else 0]
        for column, values in overrides.items()
    }


def _predict(output: OutputColumn, values: dict[ColumnNode, object], multiplicity: int = 1):
    """Predicted output value for one result group."""
    if output.count_star:
        return multiplicity
    base = output.function.evaluate(values)
    if output.aggregate == "sum":
        return multiplicity * base
    return base  # native, min, max, avg are multiplicity-invariant here


def _orient_for_consistency(
    session: ExtractionSession,
    target: OutputColumn,
    overrides: dict[ColumnNode, list],
    pairs: dict[ColumnNode, tuple],
    s1: list[OutputColumn],
    require_target_varies: bool = True,
) -> bool:
    """Flip column pairs until all varying outputs ascend row0 → row1.

    Columns are owned by the first varying output that uses them; an output
    whose direction cannot be fixed without disturbing an earlier one makes
    the attempt fail.
    """
    fixed_columns: set[ColumnNode] = set()
    outputs = [target] + [
        o for o in session.query.outputs if o is not target and o not in s1
    ]
    for output in outputs:
        if output.count_star or output.function is None:
            continue
        v0 = _predict(output, _row_values(session, overrides, 0))
        v1 = _predict(output, _row_values(session, overrides, 1))
        if v0 == v1:
            if output is target and require_target_varies:
                return False  # the tested column must vary
            continue
        if v0 < v1:
            fixed_columns.update(output.function.deps)
            continue
        own_pairs = [
            dep
            for dep in output.function.deps
            if dep in pairs and dep not in fixed_columns
        ]
        if not own_pairs:
            return False
        for dep in own_pairs:
            overrides[dep] = [overrides[dep][1], overrides[dep][0]]
        v0 = _predict(output, _row_values(session, overrides, 0))
        v1 = _predict(output, _row_values(session, overrides, 1))
        if not v0 < v1:
            return False
        fixed_columns.update(output.function.deps)
    return True


def _varying_count_outputs(
    session: ExtractionSession, target: OutputColumn, s1: list[OutputColumn]
) -> list[OutputColumn]:
    """count(*) outputs that must vary during a value-driven probe.

    A count output outside S1 ties under equal multiplicities; were the
    hidden ordering led by it, the comparison would fall through to the
    column under test and produce a false positive.  Such counts are varied
    by giving the second group multiplicity 2.
    """
    return [
        o
        for o in session.query.outputs
        if o.count_star and o is not target and o not in s1
    ]


def _sums_stay_ordered(
    session: ExtractionSession,
    overrides: dict[ColumnNode, list],
    pairs: dict[ColumnNode, tuple],
    svalues: SValueSource,
    s1: list[OutputColumn],
) -> bool:
    """Pin every sum output's gap so multiplicities cannot mask orderings.

    With group multiplicities (1, 2), a sum output's observed values are
    ``(f(row0), 2·f(row1))``; after the target-swap they become
    ``(f(row1), 2·f(row0))``.  Requiring ``0 < 2·f(row0) < f(row1)`` makes a
    non-swapped sum stay ascending AND a swapped sum read descending — without
    it, the ×2 duplication can compensate the swap and fake a consistent
    ordering (a false-positive ORDER BY).
    """
    for output in session.query.outputs:
        if output in s1 or output.aggregate != "sum" or output.function is None:
            continue
        v0 = output.function.evaluate(_row_values(session, overrides, 0))
        v1 = output.function.evaluate(_row_values(session, overrides, 1))
        if v0 == v1:
            continue
        if not 0 < 2 * v0 < v1:
            if not _stretch_sum_gap(session, svalues, output, overrides, pairs):
                return False
    return True


def _swap_target_args(
    session: ExtractionSession,
    target: OutputColumn,
    overrides: dict[ColumnNode, list],
    pairs: dict[ColumnNode, tuple],
) -> dict[ColumnNode, list] | None:
    """The D²_rev assignment: only the target's argument values swap rows."""
    reversed_overrides = {col: list(vals) for col, vals in overrides.items()}
    swapped: set[ColumnNode] = set()
    for dep in target.function.deps:
        if dep in pairs:
            reversed_overrides[dep] = [overrides[dep][1], overrides[dep][0]]
            swapped.add(dep)
            clique = session.query.clique_of(dep)
            if clique is not None:
                for member in clique.columns:
                    if member in pairs and member not in swapped:
                        reversed_overrides[member] = [
                            overrides[member][1],
                            overrides[member][0],
                        ]
                        swapped.add(member)
    if not swapped:
        return None
    # Verify no other varying output was disturbed by the swap.
    for output in session.query.outputs:
        if output is target or output.count_star or output.function is None:
            continue
        before = (
            _predict(output, _row_values(session, overrides, 0)),
            _predict(output, _row_values(session, overrides, 1)),
        )
        after = (
            _predict(output, _row_values(session, reversed_overrides, 0)),
            _predict(output, _row_values(session, reversed_overrides, 1)),
        )
        if before != after:
            return None
    return reversed_overrides


def _probe_value_driven(
    session: ExtractionSession,
    svalues: SValueSource,
    target: OutputColumn,
    s1: list[OutputColumn],
) -> str | None:
    builder = DgenBuilder(session, svalues)
    plan = _assignment_plan(session, svalues, s1)
    if plan is None:
        return None
    row_counts, overrides, pairs = plan
    if not _orient_for_consistency(session, target, overrides, pairs, s1):
        return None

    # If a non-S1 count(*) output exists, vary it too (multiplicity 2 on the
    # second group) so it cannot silently lead the hidden ordering.
    vary_counts = bool(_varying_count_outputs(session, target, s1))
    if vary_counts and not _sums_stay_ordered(session, overrides, pairs, svalues, s1):
        return None
    if vary_counts and not _orient_for_consistency(
        session, target, overrides, pairs, s1
    ):
        return None  # re-verify after any sum-gap stretching

    reversed_overrides = _swap_target_args(session, target, overrides, pairs)
    if reversed_overrides is None:
        return None

    duplicate_table = _duplication_table(session, row_counts) if vary_counts else None
    if vary_counts and duplicate_table is None:
        return None

    if duplicate_table is None:
        same = builder.run(builder.build(row_counts, overrides))
        rev = builder.run(builder.build(row_counts, reversed_overrides))
    else:
        same = builder.run(
            _with_duplicated_row(builder, row_counts, overrides, duplicate_table, 1)
        )
        rev = builder.run(
            _with_duplicated_row(
                builder, row_counts, reversed_overrides, duplicate_table, 1
            )
        )
    if same.row_count != 2 or rev.row_count != 2:
        return None
    same_vals = same.column_values(target.position)
    rev_vals = rev.column_values(target.position)
    if values_sorted(same_vals) and values_sorted(rev_vals):
        return "asc"
    if values_sorted(same_vals, descending=True) and values_sorted(
        rev_vals, descending=True
    ):
        return "desc"
    return None


# --- count(*) candidates ------------------------------------------------------


def _probe_count_star(
    session: ExtractionSession,
    svalues: SValueSource,
    target: OutputColumn,
    s1: list[OutputColumn],
) -> str | None:
    """Vary per-group multiplicities: counts (2,1) vs (1,2), values fixed.

    Sum outputs must keep their order under both multiplicity splits; the
    orientation pass enforces ``0 < 2·f(row0) < f(row1)`` by retrying value
    choices, which pins every non-count output while only the count flips.
    """
    builder = DgenBuilder(session, svalues)
    plan = _assignment_plan(session, svalues, s1)
    if plan is None:
        return None
    row_counts, overrides, pairs = plan
    # The count target itself predicts (1, 1) here; orient the value-driven
    # outputs only.
    if not _orient_for_consistency(
        session, target, overrides, pairs, s1, require_target_varies=False
    ):
        return None

    # Check sums stay ordered under duplication: need 2*f(row0) < f(row1).
    for output in session.query.outputs:
        if output.aggregate == "sum" and output.function is not None:
            v0 = output.function.evaluate(_row_values(session, overrides, 0))
            v1 = output.function.evaluate(_row_values(session, overrides, 1))
            if not (0 < 2 * v0 < v1 or v0 == v1):
                ok = _stretch_sum_gap(session, svalues, output, overrides, pairs)
                if not ok:
                    return None

    duplicate_table = _duplication_table(session, row_counts)
    if duplicate_table is None:
        return None

    same = builder.run(
        _with_duplicated_row(builder, row_counts, overrides, duplicate_table, 0)
    )
    rev = builder.run(
        _with_duplicated_row(builder, row_counts, overrides, duplicate_table, 1)
    )
    if same.row_count != 2 or rev.row_count != 2:
        return None
    same_vals = same.column_values(target.position)
    rev_vals = rev.column_values(target.position)
    if same_vals[0] == same_vals[1] or rev_vals[0] == rev_vals[1]:
        return None
    if values_sorted(same_vals) and values_sorted(rev_vals):
        return "asc"
    if values_sorted(same_vals, descending=True) and values_sorted(
        rev_vals, descending=True
    ):
        return "desc"
    return None


def _stretch_sum_gap(
    session: ExtractionSession,
    svalues: SValueSource,
    output: OutputColumn,
    overrides: dict[ColumnNode, list],
    pairs: dict[ColumnNode, tuple],
) -> bool:
    """Widen a sum output's row gap so duplication cannot reorder it."""
    for dep in output.function.deps:
        if dep not in pairs:
            continue
        try:
            values = svalues.distinct(dep, 8)
        except SValueError:
            continue
        for low in values:
            for high in reversed(values):
                trial = dict(overrides)
                trial[dep] = [low, high]
                v0 = output.function.evaluate(_row_values(session, trial, 0))
                v1 = output.function.evaluate(_row_values(session, trial, 1))
                if 0 < 2 * v0 < v1:
                    overrides[dep] = [low, high]
                    return True
    return False


def _duplication_table(session: ExtractionSession, row_counts: dict[str, int]) -> str | None:
    for table, count in row_counts.items():
        if count == 2:
            return table
    return None


def _with_duplicated_row(
    builder: DgenBuilder,
    row_counts: dict[str, int],
    overrides: dict[ColumnNode, list],
    table: str,
    which_row: int,
) -> dict[str, list[tuple]]:
    rows = builder.build(row_counts, overrides)
    duplicated = dict(rows)
    duplicated[table] = rows[table] + [rows[table][which_row]]
    return duplicated
