"""Projection extraction (paper §4.5): dependency lists + function identity.

Every output column is treated as an unknown multilinear scalar function of
base columns.  Working on the single-row ``D^1`` (where every aggregate
collapses to its argument and count() to 1):

1. **Dependency list identification** — each mutation unit (a join clique
   moves as one unit to keep the SPJ core satisfied; every other column moves
   alone) is flipped to fresh s-values; output columns that change depend on
   it.  A second, context-jittered attempt guards against coincidental
   cancellations (the paper's ``A = -b/c`` example).
2. **Function identification** — for ``k`` dependency units, the multilinear
   form has ``2^k`` coefficients over the product basis; probe assignments are
   drawn until the basis matrix is invertible and the system is solved
   exactly.  (The paper presents ``k ≤ 2``; this is the general-``k``
   extension its technical report defers.)

Outputs whose value never moves are left *unmapped* here — the aggregation
module later resolves them into ``count(*)`` or a constant projection.
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from repro.core.model import OutputColumn, ScalarFunction
from repro.core.session import ExtractionSession
from repro.obs.provenance import PROBE
from repro.core.svalues import SValueError, SValueSource
from repro.errors import ExtractionError, UnsupportedQueryError
from repro.sgraph.schema_graph import ColumnNode

_MAX_SOLVE_ATTEMPTS = 40


class MutationUnit:
    """A set of columns mutated together: a join clique or a single column."""

    def __init__(self, columns: tuple[ColumnNode, ...]):
        self.columns = columns

    @property
    def representative(self) -> ColumnNode:
        return min(self.columns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<unit {self.representative}>"


def extract_projections(session: ExtractionSession, svalues: SValueSource) -> list[OutputColumn]:
    """Identify ``P̃_E`` (projections-before-aggregation-refinement)."""
    with session.module("projections"):
        baseline = session.run()
        if baseline.row_count != 1:
            raise ExtractionError(
                f"expected a single-row result on D^1, got {baseline.row_count} rows"
            )
        session.baseline_result = baseline
        names = _unique_names(baseline.columns)

        units = _mutation_units(session)
        # Dependency probing mutates disjoint units against the same D^1
        # baseline, so the per-unit checks are independent and fan out across
        # the probe scheduler.  The s-value source is prewarmed first: its
        # caches make the worker-thread lookups read-only (and it is a pure
        # function of the filter set, so prewarming changes no outcome).
        # Function identification below stays sequential — it consumes the
        # session RNG, whose draw order is part of the determinism contract.
        if session.scheduler.parallel:
            _prewarm_svalues(session, svalues, units)
        changed_per_unit = session.scheduler.map(
            units,
            lambda ctx, unit: _dependency_probe(ctx, svalues, unit, baseline),
            label="projections",
        )
        deps_per_output: list[list[MutationUnit]] = [[] for _ in names]
        for unit, changed in zip(units, changed_per_unit):
            for output_index in changed:
                deps_per_output[output_index].append(unit)

        provenance = session.provenance
        outputs: list[OutputColumn] = []
        for position, name in enumerate(names):
            deps = deps_per_output[position]
            before = len(provenance.events)
            if not deps:
                function = None  # unmapped: count(*) or constant, resolved later
            else:
                function = _identify_function(
                    session, svalues, deps, position, baseline
                )
            output = OutputColumn(name=name, position=position, function=function)
            outputs.append(output)
            if provenance.enabled and function is not None:
                seqs = _probe_seqs(provenance, before)
                provenance.refine(
                    "select",
                    output.select_sql(),
                    "projections",
                    detail=(
                        f"{len(deps)} dependency unit(s); function solved "
                        f"with {len(seqs)} probe(s)"
                    ),
                    key=("select", position),
                    claim=False,
                    extra_evidence=seqs,
                )
        session.query.outputs = outputs
        return outputs


def _probe_seqs(provenance, start: int) -> tuple[int, ...]:
    """Sequence numbers of the probes recorded since event index ``start``."""
    return tuple(
        event.seq
        for event in provenance.events[start:]
        if event.kind == PROBE
    )


def _dependency_probe(
    session: ExtractionSession,
    svalues: SValueSource,
    unit: MutationUnit,
    baseline,
) -> set[int]:
    """One unit's dependency check, with its probes attributed per output.

    The refine events accumulate under ``("select", position)`` so the later
    function-identification and aggregation-refinement stages inherit this
    unit's probes into the final select clause's evidence chain.  Runs inside
    a scheduler task: each context's recorder sees exactly this unit's probes.
    """
    provenance = session.provenance
    before = len(provenance.events)
    changed = _unit_affects(session, svalues, unit, baseline)
    if provenance.enabled and changed:
        seqs = _probe_seqs(provenance, before)
        for index in sorted(changed):
            provenance.refine(
                "select",
                f"output #{index}",
                "projections",
                detail=f"mutating {unit.representative} moved output {index}",
                key=("select", index),
                claim=False,
                extra_evidence=seqs,
            )
    return changed


def _unique_names(names: list[str]) -> list[str]:
    seen: dict[str, int] = {}
    result = []
    for raw in names:
        name = "".join(ch if (ch.isalnum() or ch == "_") else "" for ch in raw or "")
        if not name or not (name[0].isalpha() or name[0] == "_"):
            name = f"col_{name}" if name else "column"
        if name in seen:
            seen[name] += 1
            result.append(f"{name}_{seen[name]}")
        else:
            seen[name] = 1
            result.append(name)
    return result


def _mutation_units(session: ExtractionSession) -> list[MutationUnit]:
    units: list[MutationUnit] = []
    clique_members: set[ColumnNode] = set()
    for clique in session.query.join_cliques:
        units.append(MutationUnit(tuple(clique.sorted_columns())))
        clique_members.update(clique.columns)
    for table in session.query.tables:
        for column in session.table_columns(table):
            if column not in clique_members:
                units.append(MutationUnit((column,)))
    return units


def _prewarm_svalues(
    session: ExtractionSession, svalues: SValueSource, units: list[MutationUnit]
) -> None:
    """Populate the s-value caches for every column a parallel dependency
    probe may touch, replicating the exact lookups :func:`_fresh_values` and
    :func:`_jitter_context` will make so those become pure cache hits."""
    columns = {unit.representative for unit in units}
    for table in session.query.tables:
        columns.update(
            column
            for column in session.nonkey_columns(table)
            if session.column_type(column).is_numeric
        )
    for column in sorted(columns):
        if svalues.capacity(column) < 2:
            continue
        try:
            svalues.distinct(column, 6)
        except SValueError:
            svalues.distinct(column, svalues.capacity(column))


def _fresh_values(
    session: ExtractionSession, svalues: SValueSource, unit: MutationUnit, avoid: set
) -> dict[ColumnNode, object] | None:
    """A consistent fresh assignment for the unit, avoiding given values."""
    representative = unit.representative
    try:
        candidates = svalues.distinct(representative, 6)
    except SValueError:
        candidates = svalues.distinct(
            representative, svalues.capacity(representative)
        )
    for value in candidates:
        if value not in avoid:
            return {column: value for column in unit.columns}
    return None


def _run_with(
    session: ExtractionSession, assignment: dict[ColumnNode, object]
):
    by_table: dict[str, dict[str, object]] = {}
    for column, value in assignment.items():
        by_table.setdefault(column.table, {})[column.column] = value
    rows: dict[str, list[tuple]] = {}
    for table, mutations in by_table.items():
        schema = session.silo.schema(table)
        row = list(session.d1[table])
        for name, value in mutations.items():
            row[schema.column_index(name)] = value
        rows[table] = [tuple(row)]
    return session.run_on(rows)


def _unit_affects(
    session: ExtractionSession,
    svalues: SValueSource,
    unit: MutationUnit,
    baseline,
) -> set[int]:
    """Output positions affected by mutating this unit (two-attempt guard)."""
    representative = unit.representative
    if svalues.capacity(representative) < 2:
        return set()  # equality-pinned columns cannot be probed (nor grouped)
    current = session.d1_value(representative)

    changed: set[int] = set()
    # Attempt 1: flip the unit alone.
    assignment = _fresh_values(session, svalues, unit, {current})
    if assignment is not None:
        result = _run_with(session, assignment)
        changed = _diff_outputs(baseline.first_row(), result)
        if changed:
            return changed
        # Attempt 2: flip to yet another value (coincidence guard), with the
        # rest of the row jittered to break multiplicative cancellations.
        jitter = _jitter_context(session, svalues, unit)
        base2 = _run_with(session, jitter)
        assignment2 = _fresh_values(
            session, svalues, unit, {current, next(iter(assignment.values()))}
        )
        if assignment2 is not None and base2.row_count == 1:
            combined = dict(jitter)
            combined.update(assignment2)
            result2 = _run_with(session, combined)
            changed = _diff_outputs(base2.first_row(), result2)
    return changed


def _jitter_context(
    session: ExtractionSession, svalues: SValueSource, unit: MutationUnit
) -> dict[ColumnNode, object]:
    """Fresh s-values for the numeric non-key columns outside the unit."""
    jitter: dict[ColumnNode, object] = {}
    unit_columns = set(unit.columns)
    for table in session.query.tables:
        for column in session.nonkey_columns(table):
            if column in unit_columns:
                continue
            if not session.column_type(column).is_numeric:
                continue
            if svalues.capacity(column) < 2:
                continue
            current = session.d1_value(column)
            fresh = _fresh_values(session, svalues, MutationUnit((column,)), {current})
            if fresh:
                jitter.update(fresh)
    return jitter


def _diff_outputs(baseline_row: tuple, result) -> set[int]:
    if result.row_count != 1:
        return set()  # a broken probe (empty result) proves nothing
    row = result.first_row()
    return {
        i
        for i, (before, after) in enumerate(zip(baseline_row, row))
        if not _values_equal(before, after)
    }


def _values_equal(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, (int, float)):
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)
    return a == b


# --- function identification -------------------------------------------------


def _identify_function(
    session: ExtractionSession,
    svalues: SValueSource,
    deps: list[MutationUnit],
    output_index: int,
    baseline,
) -> ScalarFunction:
    representatives = [unit.representative for unit in deps]
    dep_types = [session.column_type(rep) for rep in representatives]

    if any(t.is_textual or t.is_temporal for t in dep_types):
        if len(deps) > 1:
            raise UnsupportedQueryError(
                "non-numeric columns may appear only in identity projections"
            )
        return _verify_identity(session, svalues, deps[0], output_index, baseline)

    return _solve_multilinear(session, svalues, deps, output_index)


def _verify_identity(
    session: ExtractionSession,
    svalues: SValueSource,
    unit: MutationUnit,
    output_index: int,
    baseline,
) -> ScalarFunction:
    """Confirm a textual/temporal output is a straight column projection."""
    representative = unit.representative
    if baseline.first_row()[output_index] != session.d1_value(representative):
        raise UnsupportedQueryError(
            f"output {output_index} depends on {representative} but is not an "
            "identity projection (non-numeric functions are outside EQC)"
        )
    probe = _fresh_values(session, svalues, unit, {session.d1_value(representative)})
    if probe is not None:
        result = _run_with(session, probe)
        if result.row_count == 1:
            expected = next(iter(probe.values()))
            if result.first_row()[output_index] != expected:
                raise UnsupportedQueryError(
                    f"output {output_index} is a non-identity function of "
                    f"{representative}"
                )
    return ScalarFunction.identity(representative)


def _solve_multilinear(
    session: ExtractionSession,
    svalues: SValueSource,
    deps: list[MutationUnit],
    output_index: int,
) -> ScalarFunction:
    """Solve for the 2^k multilinear coefficients via independent probes."""
    k = len(deps)
    subsets = [
        tuple(sorted(s))
        for r in range(k + 1)
        for s in itertools.combinations(range(k), r)
    ]
    needed = len(subsets)

    value_pools = []
    for unit in deps:
        pool = svalues.distinct(
            unit.representative, min(max(needed + 2, 4), svalues.capacity(unit.representative))
        )
        value_pools.append(pool)

    rows: list[list[float]] = []
    rhs: list[float] = []
    attempts = 0
    while len(rows) < needed and attempts < _MAX_SOLVE_ATTEMPTS:
        attempts += 1
        assignment_values = [session.rng.choice(pool) for pool in value_pools]
        basis_row = [
            float(np.prod([assignment_values[i] for i in subset])) if subset else 1.0
            for subset in subsets
        ]
        candidate = rows + [basis_row]
        if np.linalg.matrix_rank(np.array(candidate)) < len(candidate):
            continue
        assignment: dict[ColumnNode, object] = {}
        for unit, value in zip(deps, assignment_values):
            for column in unit.columns:
                assignment[column] = value
        result = _run_with(session, assignment)
        if result.row_count != 1:
            continue
        output_value = result.first_row()[output_index]
        if not isinstance(output_value, (int, float)):
            raise UnsupportedQueryError(
                f"output {output_index} mixes numeric dependencies with a "
                "non-numeric value"
            )
        rows.append(basis_row)
        rhs.append(float(output_value))

    if len(rows) < needed:
        raise ExtractionError(
            f"could not assemble {needed} independent probes for output "
            f"{output_index} (dependencies: {[u.representative for u in deps]})"
        )

    solution = np.linalg.solve(np.array(rows), np.array(rhs))
    coeffs = {subset: float(c) for subset, c in zip(subsets, solution)}
    representatives = [unit.representative for unit in deps]
    return ScalarFunction.from_solution(representatives, coeffs)
