"""Aggregation identification (paper §5.2).

For each output column ``O = agg(f_o(A_1..A_n))`` a database is generated so
that the SPJ core's invisible intermediate result holds ``k+1`` rows with
``f_o = o_1`` in ``k`` of them and ``f_o = o_2`` in one, all inside a single
group.  ``k`` is chosen so the five candidate aggregates give pairwise
distinct values:

    min = min(o1,o2)   max = max(o1,o2)   sum = k*o1 + o2
    avg = sum/(k+1)    count = k+1

(the paper derives a closed-form forbidden set — Equation 2 — for the same
property; we select the smallest ``k`` by direct distinctness checking, which
is equivalent and also covers the float-precision corner cases).

Special cases:

* dependencies all inside ``G_E`` — the function is constant per group, so
  min/max/avg and a plain projection coincide; identity projections of group
  columns stay native (Figure 1(b)'s canonical form) and other group-only
  functions canonicalise to ``min()``, while sum/count remain detectable;
* unmapped outputs (no dependencies) — a duplicate-row probe separates
  ``count(*)`` from a constant projection.
"""

from __future__ import annotations

import math

from repro.core.dgen import DgenBuilder
from repro.core.model import OutputColumn, ScalarFunction
from repro.core.session import ExtractionSession
from repro.core.svalues import SValueError, SValueSource
from repro.errors import ExtractionError, UnsupportedQueryError
from repro.obs.provenance import PROBE
from repro.sgraph.schema_graph import ColumnNode

_MAX_K = 24


def _close(a, b) -> bool:
    """Value equality tolerant of float accumulation error."""
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)
    return a == b


def _distinct(values) -> bool:
    """True when the candidate aggregate outcomes are pairwise separable."""
    items = list(values)
    for i, a in enumerate(items):
        for b in items[i + 1 :]:
            if _close(a, b):
                return False
            # Require a safety margin so engine-side float rounding cannot
            # blur two expectations into each other.
            if isinstance(a, (int, float)) and isinstance(b, (int, float)):
                if abs(a - b) < 1e-6:
                    return False
    return True


def extract_aggregations(session: ExtractionSession, svalues: SValueSource) -> list[OutputColumn]:
    """Refine ``P̃_E`` into native projections ``P_E`` plus aggregates ``A_E``."""
    with session.module("aggregations"):
        builder = DgenBuilder(session, svalues)
        refined: list[OutputColumn] = []
        for output in session.query.outputs:
            refined.append(_refine_and_record(session, svalues, builder, output))
        session.query.outputs = refined
        return refined


def _refine_and_record(
    session: ExtractionSession,
    svalues: SValueSource,
    builder: DgenBuilder,
    output: OutputColumn,
) -> OutputColumn:
    """Refine one output and record the final select clause's evidence.

    The accept shares ``("select", position)`` with the projection module's
    refine events, so outputs that canonicalise without any probe of their
    own (group-member functions, pure-SPJ projections) still inherit the
    dependency/identification chain that established them.
    """
    provenance = session.provenance
    before = len(provenance.events)
    refined = _refine_output(session, svalues, builder, output)
    if provenance.enabled:
        seqs = tuple(
            event.seq
            for event in provenance.events[before:]
            if event.kind == PROBE
        )
        if refined.count_star:
            shape = "count(*)"
        elif refined.aggregate:
            shape = f"aggregate {refined.aggregate}()"
        elif refined.function is not None and refined.function.is_constant:
            shape = "constant projection"
        else:
            shape = "native projection"
        provenance.accept(
            "select",
            refined.select_sql(),
            "aggregations",
            detail=(
                f"resolved as {shape}"
                + ("" if seqs else " (inherited evidence, no extra probe)")
            ),
            key=("select", output.position),
            claim=False,
            extra_evidence=seqs,
        )
    return refined


def _group_members(session: ExtractionSession) -> set[ColumnNode]:
    """Columns equivalent to some grouping column (clique closure)."""
    members: set[ColumnNode] = set()
    for column in session.query.group_by:
        members.add(column)
        clique = session.query.clique_of(column)
        if clique is not None:
            members.update(clique.columns)
    return members


def _refine_output(
    session: ExtractionSession,
    svalues: SValueSource,
    builder: DgenBuilder,
    output: OutputColumn,
) -> OutputColumn:
    if output.function is None:
        return _resolve_unmapped(session, builder, output)

    if not session.query.is_aggregated:
        return output  # pure SPJ: all outputs are native projections

    group_members = _group_members(session)
    deps = output.function.deps
    free_deps = [d for d in deps if d not in group_members]

    if not free_deps:
        return _refine_group_only(session, svalues, builder, output)

    return _refine_with_free_dep(session, svalues, builder, output, free_deps[0])


# --- unmapped outputs: count(*) vs constant ---------------------------------


def _resolve_unmapped(
    session: ExtractionSession, builder: DgenBuilder, output: OutputColumn
) -> OutputColumn:
    """Duplicate one table's D^1 row; count(*) tracks cardinality, constants don't."""
    baseline_value = session.baseline_result.first_row()[output.position]
    table = session.query.tables[0]
    rows = {name: [row] for name, row in session.d1.items()}
    rows[table] = [session.d1[table]] * 3
    result = session.run_on(rows)

    if result.row_count > 1:
        # No aggregation consolidated the duplicates: a constant projection.
        return OutputColumn(
            name=output.name,
            position=output.position,
            function=ScalarFunction.constant(baseline_value),
        )
    value = result.first_row()[output.position]
    if value == baseline_value:
        return OutputColumn(
            name=output.name,
            position=output.position,
            function=ScalarFunction.constant(baseline_value),
        )
    if _close(value, 3 * baseline_value) and baseline_value == session.probe_multiplier:
        return OutputColumn(
            name=output.name,
            position=output.position,
            function=None,
            aggregate="count",
            count_star=True,
        )
    if _close(value, 3 * baseline_value):
        # sum over an equality-pinned column: canonicalise as value * count(*)
        # is out of scope; report precisely instead of mis-extracting.
        raise UnsupportedQueryError(
            f"output {output.name!r} scales with cardinality but is not count(*)"
        )
    raise UnsupportedQueryError(
        f"cannot resolve unmapped output {output.name!r} (value {baseline_value!r})"
    )


# --- group-only functions ----------------------------------------------------


def _refine_group_only(
    session: ExtractionSession,
    svalues: SValueSource,
    builder: DgenBuilder,
    output: OutputColumn,
) -> OutputColumn:
    """Dependencies all in G_E: distinguish {plain,min,max,avg} / sum / count.

    Within one group the function is constant (``o1 = o2 = c``), so only
    {plain ≡ min ≡ max ≡ avg}, sum = (k+1)·c and count = k+1 are separable —
    the paper's degenerate forbidden set ``k ∉ {0, c-1}``.  The probe chooses
    its own group value ``c`` (not D^1's, which may be a degenerate 0 or 1)
    by overriding the dependency columns with alternative s-values.
    """
    baseline_value = session.baseline_result.first_row()[output.position]
    if not isinstance(baseline_value, (int, float)):
        return output  # textual/temporal: group-only aggregates coincide; native

    choice = _group_only_probe_values(session, svalues, output)
    if choice is None:
        raise ExtractionError(
            f"could not choose a disambiguating (k, c) for group-only output "
            f"{output.name!r}"
        )
    k, c, assignment = choice

    table = output.function.deps[0].table if output.function.deps else session.query.tables[0]
    row_counts = {table: k + 1}
    overrides: dict[ColumnNode, list] = {}
    for column, value in assignment.items():
        count = row_counts.get(column.table, 1)
        overrides[column] = [value] * count
    result = session.run_on(builder.build(row_counts, overrides))
    if result.row_count != 1:
        raise ExtractionError(
            f"group-only probe for {output.name!r} produced {result.row_count} rows"
        )
    value = result.first_row()[output.position]
    if _close(value, c):
        if output.function.is_identity:
            return output  # native projection of a grouping column
        return OutputColumn(
            name=output.name,
            position=output.position,
            function=output.function,
            aggregate="min",  # canonical among min/max/avg (paper §5.2)
        )
    if _close(value, (k + 1) * c):
        return OutputColumn(
            name=output.name,
            position=output.position,
            function=output.function,
            aggregate="sum",
        )
    if _close(value, (k + 1) * session.probe_multiplier):
        return OutputColumn(
            name=output.name,
            position=output.position,
            function=None,
            aggregate="count",
            count_star=True,
        )
    raise UnsupportedQueryError(
        f"output {output.name!r}: unrecognised group-only aggregate "
        f"(probe value {value!r})"
    )


def _group_only_probe_values(
    session: ExtractionSession, svalues: SValueSource, output: OutputColumn
):
    """Pick dependency values and k so {c, (k+1)c, k+1} are pairwise distinct.

    The dependency columns are group columns (or their clique-mates); the
    clique members must share the chosen value, which the caller arranges by
    assigning every dependency column explicitly.
    """
    deps = output.function.deps
    pools = []
    for dep in deps:
        try:
            pools.append(svalues.distinct(dep, min(6, svalues.capacity(dep))))
        except SValueError:
            pools.append([svalues.value(dep)])

    def assignments():
        if not deps:
            yield {}
            return
        # march value combinations diagonally to vary c quickly
        max_len = max(len(pool) for pool in pools)
        for i in range(max_len):
            yield {
                dep: pool[min(i, len(pool) - 1)] for dep, pool in zip(deps, pools)
            }

    for assignment in assignments():
        full_assignment = dict(assignment)
        # clique-mates of each dep must mirror its value
        for dep, value in assignment.items():
            clique = session.query.clique_of(dep)
            if clique is not None:
                for member in clique.columns:
                    full_assignment[member] = value
        c = output.function.evaluate(assignment) if deps else output.function.evaluate({})
        if not isinstance(c, (int, float)):
            continue
        for k in range(1, _MAX_K):
            if _distinct((c, (k + 1) * c, k + 1)):
                return k, c, full_assignment
    return None


# --- general case --------------------------------------------------------------


def _refine_with_free_dep(
    session: ExtractionSession,
    svalues: SValueSource,
    builder: DgenBuilder,
    output: OutputColumn,
    free_dep: ColumnNode,
) -> OutputColumn:
    function = output.function
    values = _argument_values(session, svalues, function, free_dep)
    if values is None:
        raise UnsupportedQueryError(
            f"could not find argument pairs with distinct outputs for "
            f"{output.name!r}"
        )
    si, si_prime, fixed = values
    o1 = function.evaluate({**fixed, free_dep: si})
    o2 = function.evaluate({**fixed, free_dep: si_prime})

    numeric = isinstance(o1, (int, float)) and isinstance(o2, (int, float))
    k = _choose_k(o1, o2) if numeric else 1
    rows = _aggregate_dgen(session, builder, free_dep, si, si_prime, fixed, k)
    result = session.run_on(rows)
    if result.row_count != 1:
        raise ExtractionError(
            f"aggregation probe for {output.name!r} produced {result.row_count} rows"
        )
    value = result.first_row()[output.position]

    if numeric:
        expectations = {
            "min": min(o1, o2),
            "max": max(o1, o2),
            "sum": k * o1 + o2,
            "avg": (k * o1 + o2) / (k + 1),
            "count": (k + 1) * session.probe_multiplier,
        }
    else:
        # Textual/temporal arguments admit only order-based aggregates (and
        # count, whose output would have been unmapped anyway).
        expectations = {
            "min": min(o1, o2),
            "max": max(o1, o2),
            "count": (k + 1) * session.probe_multiplier,
        }
    for name, expected in expectations.items():
        if _close(value, expected):
            if name == "count":
                return OutputColumn(
                    name=output.name,
                    position=output.position,
                    function=None,
                    aggregate="count",
                    count_star=True,
                )
            return OutputColumn(
                name=output.name,
                position=output.position,
                function=function,
                aggregate=name,
            )
    raise UnsupportedQueryError(
        f"output {output.name!r}: probe value {value!r} matches no basic aggregate "
        f"(expected one of {expectations})"
    )


def _argument_values(
    session: ExtractionSession,
    svalues: SValueSource,
    function: ScalarFunction,
    free_dep: ColumnNode,
):
    """Pick (s_i, s_i', fixed others) with o1 != o2 and o1 != 0."""
    fixed: dict[ColumnNode, object] = {}
    for dep in function.deps:
        if dep == free_dep:
            continue
        fixed[dep] = svalues.value(dep)
    try:
        candidates = svalues.distinct(free_dep, min(8, svalues.capacity(free_dep)))
    except SValueError:
        return None
    for i, si in enumerate(candidates):
        o1 = function.evaluate({**fixed, free_dep: si})
        if _close(o1, 0):
            continue
        for si_prime in candidates[i + 1 :]:
            o2 = function.evaluate({**fixed, free_dep: si_prime})
            if not _close(o1, o2):
                return si, si_prime, fixed
    return None


def _choose_k(o1, o2) -> int:
    """Smallest k making the five candidate aggregate values pairwise distinct."""
    for k in range(1, _MAX_K):
        values = (
            min(o1, o2),
            max(o1, o2),
            k * o1 + o2,
            (k * o1 + o2) / (k + 1),
            k + 1,
        )
        if _distinct(values):
            return k
    raise ExtractionError(f"no disambiguating k for o1={o1!r}, o2={o2!r}")


def _aggregate_dgen(
    session: ExtractionSession,
    builder: DgenBuilder,
    free_dep: ColumnNode,
    si,
    si_prime,
    fixed: dict[ColumnNode, object],
    k: int,
) -> dict[str, list[tuple]]:
    """k+1 intermediate rows: f_o = o1 in k rows, o2 in the last (§5.2)."""
    table = free_dep.table
    row_counts = {table: k + 1}
    overrides: dict[ColumnNode, list] = {free_dep: [si] * k + [si_prime]}

    clique = session.query.clique_of(free_dep)
    if clique is not None:
        # Case 2 analogue: clique-mates mirror (s_i, s_i') across their tables.
        for other_table, member in builder.connected_tables(free_dep).items():
            row_counts[other_table] = 2
            overrides[member] = [si, si_prime]
        for member in clique.sorted_columns():
            if member != free_dep and member.table == table:
                overrides[member] = [si] * k + [si_prime]

    for dep, value in fixed.items():
        count = row_counts.get(dep.table, 1)
        overrides[dep] = [value] * count

    return builder.build(row_counts, overrides)
