"""Filter predicate extraction (paper §4.4).

Every non-key column of the query tables is probed on the single-row database
``D^1``:

* **Numeric / date columns** — mutate the column to its domain extremes; the
  populated/empty pattern of the two results selects one of the four cases of
  Table 2, and binary searches recover the precise bounds.  Dates are probed
  on the day axis; fixed-precision decimals on an integer axis scaled by
  ``10^scale`` (equivalent to the paper's two-phase integral+fractional
  search, folded into one).
* **Textual columns** — an empty-string and a single-character probe decide
  existence; the Minimal Qualifying String is recovered by per-character
  replacement; wildcard gaps (runs of non-intrinsic characters, including the
  string boundaries) are sized by deletion/insertion probes that distinguish
  ``_`` (exact length) from ``%`` (variable length) — the reconstruction of
  the technical-report algorithm documented in DESIGN.md §5.
"""

from __future__ import annotations

import datetime

from repro.core.model import Filter, NumericFilter, TextFilter
from repro.core.session import ExtractionSession
from repro.engine.types import (
    DateType,
    NumericType,
    VarcharType,
)
from repro.errors import ExtractionError, UnsupportedQueryError
from repro.sgraph.schema_graph import ColumnNode

_FILLER_ALPHABET = "zqjxkw"


def extract_filters(session: ExtractionSession) -> list[Filter]:
    """Identify ``F_E`` and record it on the session's query.

    Columns are probed independently: every probe mutates only its own
    column's value in ``D^1`` while all other columns keep satisfying their
    own conjunctive predicates, so the populated/empty signal for one column
    is unaffected by any other column's probe.  That independence lets the
    per-column checks fan out across the session's probe scheduler
    (``--jobs``); results come back in column order, so the extracted filter
    list is identical to the sequential schedule's.
    """
    with session.module("filters"):
        columns = [
            column
            for table in session.query.tables
            for column in session.nonkey_columns(table)
        ]
        predicates = session.scheduler.map(
            columns, _check_column, label="filters"
        )
        filters = [p for p in predicates if p is not None]
        session.query.filters = filters
        return filters


def _check_column(session: ExtractionSession, column: ColumnNode) -> Filter | None:
    col_type = session.column_type(column)
    if session.config.extract_null_predicates:
        predicate = _check_with_null_probes(session, column, col_type)
    else:
        predicate = _check_valued(session, column, col_type)
    # Clause evidence: claim every probe this column's check issued (each
    # task's recorder pool holds exactly its own probes, sequentially the
    # pool holds the probes since the previous column's claim).
    provenance = session.provenance
    if provenance.enabled:
        if predicate is not None:
            provenance.accept(
                "filters",
                predicate.to_sql(),
                "filters",
                detail=f"column {column.table}.{column.column}",
                key=("filters", (column.table, column.column)),
            )
        else:
            provenance.reject(
                "filters",
                f"{column.table}.{column.column}",
                "filters",
                detail="no predicate on this column",
            )
    return predicate


def _check_valued(session: ExtractionSession, column: ColumnNode, col_type) -> Filter | None:
    if col_type.is_numeric or col_type.is_temporal:
        return _check_numeric(session, column)
    if col_type.is_textual:
        return _check_textual(session, column)
    raise ExtractionError(f"unsupported column type for {column}: {col_type.name}")


def _check_with_null_probes(
    session: ExtractionSession, column: ColumnNode, col_type
) -> Filter | None:
    """NULL-aware filter detection (technical-report reconstruction).

    A NULL probe (set the ``D^1`` value to NULL) is combined with the
    standard valued probes:

    * anchor value is NULL → only ``IS NULL`` or no predicate are possible;
      a valued probe separates them;
    * NULL probe fails + valued extraction finds nothing → ``IS NOT NULL``;
    * NULL probe passes + a valued predicate exists → ``pred OR IS NULL``,
      a disjunction outside the supported class (reported as such).

    Ambiguity limit: when the column feeds *every* output, a NULL anchor
    nullifies the whole result row and the probe misreads it as emptiness —
    hence this path is opt-in (see DESIGN.md §5).
    """
    from repro.core.model import NullFilter

    null_populated = not session.run_on_d1_mutation(
        column.table, {column.column: None}
    ).is_effectively_empty

    if session.d1_value(column) is None:
        probe_value = _representative_value(session, column, col_type)
        value_populated = not session.run_on_d1_mutation(
            column.table, {column.column: probe_value}
        ).is_effectively_empty
        if value_populated:
            return None  # nullable column without a predicate
        return NullFilter(column=column, negated=False)

    valued = _check_valued(session, column, col_type)
    if valued is not None and null_populated:
        raise UnsupportedQueryError(
            f"column {column} combines a value predicate with NULL "
            "acceptance (pred OR IS NULL): outside the supported class"
        )
    if valued is None and not null_populated:
        return NullFilter(column=column, negated=True)
    return valued


def _representative_value(session: ExtractionSession, column: ColumnNode, col_type):
    if col_type.is_textual:
        return "a"
    axis = _Axis(session, column)
    return axis.from_axis(axis.lo)


# --- numeric / date -------------------------------------------------------


class _Axis:
    """Maps a column's values onto an integer probe axis and back."""

    def __init__(self, session: ExtractionSession, column: ColumnNode):
        self.col_type = session.column_type(column)
        domain = session.column_domain(column)
        if isinstance(self.col_type, DateType):
            self.lo = domain.lo.toordinal()
            self.hi = domain.hi.toordinal()
        elif isinstance(self.col_type, NumericType):
            self.scale = 10**self.col_type.scale
            self.lo = round(domain.lo * self.scale)
            self.hi = round(domain.hi * self.scale)
        else:
            self.lo = domain.lo
            self.hi = domain.hi

    def to_axis(self, value) -> int:
        if isinstance(self.col_type, DateType):
            return value.toordinal()
        if isinstance(self.col_type, NumericType):
            return round(value * self.scale)
        return value

    def from_axis(self, axis: int):
        if isinstance(self.col_type, DateType):
            return datetime.date.fromordinal(axis)
        if isinstance(self.col_type, NumericType):
            return axis / self.scale
        return axis


def _check_numeric(session: ExtractionSession, column: ColumnNode) -> NumericFilter | None:
    axis = _Axis(session, column)
    populated_min = _numeric_probe(session, column, axis, axis.lo)
    populated_max = _numeric_probe(session, column, axis, axis.hi)
    if populated_min and populated_max:
        return None  # Table 2, Case 1

    anchor = axis.to_axis(session.d1_value(column))
    lo_axis, hi_axis = axis.lo, axis.hi
    if not populated_min:  # Cases 2 and 4: find l over (i_min, a]
        lo_axis = _search_lower_bound(session, column, axis, anchor)
    if not populated_max:  # Cases 3 and 4: find r over [a, i_max)
        hi_axis = _search_upper_bound(session, column, axis, anchor)
    return NumericFilter(
        column=column,
        lo=axis.from_axis(lo_axis),
        hi=axis.from_axis(hi_axis),
        domain_lo=axis.from_axis(axis.lo),
        domain_hi=axis.from_axis(axis.hi),
    )


def _numeric_probe(
    session: ExtractionSession, column: ColumnNode, axis: _Axis, axis_value: int
) -> bool:
    result = session.run_on_d1_mutation(
        column.table, {column.column: axis.from_axis(axis_value)}
    )
    return not result.is_effectively_empty


def _search_lower_bound(
    session: ExtractionSession, column: ColumnNode, axis: _Axis, anchor: int
) -> int:
    """Smallest axis value whose probe is populated; probe(anchor) is True."""
    lo, hi = axis.lo + 1, anchor
    while lo < hi:
        mid = (lo + hi) // 2
        if _numeric_probe(session, column, axis, mid):
            hi = mid
        else:
            lo = mid + 1
    return lo


def _search_upper_bound(
    session: ExtractionSession, column: ColumnNode, axis: _Axis, anchor: int
) -> int:
    """Largest axis value whose probe is populated; probe(anchor) is True."""
    lo, hi = anchor, axis.hi - 1
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if _numeric_probe(session, column, axis, mid):
            lo = mid
        else:
            hi = mid - 1
    return lo


# --- textual ---------------------------------------------------------------


def _check_textual(session: ExtractionSession, column: ColumnNode) -> TextFilter | None:
    if _text_probe(session, column, "") and _text_probe(session, column, "a"):
        # Populated in both extremes occurs only for the vacuous `like '%'`.
        return None

    rep = session.d1_value(column)
    if not isinstance(rep, str):
        raise ExtractionError(f"expected string value in D^1 for {column}")

    # A representative string can satisfy the pattern redundantly (e.g. two
    # occurrences of the MQS under a '%...%' filter), in which case no single
    # character is intrinsic.  Minimize the representative first so the MQS
    # appears exactly once.
    rep = _minimize_representative(session, column, rep)

    intrinsic = _intrinsic_mask(session, column, rep)
    pattern = _build_pattern(session, column, rep, intrinsic)
    return TextFilter(column=column, pattern=pattern)


def _minimize_representative(
    session: ExtractionSession, column: ColumnNode, rep: str
) -> str:
    """Shortest substring-deleted variant of ``rep`` that still qualifies.

    ddmin-style character-chunk deletion: each removal is kept only if the
    application's result stays populated, converging to a 1-minimal
    qualifying string (every remaining character is load-bearing for some
    wildcard gap or MQS position).
    """
    current = rep
    granularity = 2
    while len(current) > 1:
        chunk = max(1, (len(current) + granularity - 1) // granularity)
        reduced = False
        start = 0
        while start < len(current):
            candidate = current[:start] + current[start + chunk :]
            if _text_probe(session, column, candidate):
                current = candidate
                granularity = max(2, granularity - 1)
                reduced = True
                break
            start += chunk
        if not reduced:
            if chunk == 1:
                break
            granularity = min(len(current), granularity * 2)
    if current != rep:
        session.update_d1(column.table, {column.column: current})
        session.provenance.mutation(
            "filters",
            f"{column.table}.{column.column}",
            detail=f"representative minimized to {len(current)} chars",
        )
    return current


def _text_probe(session: ExtractionSession, column: ColumnNode, value: str) -> bool:
    max_length = _max_length(session, column)
    if len(value) > max_length:
        return False  # unrepresentable strings trivially fail the filter
    result = session.run_on_d1_mutation(column.table, {column.column: value})
    return not result.is_effectively_empty


def _max_length(session: ExtractionSession, column: ColumnNode) -> int:
    col_type = session.column_type(column)
    if isinstance(col_type, VarcharType):
        return col_type.max_length
    return 10**6


def _intrinsic_mask(
    session: ExtractionSession, column: ColumnNode, rep: str
) -> list[bool]:
    """True at positions whose character belongs to the MQS."""
    mask = []
    for i, ch in enumerate(rep):
        substitute = _different_char(ch)
        candidate = rep[:i] + substitute + rep[i + 1 :]
        mask.append(not _text_probe(session, column, candidate))
    return mask


def _different_char(ch: str) -> str:
    for option in _FILLER_ALPHABET:
        if option != ch:
            return option
    return "a"


def _build_pattern(
    session: ExtractionSession, column: ColumnNode, rep: str, intrinsic: list[bool]
) -> str:
    """Reassemble the LIKE pattern from the MQS and per-gap length probes.

    The representative string decomposes into intrinsic characters separated
    by *gaps* of wildcard-matched characters (gaps also exist at the string
    boundaries, possibly empty).  For each gap we probe which filler lengths
    keep the result populated: an exact single length ``m`` means ``_ * m``;
    a range means ``_ * m`` followed by ``%``.
    """
    mqs_chars = [ch for ch, keep in zip(rep, intrinsic) if keep]
    filler = _gap_filler(mqs_chars)

    # Split rep into alternating gap/literal segments.
    gap_lengths: list[int] = []
    literals: list[str] = []
    current_gap = 0
    current_literal: list[str] = []
    for ch, keep in zip(rep, intrinsic):
        if keep:
            if current_literal:
                current_literal.append(ch)
            else:
                gap_lengths.append(current_gap)
                current_gap = 0
                current_literal = [ch]
        else:
            if current_literal:
                literals.append("".join(current_literal))
                current_literal = []
            current_gap += 1
    if current_literal:
        literals.append("".join(current_literal))
    gap_lengths.append(current_gap)
    # Now: len(gap_lengths) == len(literals) + 1, alternating gap, lit, gap, ...

    pattern_parts: list[str] = []
    for index, gap in enumerate(gap_lengths):
        min_len, has_percent = _probe_gap(
            session, column, literals, gap_lengths, index, filler
        )
        pattern_parts.append("_" * min_len + ("%" if has_percent else ""))
        if index < len(literals):
            pattern_parts.append(literals[index])
    return "".join(pattern_parts)


def _gap_filler(mqs_chars: list[str]) -> str:
    used = set(mqs_chars)
    for option in _FILLER_ALPHABET:
        if option not in used:
            return option
    raise ExtractionError("could not choose a filler character for LIKE probing")


def _assemble_candidate(
    literals: list[str], gap_lengths: list[int], index: int, length: int, filler: str
) -> str:
    parts: list[str] = []
    for i, gap in enumerate(gap_lengths):
        size = length if i == index else gap
        parts.append(filler * size)
        if i < len(literals):
            parts.append(literals[i])
    return "".join(parts)


def _probe_gap(
    session: ExtractionSession,
    column: ColumnNode,
    literals: list[str],
    gap_lengths: list[int],
    index: int,
    filler: str,
) -> tuple[int, bool]:
    """Determine (min length, %-present) for one wildcard gap."""
    gap = gap_lengths[index]
    populated_lengths: list[int] = []
    for length in range(0, gap + 2):
        candidate = _assemble_candidate(literals, gap_lengths, index, length, filler)
        if _text_probe(session, column, candidate):
            populated_lengths.append(length)
    if not populated_lengths:
        raise ExtractionError(
            f"LIKE gap probing failed for {column}: no filler length qualifies"
        )
    min_len = populated_lengths[0]
    has_percent = len(populated_lengths) > 1
    return min_len, has_percent
