"""UNMASQUE: the hidden-query extraction pipeline."""

from repro.core.config import ExtractionConfig
from repro.core.model import ExtractedQuery
from repro.core.pipeline import UnmasqueExtractor

__all__ = ["ExtractedQuery", "ExtractionConfig", "UnmasqueExtractor"]
