"""UNMASQUE: the hidden-query extraction pipeline.

Exports are resolved lazily (PEP 562): submodules like
:mod:`repro.core.model` are imported by :mod:`repro.resilience` while this
package itself is still initializing, and an eager ``pipeline`` import here
would close that cycle on a half-initialized module.
"""

__all__ = ["ExtractedQuery", "ExtractionConfig", "UnmasqueExtractor"]

_EXPORTS = {
    "ExtractionConfig": ("repro.core.config", "ExtractionConfig"),
    "ExtractedQuery": ("repro.core.model", "ExtractedQuery"),
    "UnmasqueExtractor": ("repro.core.pipeline", "UnmasqueExtractor"),
}


def __getattr__(name: str):
    try:
        module_name, attribute = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attribute)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
