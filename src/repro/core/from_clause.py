"""From-clause identification (paper §4.1).

For each base table ``t`` of the database: temporarily rename it, run the
application, and watch for an immediate "relation does not exist" error — if
one surfaces, ``t`` is referenced by the hidden query.  Executions that do not
error are cut short by a small timeout so irrelevant tables cost almost
nothing, which is what keeps the schema-scaling experiment (§6.2, +1000
tables) below ten seconds.

For imperative applications, whose host language may swallow errors, an
alternative *trace* strategy observes the DB-side access log instead (the
engine-side analogue of the technical report's instrumentation approach).
"""

from __future__ import annotations

from repro.core.session import ExtractionSession
from repro.errors import (
    ExecutableTimeoutError,
    ExtractionError,
    UndefinedTableError,
)

_PROBE_NAME = "unmasque_probe_temp"


def extract_tables(session: ExtractionSession) -> list[str]:
    """Identify ``T_E`` and record it on the session's query."""
    with session.module("from_clause"):
        strategy = session.config.from_clause_strategy
        if strategy == "rename":
            tables = _extract_by_rename(session)
        elif strategy == "trace":
            tables = _extract_by_trace(session)
        else:
            raise ExtractionError(f"unknown from-clause strategy {strategy!r}")
        if not tables:
            raise ExtractionError("no tables identified — application may not query this database")
        session.query.tables = tables
        return tables


def _extract_by_rename(session: ExtractionSession) -> list[str]:
    tables: list[str] = []
    timeout = session.config.from_clause_timeout
    provenance = session.provenance
    for name in list(session.silo.table_names):
        lowered = name.lower()
        session.silo.rename_table(lowered, _PROBE_NAME)
        referenced = False
        try:
            session.run(timeout=timeout)
        except UndefinedTableError:
            tables.append(lowered)
            referenced = True
        except ExecutableTimeoutError:
            pass  # ran past the deadline without erroring: table not referenced
        finally:
            session.silo.rename_table(_PROBE_NAME, lowered)
        if provenance.enabled:
            if referenced:
                provenance.accept(
                    "from",
                    lowered,
                    "from_clause",
                    detail="rename probe raised UndefinedTableError",
                )
            else:
                provenance.reject(
                    "from",
                    lowered,
                    "from_clause",
                    detail="rename probe ran without referencing the table",
                )
    return sorted(tables)


def _extract_by_trace(session: ExtractionSession) -> list[str]:
    session.silo.access_log.clear()
    session.silo.trace_access = True
    try:
        session.run()
    finally:
        session.silo.trace_access = False
    tables = sorted(set(session.silo.access_log))
    provenance = session.provenance
    if provenance.enabled:
        for table in tables:
            provenance.accept(
                "from",
                table,
                "from_clause",
                detail="table appeared in the traced access log",
                claim=False,
                include_module_probes=True,
            )
    return tables
