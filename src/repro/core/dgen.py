"""Synthetic database construction (the ``D_gen`` of the Generation Pipeline).

All generation-pipeline modules (group by, aggregation, order by, limit) share
this builder: it materializes per-table row sets where

* join-clique columns default to the constant ``1`` in every row (keeping the
  SPJ core's joins satisfied — keys carry no filters in EQC);
* filtered columns default to a fixed s-value;
* everything else defaults to a fixed s-value;
* callers override any column with an explicit per-row value list, which is
  how the calibrated "invisible intermediate results" of §5 are arranged.
"""

from __future__ import annotations

from repro.core.session import ExtractionSession
from repro.core.svalues import SValueSource
from repro.sgraph.schema_graph import ColumnNode


class DgenBuilder:
    """Builds transient database states for generation-pipeline probes."""

    def __init__(self, session: ExtractionSession, svalues: SValueSource):
        self._session = session
        self._svalues = svalues

    def clique_columns(self) -> set[ColumnNode]:
        columns: set[ColumnNode] = set()
        for clique in self._session.query.join_cliques:
            columns.update(clique.columns)
        return columns

    def default_value(self, column: ColumnNode):
        if column in self.clique_columns():
            return 1
        return self._svalues.value(column)

    def build(
        self,
        row_counts: dict[str, int],
        overrides: dict[ColumnNode, list] | None = None,
    ) -> dict[str, list[tuple]]:
        """Materialize rows for every query table.

        ``row_counts`` maps table name → row count (tables omitted default to
        one row).  ``overrides`` maps a column to its explicit per-row values;
        the list length must equal the table's row count.
        """
        overrides = overrides or {}
        rows_by_table: dict[str, list[tuple]] = {}
        for table in self._session.query.tables:
            count = row_counts.get(table, 1)
            schema = self._session.silo.schema(table)
            columns = [ColumnNode(table, col.name.lower()) for col in schema.columns]
            per_column: list[list] = []
            for column in columns:
                if column in overrides:
                    values = list(overrides[column])
                    if len(values) != count:
                        raise ValueError(
                            f"override for {column} has {len(values)} values, "
                            f"table {table} has {count} rows"
                        )
                else:
                    values = [self.default_value(column)] * count
                per_column.append(values)
            rows_by_table[table] = [
                tuple(per_column[c][r] for c in range(len(columns)))
                for r in range(count)
            ]
        return rows_by_table

    def connected_tables(self, column: ColumnNode) -> dict[str, ColumnNode]:
        """Tables holding a clique-mate of ``column`` (Case 2 of §5.1).

        Returns ``{table: clique column in that table}`` for every *other*
        table reachable from ``column`` through its join clique.
        """
        clique = self._session.query.clique_of(column)
        if clique is None:
            return {}
        connected: dict[str, ColumnNode] = {}
        for member in clique.sorted_columns():
            if member.table != column.table and member.table not in connected:
                connected[member.table] = member
        return connected

    def run(self, rows_by_table: dict[str, list[tuple]]):
        return self._session.run_on(rows_by_table)
