"""Assembler: render an :class:`ExtractedQuery` as canonical SQL (paper §3.2).

The output parses and executes on the engine, so the checker can run the
extracted query side-by-side with the hidden application.
"""

from __future__ import annotations

from repro.core.model import ExtractedQuery


def assemble_sql(query: ExtractedQuery) -> str:
    """Render the canonical SQL text of the extraction."""
    select_list = ", ".join(
        output.select_sql() for output in sorted(query.outputs, key=lambda o: o.position)
    )
    parts = [f"select {select_list}"]
    parts.append("from " + ", ".join(sorted(query.tables)))

    where_terms: list[str] = []
    for clique in query.join_cliques:
        where_terms.extend(clique.predicates())
    for predicate in query.filters:
        where_terms.append(predicate.to_sql())
    if where_terms:
        parts.append("where " + " and ".join(where_terms))

    if query.group_by:
        parts.append(
            "group by " + ", ".join(f"{c.table}.{c.column}" for c in query.group_by)
        )

    if query.having:
        parts.append("having " + " and ".join(h.to_sql() for h in query.having))

    if query.order_by:
        parts.append("order by " + ", ".join(o.to_sql() for o in query.order_by))

    if query.limit is not None:
        parts.append(f"limit {query.limit}")

    return " ".join(parts)
