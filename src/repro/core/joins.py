"""Equi-join predicate extraction (paper §4.3, Algorithm 1).

Starting from the candidate join graph ``CJG_E`` — the transitive-closure
cliques of the schema graph induced on the query tables, each reduced to an
elementary cycle — every cycle's presence is tested by the Cut/Negate probe:

* *Cut* removes a pair of edges, splitting the cycle into two arcs;
* *Negate* flips the sign of one arc's column values in ``D^1``;
* an **empty** result implies at least one removed edge is a real query join
  (so the pair is restored); a **populated** result proves both removed edges
  absent, and the two arcs re-enter the candidate pool as smaller cycles.

A cycle that survives every pair is wholly present and becomes a join clique
of ``J_E``.  Termination: each iteration either removes a cycle or replaces it
with strictly smaller ones.
"""

from __future__ import annotations

from repro.core.model import JoinClique
from repro.core.session import ExtractionSession
from repro.errors import ExtractionError
from repro.sgraph.schema_graph import ColumnNode, Cycle


def extract_joins(session: ExtractionSession) -> list[JoinClique]:
    """Identify ``J_E`` as a list of join cliques and record it."""
    with session.module("joins"):
        candidates = session.schema_graph.candidate_cycles(set(session.query.tables))
        _guard_nonzero_keys(session, candidates)
        cliques: list[JoinClique] = []
        while candidates:
            cycle = candidates.pop(0)
            if cycle.is_single_edge:
                v1, _ = cycle.nodes
                if _negated_run(session, {v1}).is_effectively_empty:
                    clique = JoinClique(frozenset(cycle.nodes))
                    cliques.append(clique)
                    _record_clique(
                        session, clique, "negate probe emptied the result"
                    )
                elif session.provenance.enabled:
                    session.provenance.reject(
                        "joins",
                        "; ".join(
                            JoinClique(frozenset(cycle.nodes)).predicates()
                        ),
                        "joins",
                        detail="negate probe stayed populated: edge absent",
                    )
                continue
            split = _try_split(session, cycle)
            if split is None:
                clique = JoinClique(frozenset(cycle.nodes))
                cliques.append(clique)
                _record_clique(
                    session, clique, "cycle survived every Cut/Negate pair"
                )
            else:
                candidates.extend(split)
        session.query.join_cliques = sorted(
            cliques, key=lambda c: c.representative()
        )
        return session.query.join_cliques


def _record_clique(
    session: ExtractionSession, clique: JoinClique, detail: str
) -> None:
    """One accept per rendered predicate; the clique's probes are claimed by
    the first event and shared with the rest through the ``(clause, key)``
    accumulator, so every predicate of a clique cites the same chain."""
    provenance = session.provenance
    if not provenance.enabled:
        return
    key = ("clique", clique.representative())
    for index, predicate in enumerate(clique.predicates()):
        provenance.accept(
            "joins",
            predicate,
            "joins",
            detail=detail,
            claim=index == 0,
            key=key,
        )


def _try_split(session: ExtractionSession, cycle: Cycle) -> list[Cycle] | None:
    """Find a cuttable edge pair; None means the cycle is wholly present."""
    for e1, e2 in cycle.edge_pairs():
        arc1, arc2 = cycle.cut(e1, e2)
        if _negated_run(session, set(arc1)).is_effectively_empty:
            continue  # some removed edge is a real join: restore and try on
        fresh = [c for c in (Cycle.from_arc(arc1), Cycle.from_arc(arc2)) if c]
        return fresh
    return None


def _negated_run(session: ExtractionSession, columns: set[ColumnNode]):
    """Run the application with the given columns sign-flipped.

    Negation applies to every row of the silo's current minimal database —
    a single row per table on ``D^1``, possibly several under the HAVING
    pipeline's multi-row ``D_min``; either way, flipping a whole column
    preserves intra-group joins and breaks cross-group ones.
    """
    by_table: dict[str, set[str]] = {}
    for column in columns:
        by_table.setdefault(column.table, set()).add(column.column)
    rows: dict[str, list[tuple]] = {}
    for table, negated in by_table.items():
        schema = session.silo.schema(table)
        indexes = [schema.column_index(name) for name in negated]
        mutated = []
        for row in session.silo.rows(table):
            new_row = list(row)
            for index in indexes:
                new_row[index] = -new_row[index]
            mutated.append(tuple(new_row))
        rows[table] = mutated
    return session.run_on(rows)


def _guard_nonzero_keys(session: ExtractionSession, candidates: list[Cycle]) -> None:
    """Negation is a no-op on zero — reject degenerate key values early."""
    for cycle in candidates:
        for node in cycle.nodes:
            schema = session.silo.schema(node.table)
            index = schema.column_index(node.column)
            for row in session.silo.rows(node.table):
                if row[index] == 0:
                    raise ExtractionError(
                        f"key column {node} holds 0 in the minimal database; the "
                        "Negate probe requires non-zero (the paper assumes "
                        "positive integer keys)"
                    )
