"""Group-by extraction (paper §5.1).

For each candidate attribute a tiny synthetic database is generated whose
(invisible) intermediate SPJ result holds exactly three rows that agree on
every column except the attribute under test, which carries two distinct
values split 2/1.  A final result of two rows then proves the attribute is a
grouping column.

* Case 1 — attribute outside the join graph: its table gets three rows with
  values ``(p, p, q)``; every other table one row.
* Case 2 — attribute inside a join clique: its table gets three rows with key
  values ``(1, 1, 2)``; each table holding a clique-mate gets two rows keyed
  ``(1, 2)``; the rest one row.

Columns pinned by equality filters are skipped (grouping on them is
superfluous), and one clique member stands for the whole clique (its members
are interchangeable under the equi-join).  If no grouping column surfaces, a
two-row all-distinct database distinguishes an ungrouped aggregation (one
result row) from a plain SPJ query (two rows).
"""

from __future__ import annotations

from repro.core.dgen import DgenBuilder
from repro.core.session import ExtractionSession
from repro.core.svalues import SValueError, SValueSource
from repro.sgraph.schema_graph import ColumnNode


def extract_group_by(session: ExtractionSession, svalues: SValueSource) -> list[ColumnNode]:
    """Identify ``G_E`` and the ungrouped-aggregation flag."""
    with session.module("group_by"):
        builder = DgenBuilder(session, svalues)
        tested_cliques: set = set()

        # Each candidate's probe database is a pure function of the schema,
        # the join cliques, and the (cached) s-values, and its two-row/one-row
        # outcome decides membership for that candidate alone — so the probe
        # databases are materialized up front in discovery order and the runs
        # fan out across the probe scheduler.
        probes: list[tuple[ColumnNode, dict[str, list[tuple]]]] = []
        for table in session.query.tables:
            for column in session.table_columns(table):
                clique = session.query.clique_of(column)
                if clique is not None:
                    if clique in tested_cliques:
                        continue
                    tested_cliques.add(clique)
                    probes.append(_clique_probe(builder, clique))
                    continue
                if svalues.is_equality_constrained(column):
                    continue  # superfluous in G_E
                probe = _case1_probe(svalues, builder, column)
                if probe is not None:
                    probes.append(probe)

        row_counts = session.scheduler.map(
            probes, _membership_probe, label="group_by"
        )
        group_by = [
            column
            for (column, _), count in zip(probes, row_counts)
            if count == 2
        ]

        session.query.group_by = sorted(group_by)
        if not group_by:
            session.query.ungrouped_aggregation = _is_ungrouped_aggregation(
                session, svalues, builder
            )
            if session.provenance.enabled:
                session.provenance.observation(
                    "group_by",
                    detail=(
                        "two-row all-distinct probe: "
                        + (
                            "one result row — ungrouped aggregation"
                            if session.query.ungrouped_aggregation
                            else "two result rows — plain SPJ query"
                        )
                    ),
                )
        return session.query.group_by


def _membership_probe(session: ExtractionSession, probe) -> int:
    """One candidate's 2/1-split probe, with its accept/reject evidence.

    The decision is made (and recorded) inside the task so each scheduler
    context's recorder claims exactly its own probe — sequentially, the
    session recorder behaves identically.
    """
    column, rows = probe
    count = session.run_on(rows).row_count
    provenance = session.provenance
    if provenance.enabled:
        target = f"{column.table}.{column.column}"
        if count == 2:
            provenance.accept(
                "group_by",
                target,
                "group_by",
                detail="2/1-split probe returned two result rows",
            )
        else:
            provenance.reject(
                "group_by",
                target,
                "group_by",
                detail=f"2/1-split probe returned {count} result row(s)",
            )
    return count


def _case1_probe(
    svalues: SValueSource, builder: DgenBuilder, column: ColumnNode
) -> tuple[ColumnNode, dict[str, list[tuple]]] | None:
    """Case 1 probe database, or None for an effectively pinned column."""
    try:
        p, q = svalues.pair(column)
    except SValueError:
        return None  # effectively equality-pinned: superfluous in G_E
    rows = builder.build(
        row_counts={column.table: 3},
        overrides={column: [p, p, q]},
    )
    return column, rows


def _clique_probe(
    builder: DgenBuilder, clique
) -> tuple[ColumnNode, dict[str, list[tuple]]]:
    """Case 2 probe database for the clique's representative."""
    column = clique.representative()
    overrides: dict[ColumnNode, list] = {column: [1, 1, 2]}
    row_counts: dict[str, int] = {column.table: 3}
    for table, member in builder.connected_tables(column).items():
        row_counts[table] = 2
        overrides[member] = [1, 2]
    # Clique-mates sharing the probe table (if any) must mirror the values.
    for member in clique.sorted_columns():
        if member != column and member.table == column.table:
            overrides[member] = [1, 1, 2]
    return column, builder.build(row_counts, overrides)


def _is_ungrouped_aggregation(
    session: ExtractionSession, svalues: SValueSource, builder: DgenBuilder
) -> bool:
    """Two-row probe: one result row ⇒ aggregation without grouping."""
    overrides: dict[ColumnNode, list] = {}
    row_counts = {table: 2 for table in session.query.tables}
    for clique in session.query.join_cliques:
        for member in clique.sorted_columns():
            overrides[member] = [1, 2]
    for table in session.query.tables:
        for column in session.table_columns(table):
            if column in overrides:
                continue
            try:
                p, q = svalues.pair(column)
                overrides[column] = [p, q]
            except SValueError:
                overrides[column] = [svalues.value(column)] * 2
    result = builder.run(builder.build(row_counts, overrides))
    return result.row_count == 1
