"""Out-of-class (non-EQC) detection: pre/post-flight probes.

UNMASQUE is only sound for hidden queries inside the Extractable Query Class
(paper §3, §8): single-block conjunctive SPJGA queries with equi-joins.
Outside that class the pipeline does not fail loudly — it converges on a
*plausible-but-wrong* SQL string.  This module turns that silent failure mode
into a structured verdict:

* **preflight** (right after setup, before the expensive modules) runs cheap
  sentinel probes whose outcome is fully determined for every EQC query —
  the empty-database sentinel (an EQC query over an empty instance must
  produce an empty/degenerate result) and the subset-monotonicity sentinel
  (conjunctive queries are monotone: shrinking the instance can never grow
  the result);
* **postflight** (after the checker) cross-validates the *extracted* query —
  non-equi-join probes set extracted join-clique columns to unequal values
  and flag the query if the application still returns rows, and a checker
  mismatch is folded in as the strongest signal of all.

Each firing probe yields an :class:`EqcSignal` with a severity and the
clauses it implicates; :func:`build_report` aggregates them into an
:class:`EqcReport` with a per-clause confidence vector and an overall
``in_class`` / ``out_of_class`` verdict.
"""

from __future__ import annotations

import datetime
import logging
from dataclasses import dataclass, field
from typing import Optional

from repro.core.session import ExtractionSession

logger = logging.getLogger("repro.core.eqc_guard")

#: clause keys of the per-clause confidence vector, in report order
CLAUSES = (
    "from",
    "joins",
    "filters",
    "projections",
    "group_by",
    "having",
    "order_by",
    "limit",
)

#: a signal at or above this severity flips the verdict to ``out_of_class``
OUT_OF_CLASS_THRESHOLD = 0.8


@dataclass(frozen=True)
class EqcSignal:
    """One probe that fired, with the clauses it casts doubt on."""

    probe: str
    severity: float  # 0..1, probability-like weight of out-of-class evidence
    clauses: tuple[str, ...]
    detail: str

    def to_dict(self) -> dict:
        return {
            "probe": self.probe,
            "severity": self.severity,
            "clauses": list(self.clauses),
            "detail": self.detail,
        }


@dataclass
class EqcReport:
    """Aggregated out-of-class evidence for one extraction."""

    verdict: str  # "in_class" | "out_of_class"
    signals: list[EqcSignal] = field(default_factory=list)
    #: clause -> confidence in [0, 1] that the clause is correctly extracted
    clause_confidence: dict[str, float] = field(default_factory=dict)

    @property
    def out_of_class(self) -> bool:
        return self.verdict == "out_of_class"

    def to_dict(self) -> dict:
        return {
            "verdict": self.verdict,
            "signals": [s.to_dict() for s in self.signals],
            "clause_confidence": {
                clause: round(conf, 4)
                for clause, conf in self.clause_confidence.items()
            },
        }

    def describe(self) -> str:
        lines = [f"EQC verdict       : {self.verdict}"]
        for clause in CLAUSES:
            conf = self.clause_confidence.get(clause, 1.0)
            lines.append(f"  {clause:<16}: confidence {conf:.2f}")
        for signal in self.signals:
            lines.append(
                f"  signal {signal.probe} (severity {signal.severity:.2f}, "
                f"clauses {', '.join(signal.clauses)}): {signal.detail}"
            )
        return "\n".join(lines)


def build_report(
    signals: list[EqcSignal],
    extra: Optional[EqcSignal] = None,
) -> EqcReport:
    """Fold signals into a verdict and per-clause confidence vector.

    Confidence per clause is the product of ``1 - severity`` over the
    signals implicating it (independent-evidence approximation).
    """
    all_signals = list(signals)
    if extra is not None:
        all_signals.append(extra)
    confidence = {clause: 1.0 for clause in CLAUSES}
    for signal in all_signals:
        for clause in signal.clauses:
            if clause in confidence:
                confidence[clause] *= 1.0 - signal.severity
    verdict = (
        "out_of_class"
        if any(s.severity >= OUT_OF_CLASS_THRESHOLD for s in all_signals)
        else "in_class"
    )
    return EqcReport(
        verdict=verdict, signals=all_signals, clause_confidence=confidence
    )


# -- preflight sentinels -----------------------------------------------------


def preflight(session: ExtractionSession) -> list[EqcSignal]:
    """Cheap sentinels run before the expensive modules (2 invocations)."""
    signals = []
    signal = _empty_database_sentinel(session)
    if signal is not None:
        signals.append(signal)
    signal = _monotonicity_sentinel(session)
    if signal is not None:
        signals.append(signal)
    return signals


def _empty_database_sentinel(session: ExtractionSession) -> Optional[EqcSignal]:
    """An EQC query over an empty instance yields an empty/degenerate result.

    A populated result over zero input rows means the query manufactures
    rows from somewhere the pipeline cannot see — constant subqueries,
    scalar subselects, UNION branches with literals.  All-NULL/zero rows
    are tolerated: ungrouped aggregation legitimately emits one degenerate
    row on empty input.
    """
    result = session.run_on({name: [] for name in session.silo.table_names})
    rows = result.rows
    if not rows:
        return None
    if all(v is None or v == 0 for row in rows for v in row):
        return None  # degenerate ungrouped-aggregate output
    return EqcSignal(
        probe="empty_db_sentinel",
        severity=0.95,
        clauses=("from", "filters", "projections"),
        detail=(
            f"application produced {len(rows)} non-degenerate row(s) on an "
            "empty database; EQC queries cannot manufacture rows"
        ),
    )


def _monotonicity_sentinel(session: ExtractionSession) -> Optional[EqcSignal]:
    """Conjunctive queries are monotone: a sub-instance cannot grow R.

    Runs the application on a half-size subset of every table; more result
    rows than on D_I itself implicates negation (NOT EXISTS / NOT IN /
    anti-join), which is outside EQC.
    """
    baseline = (
        len(session.initial_result.rows)
        if session.initial_result is not None
        else None
    )
    if baseline is None:
        return None
    halved = {}
    for name in session.silo.table_names:
        rows = session.silo.rows(name)
        halved[name] = rows[: (len(rows) + 1) // 2]
    result = session.run_on(halved)
    if len(result.rows) <= baseline:
        return None
    return EqcSignal(
        probe="monotonicity_sentinel",
        severity=0.9,
        clauses=("from", "joins", "filters"),
        detail=(
            f"halved instance produced {len(result.rows)} rows vs {baseline} "
            "on D_I; monotone (conjunctive) queries cannot grow under subsets"
        ),
    )


# -- postflight cross-validation --------------------------------------------


def postflight(session: ExtractionSession, checker_report=None) -> list[EqcSignal]:
    """Cross-validate the extracted query against the black box."""
    signals = []
    signals.extend(_non_equi_join_probes(session))
    if checker_report is not None and not checker_report.passed:
        signals.append(
            EqcSignal(
                probe="checker_mismatch",
                severity=0.85,
                clauses=CLAUSES,
                detail=(
                    f"extracted SQL disagreed with the application on "
                    f"{len(checker_report.mismatches)} of "
                    f"{checker_report.databases_checked} checker database(s)"
                ),
            )
        )
    return signals


def _successor(value):
    """A nearby-but-different probe value of the same type, or None."""
    if isinstance(value, bool) or value is None:
        return None
    if isinstance(value, int):
        return value + 1
    if isinstance(value, float):
        return value + 1.0
    if isinstance(value, datetime.date):
        return value + datetime.timedelta(days=1)
    if isinstance(value, str):
        return value[:-1] + ("a" if value[-1:] != "a" else "b") if value else "a"
    return None


def _non_equi_join_probes(session: ExtractionSession) -> list[EqcSignal]:
    """Probe each extracted equi-join clique with *unequal* column values.

    If D^1 with clique columns set pairwise unequal still produces rows,
    the hidden predicate is not equality (``<``, ``<=``, ``!=`` joins are
    outside EQC).  Probes whose mutated value does not survive the column's
    type coercion are skipped — a coerced-back-to-equal value would make an
    honest equi-join look non-equi.
    """
    if not session.d1:
        return []
    signals = []
    for clique in session.query.join_cliques:
        columns = sorted(clique.columns, key=lambda c: (c.table, c.column))
        by_table = {}
        for column in columns:
            by_table.setdefault(column.table, column)
        tables = sorted(by_table)
        if len(tables) < 2:
            continue
        keep, mutate = by_table[tables[0]], by_table[tables[1]]
        base = session.d1_value(keep)
        probe_value = _successor(base)
        if probe_value is None:
            continue
        coerced = session.column_type(mutate).coerce(probe_value)
        if coerced == base:
            continue  # truncated back to equality; probe would be unsound
        result = session.run_on_d1_mutation(
            mutate.table, {mutate.column: probe_value}
        )
        if not result.is_effectively_empty:
            signals.append(
                EqcSignal(
                    probe="non_equi_join",
                    severity=0.9,
                    clauses=("joins",),
                    detail=(
                        f"result stayed populated with "
                        f"{mutate.table}.{mutate.column}={coerced!r} != "
                        f"{keep.table}.{keep.column}={base!r}; the join on "
                        f"clique {sorted(str(c) for c in clique.columns)} "
                        "is not an equi-join"
                    ),
                )
            )
    return signals
