"""Extraction session: silo management, instrumented runs, shared state.

The session owns the *silo* — a clone of the user-supplied database instance
in which all mutations happen (the original is never touched, per §3.2) — and
funnels every black-box invocation through :meth:`run` / :meth:`run_on`, so
invocation counts and per-module wall-clock are recorded for the Figure 9
style breakdowns.
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Optional

from repro.apps.executable import Executable, InvocationMemo
from repro.core.config import ExtractionConfig
from repro.core.model import ExtractedQuery
from repro.engine.database import Database, PlanCache
from repro.engine.result import Result
from repro.engine.types import NumericDomain, date_to_ordinal
from repro.errors import DatabaseError, ExecutableTimeoutError, ExtractionError
from repro.obs.provenance import NULL_PROVENANCE
from repro.obs.trace import NULL_TRACER
from repro.resilience.budgets import BudgetSpec, ResourceBudget
from repro.resilience.deadlines import worker_timeout
from repro.resilience.retry import RetryPolicy
from repro.sgraph.schema_graph import ColumnNode, SchemaGraph


@dataclass
class ModuleStats:
    """Wall-clock and invocation accounting for one pipeline module.

    ``seconds`` is *self* time: when modules nest (e.g. the §7 HAVING
    pipeline re-entering ``filters``), the inner module's wall-clock is
    subtracted from the outer one, so no second is ever attributed to two
    modules and :attr:`ExtractionStats.total_seconds` never double-counts.
    """

    seconds: float = 0.0
    invocations: int = 0


@dataclass
class ExtractionStats:
    """Aggregated run statistics, keyed by pipeline module name."""

    modules: dict[str, ModuleStats] = field(default_factory=dict)
    #: invocations re-attempted after a retryable failure
    retries: int = 0
    #: invocations that ended in a timeout (before any retry succeeded)
    invocation_timeouts: int = 0

    def module(self, name: str) -> ModuleStats:
        return self.modules.setdefault(name, ModuleStats())

    @property
    def total_seconds(self) -> float:
        return sum(m.seconds for m in self.modules.values())

    @property
    def total_invocations(self) -> int:
        return sum(m.invocations for m in self.modules.values())

    def breakdown(self) -> dict[str, float]:
        return {name: stats.seconds for name, stats in self.modules.items()}


class ExtractionSession:
    """Shared context threaded through all pipeline modules."""

    def __init__(
        self,
        db: Database,
        executable: Executable,
        config: ExtractionConfig,
        tracer=None,
        provenance=None,
    ):
        self.config = config
        self.executable = executable
        self.rng = random.Random(config.seed)
        self.stats = ExtractionStats()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: clause-level evidence recorder; defaults to the shared no-op.
        self.provenance = (
            provenance if provenance is not None else NULL_PROVENANCE
        )
        #: applied around every black-box invocation; its jitter RNG is
        #: seeded independently of :attr:`rng` so retries never shift the
        #: extraction's probe sequence.
        self.retry = RetryPolicy(
            max_attempts=config.retry_max_attempts,
            base_delay=config.retry_base_delay,
            max_delay=config.retry_max_delay,
            jitter=config.retry_jitter,
            retry_timeouts=config.retry_timeouts,
            seed=config.seed ^ 0x5EED5EED,
        )
        self._current_module = "setup"
        #: per-open-module accumulators of nested-module wall-clock, used to
        #: attribute self time only (see :class:`ModuleStats`)
        self._module_frames: list[float] = []

        # Capture key metadata from the ORIGINAL catalog before the silo has
        # its constraints dropped.
        self.schema_graph = SchemaGraph(db.catalog)
        self.key_columns: dict[str, set[str]] = {
            schema.name.lower(): schema.key_columns() for schema in db.catalog
        }

        #: identifies the (instance, configuration) pair a checkpoint belongs
        #: to; the executable is deliberately excluded so a crashed chaos run
        #: can be resumed with a clean executable.
        self.checkpoint_fingerprint = {
            "tables": sorted(schema.name.lower() for schema in db.catalog),
            "total_rows": db.total_rows(),
            "seed": config.seed,
            "extract_having": config.extract_having,
            "extract_disjunctions": config.extract_disjunctions,
        }

        # The silo: all extraction work happens on this clone.  It carries
        # the session tracer so engine queries and application invocations
        # nest under the active module span.
        self.silo = db.clone()
        self.silo.tracer = self.tracer
        # Size the silo's parse/plan cache from config (0 disables it); the
        # version clock carried over from construction keeps DDL invalidation
        # exact across sandbox snapshot/restore cycles.  A shared cross-job
        # cache (serve layer) replaces the private one: the scoped view
        # widens every key with the catalog-content digest, so jobs from
        # different lineages can never alias plans.
        if config.shared_plan_cache is not None:
            from repro.engine.database import ScopedPlanCache

            self.silo.plan_cache = ScopedPlanCache(
                config.shared_plan_cache,
                self.silo,
                scope=config.plan_cache_scope or "session",
            )
        else:
            self.silo.plan_cache = (
                PlanCache(config.plan_cache_size)
                if config.plan_cache_size > 0
                else None
            )
        self.silo.drop_constraints()

        #: resource watchdog (invocations / rows scanned / cells / wall-clock);
        #: attached to the silo only when limits are set, keeping the
        #: unbudgeted engine fast path untouched.
        self.budget = ResourceBudget(
            BudgetSpec(
                max_invocations=config.budget_invocations,
                max_module_invocations=config.budget_module_invocations,
                max_rows_scanned=config.budget_rows_scanned,
                max_cells=config.budget_cells,
                max_seconds=config.budget_seconds,
            ),
            metrics=self.tracer.metrics,
            observer=config.resource_observer,
        )
        if self.budget.active:
            self.silo.budget = self.budget

        #: the sandbox reference state: D_I as prepared for extraction
        #: (constraints dropped).  Every module boundary — success, failure,
        #: or crash-unwind — restores the silo to this token, making the
        #: paper's §3.2 "D_I is restored" assumption a checked invariant.
        self.di_snapshot = self.silo.snapshot()
        self.di_fingerprint = self.di_snapshot.fingerprint()
        self.checkpoint_fingerprint["di_fingerprint"] = self.di_fingerprint

        # Per-column value samples from the ORIGINAL instance, captured before
        # minimization shreds the silo.  The checker seeds its randomized
        # verification databases with these, so value regions the extraction
        # never probed (e.g. a dropped disjunct's constant) still get
        # exercised.
        self.di_samples: dict[ColumnNode, list] = {}
        for schema in db.catalog:
            rows = db.rows(schema.name)[:256]
            for index, column in enumerate(schema.columns):
                node = ColumnNode(schema.name.lower(), column.name.lower())
                values = []
                seen = set()
                for row in rows:
                    value = row[index]
                    if value is None or value in seen:
                        continue
                    seen.add(value)
                    values.append(value)
                    if len(values) >= 16:
                        break
                self.di_samples[node] = values

        #: invocation isolation backend; ``None`` keeps the in-process fast
        #: path byte-identical.  Constructed eagerly so an unpicklable
        #: executable fails at session creation with a named error, not as a
        #: dead worker mid-extraction.
        self.backend = None
        if config.isolate == "process":
            from repro.isolation.backend import ProcessIsolationBackend

            self.backend = ProcessIsolationBackend(
                executable, config, tracer=self.tracer, budget=self.budget
            )
        elif config.isolate == "remote":
            from repro.isolation.backend import RemoteIsolationBackend

            if not config.worker_peers:
                raise ExtractionError(
                    "isolate='remote' requires worker_peers "
                    "(host:port worker-agent addresses)"
                )
            self.backend = RemoteIsolationBackend(
                executable, config, tracer=self.tracer, budget=self.budget
            )
        elif config.isolate != "none":
            raise ExtractionError(
                f"unknown isolation backend {config.isolate!r} "
                "(expected 'none', 'process', or 'remote')"
            )

        #: invocation memo: replayed database states skip the physical
        #: execution for pure executables.  Attached to the executable (the
        #: single funnel every run passes through, in-process or on the
        #: supervisor side of the isolation backend); explicitly reset to
        #: None otherwise so a previous session's memo never leaks in.
        self.memo: Optional[InvocationMemo] = None
        if config.invocation_cache and executable.cacheable:
            self.memo = InvocationMemo(capacity=config.invocation_cache_size)
        executable.memo = self.memo

        #: probe scheduler (``--jobs``); with jobs=1 it is a pass-through
        #: that never allocates threads.
        from repro.sched.scheduler import ProbeScheduler

        self.scheduler = ProbeScheduler(self)

        # Populated as the pipeline advances:
        self.query = ExtractedQuery()
        self.initial_result: Optional[Result] = None
        #: the single-row minimal database D^1: table -> row tuple
        self.d1: dict[str, tuple] = {}
        self.baseline_result: Optional[Result] = None
        #: count(*)-HAVING support (§7): every probe database physically
        #: replicates the designated table's rows this many times, so all
        #: probe groups meet the discovered count lower bound while the rest
        #: of the pipeline keeps reasoning about single logical rows.
        self.probe_multiplier: int = 1
        self.multiplier_table: Optional[str] = None
        #: extra value-range guards consulted by SValueSource (HAVING
        #: pipeline): probe values for these columns stay inside the given
        #: (lo, hi) so every synthetic group satisfies the discovered HAVING
        #: bounds by construction.
        self.svalue_guards: dict[ColumnNode, tuple] = {}

    # -- module timing -----------------------------------------------------

    @contextmanager
    def module(self, name: str):
        """Attribute wall-clock and invocations to a pipeline module.

        Opens a ``module`` span on the session tracer and records *self*
        wall-clock: if another module runs nested inside this one, its
        elapsed time is charged to itself only, never to both.
        """
        previous = self._current_module
        self._current_module = name
        self.budget.set_module(name)
        self._module_frames.append(0.0)
        started = time.perf_counter()
        try:
            with self.tracer.span(name, kind="module", tags={"module": name}):
                yield
        except DatabaseError as error:
            # Engine errors the module did not consume as signals are bugs in
            # the module's dialogue with the engine; surface them with the
            # module name attached (nested modules wrap at the innermost
            # boundary only — the re-raise is already an ExtractionError).
            raise ExtractionError(
                f"unexpected engine error in module {name!r}: {error}",
                module=name,
            ) from error
        finally:
            elapsed = time.perf_counter() - started
            nested = self._module_frames.pop()
            self.stats.module(name).seconds += max(0.0, elapsed - nested)
            if self._module_frames:
                self._module_frames[-1] += elapsed
            self._current_module = previous
            self.budget.set_module(previous)
            # Persist evidence at every module boundary so a crashed run's
            # ledger keeps the history up to the module it died in.
            self.provenance.flush()

    # -- black-box invocation ------------------------------------------------

    def run(self, timeout: Optional[float] = None) -> Result:
        """Invoke the application on the silo's current contents.

        The session's :class:`~repro.resilience.retry.RetryPolicy` is applied
        here — the single funnel every pipeline probe passes through — so a
        transient invocation failure (and, with ``retry_timeouts``, a
        spurious hang) is re-attempted with exponential backoff before any
        module ever sees it.  Fatal errors (engine signals like
        ``UndefinedTableError``) propagate on the first attempt.

        Each attempt runs inside a silo sandbox: whatever DML the black box
        issues — including partial writes cut off by a timeout — is rolled
        back before the next attempt or before control returns, so probes
        always observe exactly the state the module set up.
        """
        module_stats = self.stats.module(self._current_module)
        policy = self.retry
        attempt = 1
        while True:
            module_stats.invocations += 1
            self.budget.charge_invocation()
            token = self.silo.snapshot()
            try:
                result = self._invoke(timeout)
                if self.provenance.enabled:
                    self._record_probe_event(result, None)
                return result
            except Exception as error:
                if self.provenance.enabled:
                    self._record_probe_event(None, error)
                timed_out = isinstance(error, ExecutableTimeoutError)
                if timed_out:
                    self._record_timeout()
                    # A timeout induced by the wall-clock budget (the
                    # remaining budget was the tightest deadline when the
                    # worker was killed) must surface as the structured
                    # BudgetExhausted, not as a retryable hang.
                    self.budget.check_wall_clock()
                if (
                    policy.max_attempts <= attempt
                    or not policy.is_retryable(error)
                ):
                    raise
                self._record_retry(attempt, error)
                policy.sleep(policy.backoff(attempt))
                attempt += 1
            finally:
                self.silo.restore(token)

    def _invoke(self, timeout: Optional[float]) -> Result:
        if self.backend is not None:
            # Out-of-process: the worker replica arms its own cooperative
            # deadline and the supervisor enforces the hard one; the local
            # silo is never executed against.  The supervisor's timeout is
            # composed tightest-wins with the remaining wall-clock budget so
            # a hung worker cannot outlive a job deadline by more than
            # ``kill_grace`` (see resilience/deadlines.py for the full
            # precedence stack).
            effective = worker_timeout(
                timeout,
                self.budget.remaining_seconds(),
                self.config.worker_default_timeout,
            )
            return self.backend.invoke(self.silo, effective)
        if timeout is not None:
            self.silo.deadline = time.perf_counter() + timeout
            try:
                return self.executable.run(self.silo, timeout=timeout)
            finally:
                self.silo.deadline = None
        return self.executable.run(self.silo)

    def close(self) -> None:
        """Release external resources (worker processes); idempotent.

        The backend object stays referenced after close so callers (the
        chaos CLI's survival report) can still read its pool statistics.
        """
        self.scheduler.close()
        if self.backend is not None:
            self.backend.close()

    def cache_stats(self) -> dict:
        """Plan-cache / invocation-memo / scheduler statistics for reports."""
        stats: dict = {"scheduler": self.scheduler.stats_dict()}
        stats["scheduler"]["jobs"] = self.scheduler.jobs
        if self.silo.plan_cache is not None:
            stats["plan_cache"] = self.silo.plan_cache.stats()
        if self.memo is not None:
            stats["invocation_cache"] = self.memo.stats()
        workers = self.worker_stats()
        if workers is not None:
            stats["workers"] = workers
        return stats

    def worker_stats(self) -> Optional[dict]:
        """Isolation worker-pool lifetime counters, or None when in-process."""
        if self.backend is None:
            return None
        pool = self.backend.pool
        return {
            "invocations": pool.stats.invocations,
            "crashes": pool.stats.crashes,
            "kills": pool.stats.kills,
            "restarts": pool.stats.restarts,
            "respawns": pool.respawns,
            "quarantined": int(pool.quarantine_error is not None),
            "rss_peak_bytes": pool.stats.rss_peak_bytes,
        }

    def _record_probe_event(self, result, error) -> None:
        """One ``probe`` evidence event per logical invocation attempt.

        The cache/fingerprint facts are read back from the invocation info
        the executable left on the probe database, so no fingerprint is ever
        computed twice.  Mirrors the exactly-once schedule of
        ``module_stats.invocations``: retries and memo hits are recorded,
        nothing else is.
        """
        info = getattr(self.silo, "last_invocation", None) or {}
        self.provenance.probe(
            self._current_module,
            rows=result.row_count if result is not None else None,
            error=type(error).__name__ if error is not None else "",
            cached=bool(info.get("cached")),
            isolated=self.backend is not None,
            db_fingerprint=str(info.get("fingerprint") or ""),
        )

    def _record_timeout(self) -> None:
        self.stats.invocation_timeouts += 1
        if self.tracer.metrics is not None:
            self.tracer.metrics.counter("invocation_timeouts_total").inc()
        if self.tracer.enabled:
            span = self.tracer.current
            if span is not None:
                span.set_tag("timed_out", True)

    def _record_retry(self, attempt: int, error: Exception) -> None:
        self.stats.retries += 1
        if self.tracer.metrics is not None:
            self.tracer.metrics.counter("retries_total").inc()
        if self.tracer.enabled:
            span = self.tracer.current
            if span is not None:
                span.tags["retries"] = span.tags.get("retries", 0) + 1
                span.set_tag("last_retried_error", type(error).__name__)

    def run_on(self, rows_by_table: dict[str, list[tuple]]) -> Result:
        """Invoke the application on a transient database state.

        ``rows_by_table`` replaces the named tables' contents for the duration
        of the run; the sandbox restores everything afterwards, so the silo's
        resident state (usually ``D^1``) is preserved.
        """
        with self.silo.sandbox():
            for name, rows in rows_by_table.items():
                rows = self._with_multiplier(name, rows)
                self._charge_cells(name, rows)
                self.silo.replace_rows(name, rows)
            return self.run()

    def _charge_cells(self, table: str, rows: list[tuple]) -> None:
        """Charge materialized synthetic cells (rows × columns) to the budget."""
        if self.budget.active and rows:
            self.budget.charge_cells(
                len(rows) * len(self.silo.schema(table).columns)
            )

    def _with_multiplier(self, table: str, rows: list[tuple]) -> list[tuple]:
        if self.probe_multiplier > 1 and table.lower() == self.multiplier_table:
            return list(rows) * self.probe_multiplier
        return rows

    def run_on_d1_mutation(
        self, table: str, mutations: dict[str, object]
    ) -> Result:
        """Run against ``D^1`` with some columns of one table's row replaced."""
        schema = self.silo.schema(table)
        row = list(self.d1[table.lower()])
        for column, value in mutations.items():
            row[schema.column_index(column)] = value
        return self.run_on({table.lower(): [tuple(row)]})

    # -- D^1 helpers ---------------------------------------------------------

    def set_d1(self, rows_by_table: dict[str, tuple]) -> None:
        """Install the single-row minimal database into the silo."""
        self.d1 = {name.lower(): row for name, row in rows_by_table.items()}
        for name, row in self.d1.items():
            rows = self._with_multiplier(name, [row])
            self._charge_cells(name, rows)
            self.silo.replace_rows(name, rows)

    def d1_value(self, column: ColumnNode):
        schema = self.silo.schema(column.table)
        return self.d1[column.table][schema.column_index(column.column)]

    def update_d1(self, table: str, mutations: dict[str, object]) -> None:
        """Persistently mutate ``D^1`` (used when refreshing s-values)."""
        schema = self.silo.schema(table)
        row = list(self.d1[table.lower()])
        for column, value in mutations.items():
            row[schema.column_index(column)] = value
        self.d1[table.lower()] = tuple(row)
        rows = self._with_multiplier(table, [tuple(row)])
        self._charge_cells(table, rows)
        self.silo.replace_rows(table, rows)

    # -- sandbox invariant ---------------------------------------------------

    def restore_silo_to_di(self) -> None:
        """Restore the silo to D_I (undoes DML *and* DDL since session start).

        The pipeline calls this at every step boundary and in its terminal
        ``finally``, so the silo is provably back at D_I whether a module
        succeeded, degraded, or crashed mid-flight.
        """
        self.silo.restore(self.di_snapshot)

    def materialize_resident(self) -> None:
        """Re-install the resident probe state (D^1) after a D_I restore.

        The standard pipeline's persistent silo state is fully determined by
        ``(D_I, d1, probe_multiplier)``; once minimization has produced D^1,
        re-materializing it from the recorded rows reproduces exactly what
        the next module expects.
        """
        if self.d1:
            self.set_d1(dict(self.d1))

    def silo_matches_di(self) -> bool:
        """True when the live silo is byte-identical to D_I."""
        return self.silo.fingerprint() == self.di_fingerprint

    # -- metadata helpers ---------------------------------------------------

    def is_key_column(self, column: ColumnNode) -> bool:
        return column.column in self.key_columns.get(column.table, set())

    def table_columns(self, table: str) -> list[ColumnNode]:
        schema = self.silo.schema(table)
        return [ColumnNode(table.lower(), col.name.lower()) for col in schema.columns]

    def nonkey_columns(self, table: str) -> list[ColumnNode]:
        return [c for c in self.table_columns(table) if not self.is_key_column(c)]

    def column_type(self, column: ColumnNode):
        return self.silo.schema(column.table).column(column.column).type

    def column_domain(self, column: ColumnNode) -> NumericDomain:
        col_type = self.column_type(column)
        domain = getattr(col_type, "domain", None)
        if domain is None:
            raise ValueError(f"column {column} has no numeric domain")
        return domain

    def all_query_columns(self) -> list[ColumnNode]:
        columns: list[ColumnNode] = []
        for table in self.query.tables:
            columns.extend(self.table_columns(table))
        return columns
