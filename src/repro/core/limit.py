"""Limit extraction (paper §5.4).

Databases are generated so the pre-limit result cardinality follows a
geometric progression ``a, a·r, a·r², …`` — each table receives ``n`` rows
with join-clique columns aligned ``1..n`` and the functionally-independent
grouping attributes carrying a distinct value per row, so the SPJ core yields
``n`` rows forming ``n`` groups.  The first probe whose observed cardinality
``m`` falls short of ``n`` exposes ``limit m``.

The probe ceiling is ``l_max`` — the product of the distinct-s-value counts of
the independent grouping attributes (beyond which a larger result is
impossible on *any* valid database, so an undetected limit is semantically
vacuous) — clamped by a configured practical cap.
"""

from __future__ import annotations

from repro.core.dgen import DgenBuilder
from repro.core.session import ExtractionSession
from repro.core.svalues import SValueSource
from repro.errors import ExtractionError
from repro.sgraph.schema_graph import ColumnNode


def extract_limit(session: ExtractionSession, svalues: SValueSource) -> int | None:
    """Identify ``l_E`` (None when no limit is observable)."""
    with session.module("limit"):
        query = session.query
        if query.ungrouped_aggregation and not query.group_by:
            query.limit = None  # single-row results can never trip a limit >= 3
            return None

        l_max = _max_groups(session, svalues)
        start = max(
            session.config.limit_start_floor,
            session.initial_result.row_count if session.initial_result else 0,
        )
        cap = min(l_max, session.config.limit_probe_cap)

        n = min(start, cap)
        builder = DgenBuilder(session, svalues)
        provenance = session.provenance
        while True:
            result = _probe_cardinality(session, svalues, builder, n)
            if result < n:
                if result < 3:
                    # EQC guarantees limits of at least 3, so a smaller
                    # cardinality means the probe database failed to flow
                    # through the SPJ core — an earlier clause was
                    # mis-extracted (e.g. a join missing from the schema
                    # graph) or the query is outside EQC.
                    raise ExtractionError(
                        f"limit probe expected {n} result rows but saw {result}; "
                        "the extracted SPJ core is inconsistent with the "
                        "application (is the join declared in the schema?)"
                    )
                if provenance.enabled:
                    provenance.accept(
                        "limit",
                        str(result),
                        "limit",
                        detail=(
                            f"geometric probe expected {n} result rows but "
                            f"observed {result}"
                        ),
                    )
                query.limit = result
                return result
            if n >= cap:
                if provenance.enabled:
                    provenance.observation(
                        "limit",
                        detail=(
                            f"no limit observable up to the probe ceiling "
                            f"{cap} (l_max clamp)"
                        ),
                    )
                query.limit = None
                return None
            n = min(n * session.config.limit_ratio, cap)


def _independent_group_columns(session: ExtractionSession) -> list[ColumnNode]:
    """Grouping attributes that can vary independently (one per clique)."""
    seen_cliques = set()
    independent = []
    for column in session.query.group_by:
        clique = session.query.clique_of(column)
        if clique is not None:
            if clique in seen_cliques:
                continue
            seen_cliques.add(clique)
        independent.append(column)
    return independent


def _max_groups(session: ExtractionSession, svalues: SValueSource) -> int:
    """l_max: the most groups any valid database can produce."""
    if not session.query.group_by:
        return session.config.limit_probe_cap  # SPJ: rows are unbounded
    total = 1
    for column in _independent_group_columns(session):
        total *= max(1, svalues.capacity(column))
        if total >= session.config.limit_probe_cap:
            return session.config.limit_probe_cap
    return total


def _probe_cardinality(
    session: ExtractionSession,
    svalues: SValueSource,
    builder: DgenBuilder,
    n: int,
) -> int:
    overrides: dict[ColumnNode, list] = {}
    row_counts = {table: n for table in session.query.tables}

    for clique in session.query.join_cliques:
        for member in clique.sorted_columns():
            overrides[member] = list(range(1, n + 1))

    if session.query.group_by:
        # Independent grouping attributes get a unique value *combination* per
        # row (mixed-radix over their s-value capacities), so the n aligned
        # join rows land in n distinct groups even when no single column
        # admits n distinct values.
        free_columns = [
            column
            for column in _independent_group_columns(session)
            if column not in overrides  # clique keys are already distinct
        ]
        pools = []
        for column in free_columns:
            pool_size = min(svalues.capacity(column), n)
            pools.append(svalues.distinct(column, pool_size))
        for column, pool in zip(free_columns, pools):
            overrides[column] = []
        for row in range(n):
            remainder = row
            for column, pool in zip(free_columns, pools):
                overrides[column].append(pool[remainder % len(pool)])
                remainder //= len(pool)

    result = builder.run(builder.build(row_counts, overrides))
    return result.row_count


def capture_initial_result(session: ExtractionSession) -> None:
    """Record |R_I| before minimization (the limit probe's starting point)."""
    with session.module("setup"):
        session.initial_result = session.run()
