"""The UNMASQUE pipeline orchestrator (paper Figure 3).

``UnmasqueExtractor`` wires the modules in the paper's order:

    From clause → Database minimization → Equi-join predicates →
    Filter predicates → Projections → Group By → Aggregations →
    Order By → Limit → Assembler + Checker

With ``config.extract_having`` set, the restructured §7 pipeline runs instead
(Group By moves ahead of the unified filter/having bound extraction).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Optional

logger = logging.getLogger("repro.core.pipeline")

from repro.apps.executable import Executable
from repro.core import (
    aggregates,
    checker,
    filters,
    from_clause,
    groupby,
    joins,
    limit as limit_module,
    minimizer,
    orderby,
    projections,
)
from repro.core.config import ExtractionConfig
from repro.core.model import ExtractedQuery
from repro.core.session import ExtractionSession, ExtractionStats
from repro.core.svalues import SValueSource
from repro.engine.database import Database
from repro.errors import ExtractionError


@dataclass
class ExtractionOutcome:
    """Everything an extraction run produces."""

    query: ExtractedQuery
    sql: str
    stats: ExtractionStats
    checker_report: Optional[checker.CheckReport]

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.sql

    def to_dict(self) -> dict:
        """JSON-serialisable summary (for tooling and result archival)."""
        query = self.query
        return {
            "sql": self.sql,
            "tables": list(query.tables),
            "joins": [p for c in query.join_cliques for p in c.predicates()],
            "filters": [f.to_sql() for f in query.filters],
            "projections": [o.select_sql() for o in query.projections],
            "aggregations": [o.select_sql() for o in query.aggregations],
            "group_by": [f"{c.table}.{c.column}" for c in query.group_by],
            "having": [h.to_sql() for h in query.having],
            "order_by": [o.to_sql() for o in query.order_by],
            "limit": query.limit,
            "ungrouped_aggregation": query.ungrouped_aggregation,
            "stats": {
                "invocations": self.stats.total_invocations,
                "seconds": round(self.stats.total_seconds, 6),
                "breakdown": {
                    name: round(seconds, 6)
                    for name, seconds in self.stats.breakdown().items()
                },
            },
            "checker": (
                None
                if self.checker_report is None
                else {
                    "passed": self.checker_report.passed,
                    "databases_checked": self.checker_report.databases_checked,
                    "mismatches": list(self.checker_report.mismatches),
                }
            ),
        }

    def describe(self) -> str:
        """A clause-by-clause human-readable extraction report."""
        query = self.query
        lines = ["extraction report", "=================="]
        lines.append(f"tables (T_E)      : {', '.join(query.tables)}")
        join_predicates = [p for c in query.join_cliques for p in c.predicates()]
        lines.append(
            "joins (J_E)       : " + ("; ".join(join_predicates) or "(none)")
        )
        lines.append(
            "filters (F_E)     : "
            + ("; ".join(f.to_sql() for f in query.filters) or "(none)")
        )
        lines.append(
            "projections (P_E) : "
            + (", ".join(o.select_sql() for o in query.projections) or "(none)")
        )
        lines.append(
            "aggregates (A_E)  : "
            + (", ".join(o.select_sql() for o in query.aggregations) or "(none)")
        )
        group = ", ".join(f"{c.table}.{c.column}" for c in query.group_by)
        if not group and query.ungrouped_aggregation:
            group = "(ungrouped aggregation)"
        lines.append(f"group by (G_E)    : {group or '(none)'}")
        lines.append(
            "having (H_E)      : "
            + ("; ".join(h.to_sql() for h in query.having) or "(none)")
        )
        lines.append(
            "order by (O_E)    : "
            + (", ".join(o.to_sql() for o in query.order_by) or "(none)")
        )
        lines.append(f"limit (l_E)       : {query.limit if query.limit is not None else '(none)'}")
        lines.append("")
        lines.append(f"invocations       : {self.stats.total_invocations}")
        lines.append(f"wall-clock        : {self.stats.total_seconds:.3f}s")
        if self.checker_report is not None:
            verdict = "passed" if self.checker_report.passed else "FAILED"
            lines.append(
                f"checker           : {verdict} on "
                f"{self.checker_report.databases_checked} databases"
            )
        return "\n".join(lines)


class UnmasqueExtractor:
    """Extract the hidden query of a black-box application.

    Usage::

        extractor = UnmasqueExtractor(db, app)
        outcome = extractor.extract()
        print(outcome.sql)

    ``db`` is the initial instance ``D_I`` on which the application produces a
    populated result; it is cloned into a silo and never mutated.
    """

    def __init__(
        self,
        db: Database,
        executable: Executable,
        config: Optional[ExtractionConfig] = None,
        tracer=None,
    ):
        self.config = config or ExtractionConfig()
        self.session = ExtractionSession(db, executable, self.config, tracer=tracer)

    def extract(self) -> ExtractionOutcome:
        """Run the pipeline under a root ``pipeline`` span covering it all."""
        session = self.session
        tracer = session.tracer
        tags = None
        if tracer.enabled:
            tags = {
                "executable": session.executable.name,
                "db_tables": len(session.silo.table_names),
                "db_rows": session.silo.total_rows(),
                "having_pipeline": self.config.extract_having,
            }
        with tracer.span("extraction", kind="pipeline", tags=tags) as root:
            outcome = (
                self._extract_with_having()
                if self.config.extract_having
                else self._extract()
            )
            if tracer.enabled:
                root.set_tags(
                    tables=list(outcome.query.tables),
                    invocations=outcome.stats.total_invocations,
                    modules=sorted(outcome.stats.modules),
                )
                if tracer.metrics is not None:
                    tracer.metrics.counter("extractions_total").inc()
            return outcome

    def _extract(self) -> ExtractionOutcome:
        session = self.session

        limit_module.capture_initial_result(session)
        if session.initial_result.is_effectively_empty:
            raise ExtractionError(
                "the application's result on D_I is empty; extraction requires "
                "a populated initial result (paper §3)"
            )

        tables = from_clause.extract_tables(session)
        logger.info("from clause: T_E = %s", tables)
        minimizer.minimize(session)
        logger.info(
            "minimized to D^1 (%d invocations so far)",
            session.stats.total_invocations,
        )
        cliques = joins.extract_joins(session)
        logger.info("join cliques: %s", [c.predicates() for c in cliques])
        predicates = filters.extract_filters(session)
        logger.info("filters: %s", [p.to_sql() for p in predicates])
        if self.config.extract_disjunctions:
            from repro.core import disjunctions

            disjunctions.refine_disjunctions(session)
            logger.info(
                "disjunction refinement: %s",
                [p.to_sql() for p in session.query.filters],
            )

        svalues = SValueSource(session)
        projections.extract_projections(session, svalues)
        groupby.extract_group_by(session, svalues)
        logger.info(
            "group by: %s (ungrouped_aggregation=%s)",
            session.query.group_by,
            session.query.ungrouped_aggregation,
        )
        aggregates.extract_aggregations(session, svalues)
        orderby.extract_order_by(session, svalues)
        limit_module.extract_limit(session, svalues)
        logger.info(
            "order by: %s, limit: %s",
            [o.to_sql() for o in session.query.order_by],
            session.query.limit,
        )

        report = None
        if self.config.run_checker:
            report = checker.verify_extraction(session, svalues)
            logger.info(
                "checker: %s on %d databases",
                "passed" if report.passed else "FAILED",
                report.databases_checked,
            )

        return ExtractionOutcome(
            query=session.query,
            sql=session.query.sql,
            stats=session.stats,
            checker_report=report,
        )

    def _extract_with_having(self) -> ExtractionOutcome:
        from repro.core import having as having_module

        return having_module.extract_with_having(self.session)
