"""The UNMASQUE pipeline orchestrator (paper Figure 3).

``UnmasqueExtractor`` wires the modules in the paper's order:

    From clause → Database minimization → Equi-join predicates →
    Filter predicates → Projections → Group By → Aggregations →
    Order By → Limit → Assembler + Checker

With ``config.extract_having`` set, the restructured §7 pipeline runs instead
(Group By moves ahead of the unified filter/having bound extraction).

The standard pipeline is *step-driven*: each module is a named step executed
by one loop, which is where the fault-tolerance behaviours live —

* **checkpoint/resume** — with a ``checkpoint_dir``, the session state is
  serialised after every completed step; a rerun against the same directory
  (and instance/config) skips the completed steps and re-executes only the
  unfinished ones (see :mod:`repro.resilience.checkpoint`);
* **best-effort degradation** — with ``config.fail_fast`` off, a
  *non-essential* step (disjunctions, order by, limit, checker) that fails
  is recorded as a structured :class:`Degradation` on the outcome instead of
  aborting an extraction that already spent thousands of invocations.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Callable, NamedTuple, Optional

logger = logging.getLogger("repro.core.pipeline")

from repro.apps.executable import Executable
from repro.core import (
    aggregates,
    checker,
    eqc_guard,
    filters,
    from_clause,
    groupby,
    joins,
    limit as limit_module,
    minimizer,
    orderby,
    projections,
)
from repro.core.config import ExtractionConfig
from repro.core.model import ExtractedQuery
from repro.core.session import ExtractionSession, ExtractionStats
from repro.core.svalues import SValueSource
from repro.engine.database import Database
from repro.errors import (
    BudgetExhausted,
    ExtractionError,
    ExtractionPaused,
    ReproError,
    StorageExhausted,
    UnsupportedQueryError,
    WorkerQuarantined,
)
from repro.resilience.checkpoint import (
    CheckpointStore,
    restore_session,
    snapshot_session,
)


@dataclass(frozen=True)
class Degradation:
    """One non-essential module that failed and was skipped (best-effort)."""

    module: str
    error: str  # exception class name
    message: str

    def to_dict(self) -> dict:
        return {"module": self.module, "error": self.error, "message": self.message}

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"{self.module}: [{self.error}] {self.message}"


@dataclass
class ExtractionOutcome:
    """Everything an extraction run produces."""

    query: ExtractedQuery
    sql: str
    stats: ExtractionStats
    checker_report: Optional[checker.CheckReport]
    #: non-essential modules that failed under best-effort mode
    degradations: list[Degradation] = field(default_factory=list)
    #: modules restored from a checkpoint instead of re-executed
    resumed_modules: list[str] = field(default_factory=list)
    #: "ok", "out_of_class" (EQC guard refused to emit SQL),
    #: "budget_exhausted" (best-effort run stopped by the watchdog), or
    #: "quarantined" (the isolation supervisor refused to keep respawning
    #: workers for an executable that crashes them)
    verdict: str = "ok"
    #: out-of-class evidence, when the EQC guard ran
    eqc: Optional[eqc_guard.EqcReport] = None
    #: resource usage vs. limits, when a budget was configured
    budget: Optional[dict] = None
    #: scheduler / plan-cache / invocation-memo statistics for this run
    caches: Optional[dict] = None
    #: bounded symbolic verifier report (``repro.veriq``), when certification
    #: ran: verdict "certificate" / "counterexample" / "unsupported", the
    #: explored bound, per-round search stats, and a serialized
    #: counterexample database when one survived the CEGIS loop
    certify: Optional[dict] = None

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.sql

    @property
    def is_degraded(self) -> bool:
        return bool(self.degradations)

    def to_dict(self) -> dict:
        """JSON-serialisable summary (for tooling and result archival)."""
        query = self.query
        return {
            "verdict": self.verdict,
            "eqc": None if self.eqc is None else self.eqc.to_dict(),
            "budget": self.budget,
            "sql": self.sql,
            "tables": list(query.tables),
            "joins": [p for c in query.join_cliques for p in c.predicates()],
            "filters": [f.to_sql() for f in query.filters],
            "projections": [o.select_sql() for o in query.projections],
            "aggregations": [o.select_sql() for o in query.aggregations],
            "group_by": [f"{c.table}.{c.column}" for c in query.group_by],
            "having": [h.to_sql() for h in query.having],
            "order_by": [o.to_sql() for o in query.order_by],
            "limit": query.limit,
            "ungrouped_aggregation": query.ungrouped_aggregation,
            "stats": {
                "invocations": self.stats.total_invocations,
                "seconds": round(self.stats.total_seconds, 6),
                "retries": self.stats.retries,
                "invocation_timeouts": self.stats.invocation_timeouts,
                "breakdown": {
                    name: round(seconds, 6)
                    for name, seconds in self.stats.breakdown().items()
                },
            },
            "degradations": [d.to_dict() for d in self.degradations],
            "resumed_modules": list(self.resumed_modules),
            "caches": self.caches,
            "certify": self.certify,
            "checker": (
                None
                if self.checker_report is None
                else {
                    "passed": self.checker_report.passed,
                    "databases_checked": self.checker_report.databases_checked,
                    "mismatches": list(self.checker_report.mismatches),
                }
            ),
        }

    def describe(self) -> str:
        """A clause-by-clause human-readable extraction report."""
        query = self.query
        lines = ["extraction report", "=================="]
        if self.verdict != "ok":
            lines.append(f"verdict           : {self.verdict}")
        lines.append(f"tables (T_E)      : {', '.join(query.tables)}")
        join_predicates = [p for c in query.join_cliques for p in c.predicates()]
        lines.append(
            "joins (J_E)       : " + ("; ".join(join_predicates) or "(none)")
        )
        lines.append(
            "filters (F_E)     : "
            + ("; ".join(f.to_sql() for f in query.filters) or "(none)")
        )
        lines.append(
            "projections (P_E) : "
            + (", ".join(o.select_sql() for o in query.projections) or "(none)")
        )
        lines.append(
            "aggregates (A_E)  : "
            + (", ".join(o.select_sql() for o in query.aggregations) or "(none)")
        )
        group = ", ".join(f"{c.table}.{c.column}" for c in query.group_by)
        if not group and query.ungrouped_aggregation:
            group = "(ungrouped aggregation)"
        lines.append(f"group by (G_E)    : {group or '(none)'}")
        lines.append(
            "having (H_E)      : "
            + ("; ".join(h.to_sql() for h in query.having) or "(none)")
        )
        lines.append(
            "order by (O_E)    : "
            + (", ".join(o.to_sql() for o in query.order_by) or "(none)")
        )
        lines.append(f"limit (l_E)       : {query.limit if query.limit is not None else '(none)'}")
        lines.append("")
        lines.append(f"invocations       : {self.stats.total_invocations}")
        lines.append(f"wall-clock        : {self.stats.total_seconds:.3f}s")
        if self.stats.retries:
            lines.append(f"retries           : {self.stats.retries}")
        if self.stats.invocation_timeouts:
            lines.append(f"timeouts          : {self.stats.invocation_timeouts}")
        if self.resumed_modules:
            lines.append(
                "resumed           : skipped "
                + ", ".join(self.resumed_modules)
                + " (from checkpoint)"
            )
        if self.checker_report is not None:
            verdict = "passed" if self.checker_report.passed else "FAILED"
            lines.append(
                f"checker           : {verdict} on "
                f"{self.checker_report.databases_checked} databases"
            )
        if self.certify is not None:
            lines.append(f"certify           : {self.certify.get('verdict')}")
        if self.budget is not None:
            lines.append(
                "budget            : "
                f"{self.budget['invocations']} invocations, "
                f"{self.budget['rows_scanned']} rows scanned, "
                f"{self.budget['cells_materialized']} cells, "
                f"{self.budget['wall_seconds']:.3f}s"
                + (
                    f" — EXHAUSTED ({self.budget['exhausted']})"
                    if self.budget.get("exhausted")
                    else ""
                )
            )
        if self.eqc is not None and (self.eqc.signals or self.verdict != "ok"):
            lines.append("")
            lines.append(self.eqc.describe())
        if self.degradations:
            lines.append("")
            lines.append("diagnostics (best-effort degradations)")
            lines.append("--------------------------------------")
            for degradation in self.degradations:
                lines.append(
                    f"  {degradation.module:<14} {degradation.error}: "
                    f"{degradation.message}"
                )
            lines.append(
                "  the SQL above omits the degraded clauses and may be a "
                "superset of the hidden query's results"
            )
        return "\n".join(lines)


class _PipelineContext:
    """Cross-step scratch state for one standard-pipeline run."""

    __slots__ = ("svalues", "checker_report", "eqc_signals")

    def __init__(self):
        self.svalues: Optional[SValueSource] = None
        self.checker_report: Optional[checker.CheckReport] = None
        self.eqc_signals: list[eqc_guard.EqcSignal] = []

    def require_svalues(self, session: ExtractionSession) -> SValueSource:
        # Constructed lazily after the filter set is final (its caches assume
        # that); a resumed run rebuilds it from the restored filters.
        if self.svalues is None:
            self.svalues = SValueSource(session)
        return self.svalues


class _Step(NamedTuple):
    name: str
    #: essential steps always raise on failure; non-essential ones degrade
    #: when ``config.fail_fast`` is off
    essential: bool
    fn: Callable[[ExtractionSession, _PipelineContext], None]


def _step_setup(session: ExtractionSession, ctx: _PipelineContext) -> None:
    limit_module.capture_initial_result(session)
    if session.initial_result.is_effectively_empty:
        raise ExtractionError(
            "the application's result on D_I is empty; extraction requires "
            "a populated initial result (paper §3)"
        )


def _step_eqc_preflight(session: ExtractionSession, ctx: _PipelineContext) -> None:
    with session.module("eqc_preflight"):
        signals = eqc_guard.preflight(session)
    ctx.eqc_signals.extend(signals)
    for signal in signals:
        logger.warning("EQC preflight signal: %s", signal.detail)
        session.provenance.observation(
            "eqc_preflight", target=signal.probe, detail=signal.detail
        )
    if any(s.severity >= eqc_guard.OUT_OF_CLASS_THRESHOLD for s in signals):
        raise UnsupportedQueryError(
            "preflight sentinels flagged the hidden query as out-of-class: "
            + "; ".join(s.detail for s in signals),
            module="eqc_preflight",
        )


def _step_eqc_postflight(session: ExtractionSession, ctx: _PipelineContext) -> None:
    with session.module("eqc_postflight"):
        signals = eqc_guard.postflight(session, ctx.checker_report)
    ctx.eqc_signals.extend(signals)
    for signal in signals:
        logger.warning("EQC postflight signal: %s", signal.detail)
        session.provenance.observation(
            "eqc_postflight", target=signal.probe, detail=signal.detail
        )
    if any(s.severity >= eqc_guard.OUT_OF_CLASS_THRESHOLD for s in signals):
        raise UnsupportedQueryError(
            "postflight cross-validation flagged the extraction as "
            "out-of-class: " + "; ".join(s.detail for s in signals),
            module="eqc_postflight",
        )


def _step_from_clause(session: ExtractionSession, ctx: _PipelineContext) -> None:
    tables = from_clause.extract_tables(session)
    logger.info("from clause: T_E = %s", tables)


def _step_minimizer(session: ExtractionSession, ctx: _PipelineContext) -> None:
    minimizer.minimize(session)
    logger.info(
        "minimized to D^1 (%d invocations so far)",
        session.stats.total_invocations,
    )


def _step_joins(session: ExtractionSession, ctx: _PipelineContext) -> None:
    cliques = joins.extract_joins(session)
    logger.info("join cliques: %s", [c.predicates() for c in cliques])


def _step_filters(session: ExtractionSession, ctx: _PipelineContext) -> None:
    predicates = filters.extract_filters(session)
    logger.info("filters: %s", [p.to_sql() for p in predicates])


def _step_disjunctions(session: ExtractionSession, ctx: _PipelineContext) -> None:
    from repro.core import disjunctions

    disjunctions.refine_disjunctions(session)
    logger.info(
        "disjunction refinement: %s",
        [p.to_sql() for p in session.query.filters],
    )


def _step_projections(session: ExtractionSession, ctx: _PipelineContext) -> None:
    projections.extract_projections(session, ctx.require_svalues(session))


def _step_group_by(session: ExtractionSession, ctx: _PipelineContext) -> None:
    groupby.extract_group_by(session, ctx.require_svalues(session))
    logger.info(
        "group by: %s (ungrouped_aggregation=%s)",
        session.query.group_by,
        session.query.ungrouped_aggregation,
    )


def _step_aggregations(session: ExtractionSession, ctx: _PipelineContext) -> None:
    aggregates.extract_aggregations(session, ctx.require_svalues(session))


def _step_order_by(session: ExtractionSession, ctx: _PipelineContext) -> None:
    orderby.extract_order_by(session, ctx.require_svalues(session))


def _step_limit(session: ExtractionSession, ctx: _PipelineContext) -> None:
    limit_module.extract_limit(session, ctx.require_svalues(session))
    logger.info(
        "order by: %s, limit: %s",
        [o.to_sql() for o in session.query.order_by],
        session.query.limit,
    )


def _step_checker(session: ExtractionSession, ctx: _PipelineContext) -> None:
    ctx.checker_report = checker.verify_extraction(
        session, ctx.require_svalues(session)
    )
    session.provenance.observation(
        "checker",
        target="passed" if ctx.checker_report.passed else "failed",
        detail=(
            f"verified on {ctx.checker_report.databases_checked} "
            "randomized databases"
        ),
    )
    logger.info(
        "checker: %s on %d databases",
        "passed" if ctx.checker_report.passed else "FAILED",
        ctx.checker_report.databases_checked,
    )


class UnmasqueExtractor:
    """Extract the hidden query of a black-box application.

    Usage::

        extractor = UnmasqueExtractor(db, app)
        outcome = extractor.extract()
        print(outcome.sql)

    ``db`` is the initial instance ``D_I`` on which the application produces a
    populated result; it is cloned into a silo and never mutated.

    ``checkpoint_dir`` (a path or a ready
    :class:`~repro.resilience.checkpoint.CheckpointStore`) enables
    checkpoint/resume for the standard pipeline: progress is saved after
    every module, an existing checkpoint is resumed from, and the file is
    cleared on success.
    """

    def __init__(
        self,
        db: Database,
        executable: Executable,
        config: Optional[ExtractionConfig] = None,
        tracer=None,
        checkpoint_dir=None,
        provenance=None,
        step_listener=None,
        pause_check=None,
    ):
        self.config = config or ExtractionConfig()
        #: called with the step name after each completed (and checkpointed)
        #: module — ``repro serve`` journals per-job progress through it
        self.step_listener = step_listener
        #: polled after each completed module; returning True pauses the
        #: pipeline cooperatively (raises ExtractionPaused) with the
        #: checkpoint for the finished step already on disk
        self.pause_check = pause_check
        #: the original D_I — the CEGIS loop clones it to replay and absorb
        #: counterexample databases (repro.veriq.cegis)
        self.database = db
        self.session = ExtractionSession(
            db, executable, self.config, tracer=tracer, provenance=provenance
        )
        if checkpoint_dir is None:
            self.checkpoint: Optional[CheckpointStore] = None
        elif isinstance(checkpoint_dir, CheckpointStore):
            self.checkpoint = checkpoint_dir
        else:
            self.checkpoint = CheckpointStore(checkpoint_dir)
        if self.checkpoint is not None and self.config.extract_having:
            raise ExtractionError(
                "checkpoint/resume is not supported with the §7 HAVING "
                "pipeline (its module re-entry defeats per-module snapshots)"
            )

    def extract(self) -> ExtractionOutcome:
        """Run the pipeline under a root ``pipeline`` span covering it all."""
        session = self.session
        tracer = session.tracer
        tags = None
        if tracer.enabled:
            tags = {
                "executable": session.executable.name,
                "db_tables": len(session.silo.table_names),
                "db_rows": session.silo.total_rows(),
                "having_pipeline": self.config.extract_having,
                "jobs": session.scheduler.jobs,
            }
        session.budget.start()
        with tracer.span("extraction", kind="pipeline", tags=tags) as root:
            try:
                outcome = (
                    self._extract_with_having()
                    if self.config.extract_having
                    else self._extract()
                )
            finally:
                # Terminal guarantee: whatever happened — success, verdict,
                # budget stop, or a crash unwinding through here — the silo
                # leaves this method byte-identical to D_I, and any isolation
                # workers are shut down.
                session.restore_silo_to_di()
                session.close()
                self._export_cache_metrics()
                if tracer.enabled and session.budget.enabled:
                    root.set_tags(
                        **{
                            f"budget_{key}": value
                            for key, value in session.budget.snapshot().items()
                            if key != "limits"
                        }
                    )
            if session.budget.enabled and outcome.budget is None:
                outcome.budget = session.budget.snapshot()
            outcome.caches = session.cache_stats()
            if session.provenance.enabled:
                session.provenance.observation(
                    "pipeline",
                    target=outcome.verdict,
                    detail=(
                        f"extraction finished: "
                        f"{outcome.stats.total_invocations} invocations, "
                        f"{len(session.provenance.events)} evidence events"
                    ),
                )
                session.provenance.flush()
            if tracer.enabled:
                root.set_tags(
                    tables=list(outcome.query.tables),
                    invocations=outcome.stats.total_invocations,
                    modules=sorted(outcome.stats.modules),
                    verdict=outcome.verdict,
                    caches=outcome.caches,
                )
                if outcome.degradations:
                    root.set_tag(
                        "degraded_modules",
                        [d.module for d in outcome.degradations],
                    )
                if tracer.metrics is not None:
                    tracer.metrics.counter("extractions_total").inc()
            return outcome

    def extract_certified(self) -> ExtractionOutcome:
        """Extract, then certify: the CEGIS loop of ``repro.veriq``.

        Runs the standard pipeline and hands the outcome to the bounded
        symbolic verifier; each counterexample is replayed as a real sandbox
        probe and absorbed into D_I for a fresh extraction round.  The final
        outcome carries the verifier's verdict in ``outcome.certify``
        ("certificate", "counterexample", or "unsupported" for candidates
        outside the certifiable class — callers fall back to the EQC
        confidence vector then).
        """
        from repro.veriq.cegis import certify_extraction

        return certify_extraction(self)

    def _export_cache_metrics(self) -> None:
        """Fold the run's cache counters into the metrics registry (once).

        The caches count every lookup internally; exporting the totals at
        extraction end — rather than ticking per hit — keeps the engine and
        invocation hot paths free of registry traffic.
        """
        session = self.session
        metrics = session.tracer.metrics
        if metrics is None:
            return
        if session.silo.plan_cache is not None:
            stats = session.silo.plan_cache.stats()
            metrics.counter("plan_cache_hits_total").inc(stats["hits"])
            metrics.counter("plan_cache_misses_total").inc(stats["misses"])
            metrics.counter("plan_cache_evictions_total").inc(stats["evictions"])
        if session.memo is not None:
            stats = session.memo.stats()
            metrics.counter("invocation_cache_hits_total").inc(stats["hits"])
            metrics.counter("invocation_cache_misses_total").inc(stats["misses"])
            metrics.counter("invocation_cache_bypass_total").inc(
                stats["bypasses"]
            )

    # -- the standard (Figure 3) pipeline ----------------------------------

    def _steps(self) -> list[_Step]:
        steps = [_Step("setup", True, _step_setup)]
        if self.config.eqc_guard:
            steps.append(_Step("eqc_preflight", False, _step_eqc_preflight))
        steps += [
            _Step("from_clause", True, _step_from_clause),
            _Step("minimizer", True, _step_minimizer),
            _Step("joins", True, _step_joins),
            _Step("filters", True, _step_filters),
        ]
        if self.config.extract_disjunctions:
            steps.append(_Step("disjunctions", False, _step_disjunctions))
        steps += [
            _Step("projections", True, _step_projections),
            _Step("group_by", True, _step_group_by),
            _Step("aggregations", True, _step_aggregations),
            _Step("order_by", False, _step_order_by),
            _Step("limit", False, _step_limit),
        ]
        if self.config.run_checker:
            steps.append(_Step("checker", False, _step_checker))
        if self.config.eqc_guard:
            steps.append(_Step("eqc_postflight", False, _step_eqc_postflight))
        return steps

    def _extract(self) -> ExtractionOutcome:
        session = self.session
        store = self.checkpoint
        completed: set[str] = set()
        degradations: list[Degradation] = []
        resumed_modules: list[str] = []

        if store is not None:
            state = store.load()
            if state is not None:
                completed = restore_session(session, state)
                degradations = [
                    Degradation(**payload) for payload in state["degradations"]
                ]
                resumed_modules = sorted(completed)
                logger.info(
                    "resuming from checkpoint %s: skipping %s",
                    store.path,
                    resumed_modules,
                )

        ctx = _PipelineContext()
        verdict = "ok"
        try:
            for step in self._steps():
                if step.name in completed:
                    continue
                # Re-materialize the resident probe state (D^1) from the
                # recorded rows: every step starts from D_I + D^1, and every
                # step exit below restores plain D_I — the sandbox invariant.
                session.materialize_resident()
                try:
                    step.fn(session, ctx)
                except (BudgetExhausted, WorkerQuarantined) as error:
                    session.restore_silo_to_di()
                    if self.config.fail_fast:
                        raise
                    # Nothing further can run — the budget is spent, or the
                    # supervisor refuses to respawn workers for an executable
                    # that keeps crashing them.  Record the degradation and
                    # stop the pipeline with whatever has been extracted.
                    degradations.append(
                        Degradation(
                            module=step.name,
                            error=type(error).__name__,
                            message=str(error),
                        )
                    )
                    verdict = (
                        "quarantined"
                        if isinstance(error, WorkerQuarantined)
                        else "budget_exhausted"
                    )
                    logger.warning(
                        "pipeline stopped in %s: %s",
                        step.name,
                        error,
                    )
                    if session.tracer.metrics is not None:
                        session.tracer.metrics.counter("degradations_total").inc()
                    break
                except ReproError as error:
                    session.restore_silo_to_di()
                    if (
                        step.essential
                        or self.config.fail_fast
                        or isinstance(error, UnsupportedQueryError)
                    ):
                        raise
                    degradations.append(
                        Degradation(
                            module=step.name,
                            error=type(error).__name__,
                            message=str(error),
                        )
                    )
                    logger.warning(
                        "module %s degraded (best-effort): %s", step.name, error
                    )
                    if session.tracer.metrics is not None:
                        session.tracer.metrics.counter("degradations_total").inc()
                else:
                    session.restore_silo_to_di()
                if self.config.sandbox_verify and not session.silo_matches_di():
                    raise ExtractionError(
                        f"sandbox invariant violated after step {step.name!r}: "
                        "silo does not match D_I",
                        module=step.name,
                    )
                completed.add(step.name)
                if store is not None:
                    # Saved while the silo provably equals D_I, so a resumed
                    # run can verify the instance via the content fingerprint.
                    try:
                        store.save(
                            snapshot_session(
                                session,
                                sorted(completed),
                                [d.to_dict() for d in degradations],
                            )
                        )
                    except StorageExhausted as error:
                        # A full disk must not kill a healthy extraction —
                        # drop durability, keep going, and say so.
                        degradations.append(
                            Degradation(
                                module=step.name,
                                error="StorageExhausted",
                                message=str(error),
                            )
                        )
                        logger.warning(
                            "checkpointing disabled after %s: %s", step.name, error
                        )
                        if session.tracer.metrics is not None:
                            session.tracer.metrics.counter(
                                "storage_exhausted_total"
                            ).inc()
                        store = None
                if self.step_listener is not None:
                    self.step_listener(step.name)
                if self.pause_check is not None and self.pause_check():
                    # The checkpoint above is already durable, so the run is
                    # immediately resumable; raised outside the step's own
                    # try so the drain signal is never degraded away.
                    raise ExtractionPaused(step.name)
        except ExtractionError as error:
            # Covers the guard's UnsupportedQueryError, the checker's
            # CheckFailedError, and any probe-inconsistency ExtractionError:
            # inside EQC the pipeline's dialogue is contradiction-free, so a
            # contradiction is out-of-class evidence, not just a failure.
            if self.config.out_of_class_action != "verdict":
                raise
            return self._out_of_class_outcome(error, ctx, degradations, resumed_modules)

        if store is not None:
            store.clear()

        report = (
            eqc_guard.build_report(ctx.eqc_signals) if self.config.eqc_guard else None
        )
        return ExtractionOutcome(
            query=session.query,
            sql=session.query.sql,
            stats=session.stats,
            checker_report=ctx.checker_report,
            degradations=degradations,
            resumed_modules=resumed_modules,
            verdict=verdict,
            eqc=report,
            budget=session.budget.snapshot() if session.budget.enabled else None,
        )

    def _out_of_class_outcome(
        self,
        error: ReproError,
        ctx: _PipelineContext,
        degradations: list[Degradation],
        resumed_modules: list[str],
    ) -> ExtractionOutcome:
        """Refuse to emit SQL: package the evidence as a structured verdict."""
        session = self.session
        extra = None
        if not any(
            s.severity >= eqc_guard.OUT_OF_CLASS_THRESHOLD for s in ctx.eqc_signals
        ):
            extra = eqc_guard.EqcSignal(
                probe=type(error).__name__,
                severity=1.0,
                clauses=eqc_guard.CLAUSES,
                detail=str(error),
            )
        report = eqc_guard.build_report(ctx.eqc_signals, extra=extra)
        report.verdict = "out_of_class"
        logger.warning("extraction verdict: out_of_class (%s)", error)
        if session.tracer.metrics is not None:
            session.tracer.metrics.counter("out_of_class_total").inc()
        return ExtractionOutcome(
            query=session.query,
            sql="",
            stats=session.stats,
            checker_report=ctx.checker_report,
            degradations=degradations,
            resumed_modules=resumed_modules,
            verdict="out_of_class",
            eqc=report,
            budget=session.budget.snapshot() if session.budget.enabled else None,
        )

    def _extract_with_having(self) -> ExtractionOutcome:
        from repro.core import having as having_module

        return having_module.extract_with_having(self.session)
