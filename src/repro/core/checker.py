"""Extraction checker (paper §5.5).

Two complementary verification suites run after assembly:

1. **Randomized differential testing** — several randomized databases are
   generated (join-aligned keys, a mix of filter-satisfying and
   filter-violating values) and the hidden application and the extracted
   query are executed side by side.  Results must agree as multisets, and —
   when an ordering was extracted — by position-dependent checksum on the
   ordered prefix.
2. **XData-lite targeted databases** — small instances crafted to kill common
   extraction mutants: filter boundary probes (values at and just outside the
   extracted constants), join-breaking rows, group-merging rows, and a
   limit-tripping instance.

A mismatch raises :class:`CheckFailedError` (strict mode) or is reported in
the returned :class:`CheckReport`.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field

from repro.core.dgen import DgenBuilder
from repro.core.model import NumericFilter, TextFilter
from repro.core.session import ExtractionSession
from repro.core.svalues import SValueError, SValueSource
from repro.engine.result import Result
from repro.errors import ExtractionError
from repro.sgraph.schema_graph import ColumnNode


class CheckFailedError(ExtractionError):
    """The extracted query disagreed with the hidden application."""


@dataclass
class CheckReport:
    databases_checked: int = 0
    mismatches: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.mismatches


def verify_extraction(session: ExtractionSession, svalues: SValueSource) -> CheckReport:
    """Run both verification suites against the assembled query."""
    with session.module("checker"):
        report = CheckReport()
        sql = session.query.sql
        for rows in _candidate_databases(session, svalues):
            report.databases_checked += 1
            _compare_once(session, sql, rows, report)
        if session.config.checker_strict and not report.passed:
            raise CheckFailedError(
                "extracted query disagrees with the application on "
                f"{len(report.mismatches)} checker database(s): "
                + "; ".join(report.mismatches[:3])
            )
        return report


def _compare_once(
    session: ExtractionSession, sql: str, rows: dict[str, list[tuple]], report: CheckReport
) -> None:
    # Both sides must see the *same* physical database, so the probe
    # multiplier (a HAVING-pipeline internal device) is deliberately not
    # applied here: rows are swapped in directly.
    from repro.errors import ReproError

    snapshot = {name: session.silo.rows(name) for name in rows}
    try:
        for name, table_rows in rows.items():
            session.silo.replace_rows(name, table_rows)
        hidden = session.run()
        try:
            extracted = session.silo.execute(sql)
        except ReproError as exc:
            report.mismatches.append(f"extracted SQL failed to execute: {exc}")
            return
    finally:
        for name, table_rows in snapshot.items():
            session.silo.replace_rows(name, table_rows)

    limit = session.query.limit
    if limit is not None and hidden.row_count == limit:
        # A tripped LIMIT under ordering ties is nondeterministic: any row
        # tied on the full ordering key at the cut boundary may survive, so
        # equality is required only off the boundary key.
        if not _limited_results_match(session, hidden, extracted, report):
            return
    elif not _multisets_match(hidden, extracted):
        report.mismatches.append(
            f"multiset mismatch ({hidden.row_count} vs {extracted.row_count} rows)"
        )
        return
    if session.query.order_by and not _ordered_prefix_matches(
        session, hidden, extracted
    ):
        report.mismatches.append("ordering mismatch (position checksum differs)")


def _limited_results_match(
    session: ExtractionSession, hidden: Result, extracted: Result, report: CheckReport
) -> bool:
    """Comparison for results cut by LIMIT: boundary-tied rows may differ."""
    if hidden.row_count != extracted.row_count:
        report.mismatches.append(
            f"limit cardinality mismatch ({hidden.row_count} vs "
            f"{extracted.row_count} rows)"
        )
        return False
    if not session.query.order_by:
        return True  # LIMIT without ORDER BY: any n-row subset is valid
    key_positions = [
        session.query.output_named(spec.output_name).position
        for spec in session.query.order_by
    ]

    def keyed(result: Result):
        rows = _normalize(result)
        return [tuple(row[i] for i in key_positions) for row in rows], rows

    keys_h, rows_h = keyed(hidden)
    keys_e, rows_e = keyed(extracted)
    if keys_h != keys_e:
        report.mismatches.append("limit ordering-key mismatch")
        return False
    boundary = keys_h[-1]
    from collections import Counter

    off_boundary_h = Counter(
        row for key, row in zip(keys_h, rows_h) if key != boundary
    )
    off_boundary_e = Counter(
        row for key, row in zip(keys_e, rows_e) if key != boundary
    )
    if off_boundary_h != off_boundary_e:
        report.mismatches.append("limit off-boundary row mismatch")
        return False
    return True


def normalize_rows(result: Result) -> list[tuple]:
    """Result rows with floats rounded to 6 places (comparison canon).

    Shared with the bounded symbolic verifier (:mod:`repro.veriq`), so both
    verification layers agree on what counts as "the same value".
    """
    rows = []
    for row in result.rows:
        rows.append(
            tuple(round(v, 6) if isinstance(v, float) else v for v in row)
        )
    return rows


def multisets_match(a: Result, b: Result) -> bool:
    """Order-insensitive result equality under :func:`normalize_rows`."""
    from collections import Counter

    return Counter(normalize_rows(a)) == Counter(normalize_rows(b))


# backward-compatible private aliases (internal call sites below)
_normalize = normalize_rows
_multisets_match = multisets_match


def _ordered_prefix_matches(session: ExtractionSession, a: Result, b: Result) -> bool:
    """Compare ordering on the extracted sort keys only.

    Rows tied on every extracted ordering column may legitimately appear in
    any relative order, so the checksum covers the ordering-key projection of
    each row rather than whole rows.
    """
    key_positions = [
        session.query.output_named(spec.output_name).position
        for spec in session.query.order_by
    ]
    keys_a = [tuple(row[i] for i in key_positions) for row in _normalize(a)]
    keys_b = [tuple(row[i] for i in key_positions) for row in _normalize(b)]
    return keys_a == keys_b


# --- candidate database generation -----------------------------------------


def _candidate_databases(session: ExtractionSession, svalues: SValueSource):
    yield from _random_databases(session, svalues)
    yield from _xdata_lite_databases(session, svalues)


def _random_databases(session: ExtractionSession, svalues: SValueSource):
    config = session.config
    for round_index in range(config.checker_random_databases):
        n = config.checker_rows_per_table
        yield _build_random(session, svalues, n, salt=round_index)


def _build_random(
    session: ExtractionSession, svalues: SValueSource, n: int, salt: int
) -> dict[str, list[tuple]]:
    rng = session.rng
    overrides: dict[ColumnNode, list] = {}
    row_counts = {table: n for table in session.query.tables}

    # Join keys: aligned 1..n with a sprinkling of misaligned keys so joins
    # are exercised both ways.
    for clique in session.query.join_cliques:
        for member in clique.sorted_columns():
            values = list(range(1, n + 1))
            for i in range(n):
                if rng.random() < 0.2:
                    values[i] = rng.randint(1, n + 3)
            overrides[member] = values

    for table in session.query.tables:
        for column in session.table_columns(table):
            if column in overrides:
                continue
            if session.is_key_column(column):
                overrides[column] = [rng.randint(1, n) for _ in range(n)]
                continue
            overrides[column] = [
                _random_value(session, svalues, column, rng) for _ in range(n)
            ]
    builder = DgenBuilder(session, svalues)
    return builder.build(row_counts, overrides)


def _random_value(session, svalues: SValueSource, column: ColumnNode, rng):
    """A mix of s-values, original-instance values, and random domain values.

    The D_I samples matter: they exercise value regions the extraction never
    probed, catching e.g. a hidden disjunct whose second constant an
    overfitted candidate query would silently drop.
    """
    col_type = session.column_type(column)
    dice = rng.random()
    if dice < 0.3:
        samples = session.di_samples.get(column)
        if samples:
            return rng.choice(samples)
    if dice < 0.75:
        try:
            pool = svalues.distinct(column, min(6, svalues.capacity(column)))
            return rng.choice(pool)
        except SValueError:
            pass
    if col_type.is_textual:
        alphabet = "abcdefgh"
        max_length = min(getattr(col_type, "max_length", 5), 5)
        return "".join(
            rng.choice(alphabet) for _ in range(rng.randint(1, max(1, max_length)))
        )
    domain = session.column_domain(column)
    if col_type.is_temporal:
        span = (domain.hi - domain.lo).days
        return domain.lo + datetime.timedelta(days=rng.randint(0, span))
    if hasattr(col_type, "scale"):
        lo = max(domain.lo, -1000.0)
        hi = min(domain.hi, 10000.0)
        return round(rng.uniform(lo, hi), col_type.scale)
    lo = max(domain.lo, -1000)
    hi = min(domain.hi, 10000)
    return rng.randint(lo, hi)


def _xdata_lite_databases(session: ExtractionSession, svalues: SValueSource):
    builder = DgenBuilder(session, svalues)
    yield from _filter_boundary_databases(session, svalues, builder)
    yield from _join_breaking_database(session, svalues, builder)
    yield from _limit_probe_database(session, svalues, builder)


def _filter_boundary_databases(session, svalues: SValueSource, builder: DgenBuilder):
    """Rows at and just beyond every extracted filter constant."""
    for predicate in session.query.filters:
        column = predicate.column
        values = _boundary_values(session, predicate)
        if not values:
            continue
        n = len(values)
        overrides: dict[ColumnNode, list] = {column: values}
        row_counts = {table: n for table in session.query.tables}
        for clique in session.query.join_cliques:
            for member in clique.sorted_columns():
                overrides[member] = list(range(1, n + 1))
        for table in session.query.tables:
            for other in session.table_columns(table):
                if other in overrides:
                    continue
                overrides[other] = [svalues.value(other)] * n
        yield builder.build(row_counts, overrides)


def _boundary_values(session, predicate) -> list:
    from repro.core.model import InListFilter, MultiRangeFilter

    if isinstance(predicate, InListFilter):
        variants = set(predicate.values)
        variants.add(predicate.values[0] + "x")
        variants.add("zz")
        max_length = getattr(session.column_type(predicate.column), "max_length", 10**6)
        return [v for v in variants if v and len(v) <= max_length]
    if isinstance(predicate, MultiRangeFilter):
        col_type = session.column_type(predicate.column)
        step = _unit_step(col_type)
        values = []
        for lo, hi in predicate.intervals:
            for candidate in (lo, _shift(lo, -step), hi, _shift(hi, step)):
                if predicate.domain_lo <= candidate <= predicate.domain_hi:
                    values.append(candidate)
        seen = set()
        return [v for v in values if not (v in seen or seen.add(v))]
    if isinstance(predicate, TextFilter):
        pattern = predicate.pattern
        base = pattern.replace("%", "").replace("_", "a")
        variants = {base, base + "x", "x" + base, base[:-1] if base else "y", "zz"}
        max_length = getattr(session.column_type(predicate.column), "max_length", 10**6)
        return [v for v in variants if v and len(v) <= max_length]
    from repro.core.model import NullFilter

    if isinstance(predicate, NullFilter):
        # rows straddling the predicate: NULLs and non-NULLs side by side
        col_type = session.column_type(predicate.column)
        concrete = "x" if col_type.is_textual else session.column_domain(
            predicate.column
        ).lo
        return [None, concrete, None, concrete]
    assert isinstance(predicate, NumericFilter)
    col_type = session.column_type(predicate.column)
    step = _unit_step(col_type)
    values = []
    for bound in (predicate.lo, predicate.hi):
        for candidate in (bound, _shift(bound, -step), _shift(bound, step)):
            if predicate.domain_lo <= candidate <= predicate.domain_hi:
                values.append(candidate)
    # dedupe preserving order
    seen = set()
    unique = []
    for v in values:
        if v not in seen:
            seen.add(v)
            unique.append(v)
    return unique


def _unit_step(col_type):
    if getattr(col_type, "is_temporal", False):
        return datetime.timedelta(days=1)
    scale = getattr(col_type, "scale", None)
    if scale is not None:
        return 10**-scale
    return 1


def _shift(value, step):
    if isinstance(value, datetime.date):
        return value + step
    if isinstance(step, float):
        return round(value + step, 9)
    return value + step


def _join_breaking_database(session, svalues: SValueSource, builder: DgenBuilder):
    """Aligned keys plus one deliberately dangling key per clique."""
    if not session.query.join_cliques:
        return
    n = 4
    overrides: dict[ColumnNode, list] = {}
    row_counts = {table: n for table in session.query.tables}
    for clique_index, clique in enumerate(session.query.join_cliques):
        for member_index, member in enumerate(clique.sorted_columns()):
            values = list(range(1, n + 1))
            values[(clique_index + member_index) % n] = 90 + member_index
            overrides[member] = values
    for table in session.query.tables:
        for column in session.table_columns(table):
            if column in overrides:
                continue
            try:
                pool = svalues.distinct(column, min(n, svalues.capacity(column)))
            except SValueError:
                pool = [svalues.value(column)]
            overrides[column] = [pool[i % len(pool)] for i in range(n)]
    yield builder.build(row_counts, overrides)


def _limit_probe_database(session, svalues: SValueSource, builder: DgenBuilder):
    """More result rows than the extracted limit (if any)."""
    limit = session.query.limit
    if limit is None:
        return
    n = min(limit + 3, session.config.limit_probe_cap)
    overrides: dict[ColumnNode, list] = {}
    row_counts = {table: n for table in session.query.tables}
    for clique in session.query.join_cliques:
        for member in clique.sorted_columns():
            overrides[member] = list(range(1, n + 1))
    for column in _limit_group_columns(session):
        if column in overrides:
            continue
        try:
            overrides[column] = svalues.distinct(column, n)
        except SValueError:
            pass
    # Give ordering arguments distinct values too, so the limit boundary is
    # tie-free and both engines cut the same rows deterministically.
    for spec in session.query.order_by:
        output = session.query.output_named(spec.output_name)
        if output.function is None:
            continue
        for dep in output.function.deps:
            if dep in overrides:
                continue
            try:
                overrides[dep] = svalues.distinct(dep, n)
            except SValueError:
                pass
    yield builder.build(row_counts, overrides)


def _limit_group_columns(session) -> list[ColumnNode]:
    seen = set()
    result = []
    for column in session.query.group_by:
        clique = session.query.clique_of(column)
        if clique is not None:
            if clique in seen:
                continue
            seen.add(clique)
        result.append(column)
    return result
