"""Intermediate representation of an extracted query.

Every pipeline module contributes one field of :class:`ExtractedQuery`
(following the paper's template ``Select (P_E, A_E) From T_E Where J_E ∧ F_E
Group By G_E Order By O_E Limit l_E``); the assembler renders the complete
canonical SQL text.
"""

from __future__ import annotations

import datetime
import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.engine.types import format_sql_literal
from repro.sgraph.schema_graph import ColumnNode

_COEFF_TOLERANCE = 1e-6


def _clean_number(value: float):
    """Snap solver output to exact ints / short decimals for rendering."""
    if isinstance(value, int):
        return value
    rounded = round(value)
    if abs(value - rounded) < _COEFF_TOLERANCE:
        return int(rounded)
    short = round(value, 6)
    return short


@dataclass(frozen=True)
class NumericFilter:
    """A range filter ``lo <= column <= hi`` over a numeric or date column.

    ``lo``/``hi`` equal to the column's domain limits denote an open side;
    the canonical operator (=, <=, >=, between) is derived on rendering.
    """

    column: ColumnNode
    lo: object
    hi: object
    domain_lo: object
    domain_hi: object

    @property
    def is_equality(self) -> bool:
        return self.lo == self.hi

    @property
    def bounded_below(self) -> bool:
        return self.lo > self.domain_lo

    @property
    def bounded_above(self) -> bool:
        return self.hi < self.domain_hi

    def operator(self) -> str:
        if self.is_equality:
            return "="
        if self.bounded_below and self.bounded_above:
            return "between"
        if self.bounded_below:
            return ">="
        return "<="

    def contains(self, value) -> bool:
        return self.lo <= value <= self.hi

    def to_sql(self) -> str:
        op = self.operator()
        name = f"{self.column.table}.{self.column.column}"
        if op == "=":
            return f"{name} = {format_sql_literal(self.lo)}"
        if op == "between":
            return (
                f"{name} between {format_sql_literal(self.lo)} "
                f"and {format_sql_literal(self.hi)}"
            )
        if op == ">=":
            return f"{name} >= {format_sql_literal(self.lo)}"
        return f"{name} <= {format_sql_literal(self.hi)}"


@dataclass(frozen=True)
class TextFilter:
    """An equality or LIKE filter on a textual column."""

    column: ColumnNode
    pattern: str  # may contain % / _ wildcards

    @property
    def is_equality(self) -> bool:
        return "%" not in self.pattern and "_" not in self.pattern

    def to_sql(self) -> str:
        op = "=" if self.is_equality else "like"
        return (
            f"{self.column.table}.{self.column.column} {op} "
            f"{format_sql_literal(self.pattern)}"
        )


@dataclass(frozen=True)
class InListFilter:
    """A disjunction of equality constants: ``column in (v1, v2, ...)``.

    Produced by the optional disjunction-extraction extension (paper §9
    future work); the constants are those *witnessed* by the initial
    instance — see :mod:`repro.core.disjunctions` for the restrictions.
    """

    column: ColumnNode
    values: tuple

    def __post_init__(self):
        if len(self.values) < 2:
            raise ValueError("an IN-list filter needs at least two constants")

    @property
    def is_equality(self) -> bool:
        return False

    def to_sql(self) -> str:
        rendered = ", ".join(format_sql_literal(v) for v in sorted(self.values))
        return f"{self.column.table}.{self.column.column} in ({rendered})"


@dataclass(frozen=True)
class MultiRangeFilter:
    """A disjunction of ranges: ``(a1 <= col <= b1) or (a2 <= col <= b2) ...``

    Intervals are closed, pairwise disjoint and sorted; sides touching the
    column domain render as one-sided comparisons.  Produced by the optional
    disjunction-extraction extension (paper §9 future work).
    """

    column: ColumnNode
    intervals: tuple[tuple, ...]  # ((lo, hi), ...)
    domain_lo: object
    domain_hi: object

    def __post_init__(self):
        if len(self.intervals) < 2:
            raise ValueError("a multi-range filter needs at least two intervals")

    @property
    def is_equality(self) -> bool:
        return False

    def contains(self, value) -> bool:
        return any(lo <= value <= hi for lo, hi in self.intervals)

    def _side_sql(self, lo, hi) -> str:
        single = NumericFilter(
            column=self.column,
            lo=lo,
            hi=hi,
            domain_lo=self.domain_lo,
            domain_hi=self.domain_hi,
        )
        return single.to_sql()

    def to_sql(self) -> str:
        parts = [self._side_sql(lo, hi) for lo, hi in self.intervals]
        return "(" + " or ".join(parts) + ")"


@dataclass(frozen=True)
class NullFilter:
    """``column is null`` / ``column is not null``.

    Produced by the opt-in NULL-predicate extension (the paper defers NULL
    handling to its technical report; see DESIGN.md §5 for the probe design
    and its ambiguity limits).
    """

    column: ColumnNode
    negated: bool = False  # False = IS NULL, True = IS NOT NULL

    @property
    def is_equality(self) -> bool:
        return not self.negated  # IS NULL pins the column to a single "value"

    def to_sql(self) -> str:
        suffix = "is not null" if self.negated else "is null"
        return f"{self.column.table}.{self.column.column} {suffix}"


Filter = NumericFilter | TextFilter | InListFilter | MultiRangeFilter | NullFilter


@dataclass(frozen=True)
class JoinClique:
    """A set of key columns pairwise equated by the query's equi-joins."""

    columns: frozenset[ColumnNode]

    def __post_init__(self):
        if len(self.columns) < 2:
            raise ValueError("a join clique needs at least two columns")

    def sorted_columns(self) -> list[ColumnNode]:
        return sorted(self.columns)

    def __contains__(self, column: ColumnNode) -> bool:
        return column in self.columns

    def representative(self) -> ColumnNode:
        """Canonical member used to stand for the whole clique."""
        return self.sorted_columns()[0]

    def tables(self) -> set[str]:
        return {c.table for c in self.columns}

    def predicates(self) -> list[str]:
        """Chained pairwise equalities covering the clique."""
        ordered = self.sorted_columns()
        return [
            f"{a.table}.{a.column} = {b.table}.{b.column}"
            for a, b in zip(ordered, ordered[1:])
        ]


@dataclass(frozen=True)
class ScalarFunction:
    """A multilinear scalar function of database columns (paper §4.5).

    ``coefficients`` maps index subsets of ``deps`` (as sorted tuples) to
    their coefficients: ``f = Σ_S coeff[S] * Π_{i∈S} deps[i]``.  The empty
    subset holds the constant term.  ``deps`` is empty for constants.
    """

    deps: tuple[ColumnNode, ...]
    coefficients: tuple[tuple[tuple[int, ...], float], ...]

    @staticmethod
    def identity(column: ColumnNode) -> "ScalarFunction":
        return ScalarFunction(deps=(column,), coefficients=(((0,), 1.0),))

    @staticmethod
    def constant(value) -> "ScalarFunction":
        return ScalarFunction(deps=(), coefficients=(((), value),))

    @staticmethod
    def from_solution(
        deps: Sequence[ColumnNode], coeffs_by_subset: dict[tuple[int, ...], float]
    ) -> "ScalarFunction":
        items = []
        for subset in sorted(coeffs_by_subset, key=lambda s: (len(s), s)):
            coeff = coeffs_by_subset[subset]
            if isinstance(coeff, float) and abs(coeff) < _COEFF_TOLERANCE:
                continue
            items.append((tuple(subset), _clean_number(coeff)))
        return ScalarFunction(deps=tuple(deps), coefficients=tuple(items))

    @property
    def is_identity(self) -> bool:
        return (
            len(self.deps) == 1
            and len(self.coefficients) == 1
            and self.coefficients[0][0] == (0,)
            and self.coefficients[0][1] == 1
        )

    @property
    def is_constant(self) -> bool:
        return not self.deps

    def constant_value(self):
        for subset, coeff in self.coefficients:
            if subset == ():
                return coeff
        return 0

    def evaluate(self, values: dict[ColumnNode, object]):
        """Evaluate the function given values for its dependency columns."""
        if self.is_constant:
            return self.constant_value()  # may be non-numeric (e.g. a string)
        if self.is_identity:
            # Identity works for every type (dates, strings); the multilinear
            # arithmetic below only applies to numeric functions.
            return values[self.deps[0]]
        total = 0
        for subset, coeff in self.coefficients:
            if not subset:
                total += coeff
                continue
            term = 1
            for index in subset:
                term = term * values[self.deps[index]]
            total += coeff * term
        return total

    def to_sql(self) -> str:
        if self.is_constant:
            return format_sql_literal(self.constant_value())
        if self.is_identity:
            return f"{self.deps[0].table}.{self.deps[0].column}"
        parts: list[str] = []
        for subset, coeff in self.coefficients:
            product = " * ".join(
                f"{self.deps[i].table}.{self.deps[i].column}" for i in subset
            )
            if not subset:
                term = format_sql_literal(coeff)
            elif coeff == 1:
                term = product
            elif coeff == -1:
                term = f"-{product}"
            else:
                term = f"{format_sql_literal(coeff)} * {product}"
            parts.append(term)
        rendered = " + ".join(parts)
        return rendered.replace("+ -", "- ")


@dataclass(frozen=True)
class OutputColumn:
    """One column of the query's result, in output position order."""

    name: str
    position: int
    #: scalar function of base columns (None only for count(*))
    function: Optional[ScalarFunction]
    #: aggregate applied on top of the function; None = native projection
    aggregate: Optional[str] = None
    count_star: bool = False

    def select_sql(self) -> str:
        if self.count_star:
            body = "count(*)"
        elif self.aggregate:
            body = f"{self.aggregate}({self.function.to_sql()})"
        else:
            body = self.function.to_sql()
        if self.name and self.name != body:
            return f"{body} as {self.name}"
        return body


@dataclass(frozen=True)
class OrderSpec:
    output_name: str
    descending: bool

    def to_sql(self) -> str:
        return f"{self.output_name} {'desc' if self.descending else 'asc'}"


@dataclass(frozen=True)
class HavingPredicate:
    """``lo <= agg(column) <= hi`` — open sides use domain limits."""

    aggregate: str  # 'min' | 'max' | 'sum' | 'avg' | 'count'
    column: Optional[ColumnNode]  # None for count(*)
    lo: object
    hi: object
    domain_lo: object
    domain_hi: object

    def to_sql(self) -> str:
        if self.column is None:
            target = "count(*)"
        else:
            target = f"{self.aggregate}({self.column.table}.{self.column.column})"
        clauses = []
        if self.lo is not None and self.lo > self.domain_lo:
            clauses.append(f"{target} >= {format_sql_literal(self.lo)}")
        if self.hi is not None and self.hi < self.domain_hi:
            clauses.append(f"{target} <= {format_sql_literal(self.hi)}")
        return " and ".join(clauses) if clauses else "true"


@dataclass
class ExtractedQuery:
    """The complete extraction output (the paper's ``Q_E``)."""

    tables: list[str] = field(default_factory=list)
    join_cliques: list[JoinClique] = field(default_factory=list)
    filters: list[Filter] = field(default_factory=list)
    outputs: list[OutputColumn] = field(default_factory=list)
    group_by: list[ColumnNode] = field(default_factory=list)
    order_by: list[OrderSpec] = field(default_factory=list)
    limit: Optional[int] = None
    having: list[HavingPredicate] = field(default_factory=list)
    #: true when an aggregation exists without any grouping column
    ungrouped_aggregation: bool = False

    @property
    def projections(self) -> list[OutputColumn]:
        """P_E — native (unaggregated) output columns."""
        return [o for o in self.outputs if o.aggregate is None and not o.count_star]

    @property
    def aggregations(self) -> list[OutputColumn]:
        """A_E — aggregated output columns."""
        return [o for o in self.outputs if o.aggregate is not None or o.count_star]

    @property
    def is_aggregated(self) -> bool:
        return bool(self.group_by) or self.ungrouped_aggregation or bool(self.aggregations)

    @property
    def sql(self) -> str:
        from repro.core.assembler import assemble_sql

        return assemble_sql(self)

    def filter_on(self, column: ColumnNode) -> Optional[Filter]:
        for predicate in self.filters:
            if predicate.column == column:
                return predicate
        return None

    def clique_of(self, column: ColumnNode) -> Optional[JoinClique]:
        for clique in self.join_cliques:
            if column in clique:
                return clique
        return None

    def output_named(self, name: str) -> OutputColumn:
        for output in self.outputs:
            if output.name == name:
                return output
        raise KeyError(f"no output column named {name!r}")
