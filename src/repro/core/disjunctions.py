"""Disjunctive filter extraction — the paper's §9 future-work extension.

The paper concludes that "disjunctions ... could eventually be extracted
under some restrictions"; this module implements one such restricted scheme,
enabled with ``ExtractionConfig(extract_disjunctions=True)``:

* **Witnessed constants.**  Candidate values come from the initial instance's
  per-column samples (``session.di_samples``) plus the standard probe seeds
  (domain extremes, the ``D^1`` anchor).  A disjunct no value of ``D_I``
  witnesses is unobservable to this scheme — the restriction under which
  extraction is sound for the instance at hand (and the built-in checker
  validates the result differentially).
* **Textual columns** → ``col in (v1, v2, ...)``: if the equality constant
  recovered by the standard pipeline has qualifying siblings among the
  witnessed values, the filter generalises to an IN-list.  (Combining extra
  constants with a wildcard pattern is rejected as unsupported.)
* **Numeric/date columns** → a union of closed intervals: every qualifying
  seed outside the intervals found so far spawns edge bisections (the same
  binary searches as §4.4, anchored at that seed), until all witnessed
  qualifying values are covered.  This also captures hole-shaped predicates
  (``a <= col or col >= b``) that the standard Table 2 analysis reads as
  "no filter" because both domain extremes qualify.
"""

from __future__ import annotations

from repro.core.filters import _Axis, _numeric_probe, _text_probe
from repro.core.model import (
    Filter,
    InListFilter,
    MultiRangeFilter,
    NumericFilter,
    TextFilter,
)
from repro.core.session import ExtractionSession
from repro.errors import UnsupportedQueryError
from repro.sgraph.schema_graph import ColumnNode

_MAX_SEEDS = 12


def refine_disjunctions(session: ExtractionSession) -> list[Filter]:
    """Upgrade conjunctive filters to witnessed disjunctions where needed."""
    with session.module("disjunctions"):
        provenance = session.provenance
        refined: list[Filter] = []
        handled: set[ColumnNode] = set()
        for predicate in session.query.filters:
            handled.add(predicate.column)
            upgraded = _refine_existing(session, predicate)
            refined.append(upgraded)
            if provenance.enabled:
                # Claim the witness/bisection probes this predicate's pass
                # issued; the key links back to the conjunctive extraction's
                # chain so the final rendering keeps its full ancestry even
                # when the predicate survives unchanged (different target).
                provenance.refine(
                    "filters",
                    upgraded.to_sql(),
                    "disjunctions",
                    detail=(
                        "witnessed disjunction pass "
                        + (
                            "upgraded the conjunctive predicate"
                            if upgraded is not predicate
                            else "confirmed the conjunctive predicate"
                        )
                    ),
                    key=(
                        "filters",
                        (predicate.column.table, predicate.column.column),
                    ),
                )
        # Columns the standard pipeline saw as filter-free may still carry a
        # hole-shaped numeric disjunction (both domain extremes qualify).
        for table in session.query.tables:
            for column in session.nonkey_columns(table):
                if column in handled:
                    continue
                col_type = session.column_type(column)
                if not (col_type.is_numeric or col_type.is_temporal):
                    continue
                hole = _detect_hole(session, column)
                if hole is not None:
                    refined.append(hole)
                    if provenance.enabled:
                        provenance.accept(
                            "filters",
                            hole.to_sql(),
                            "disjunctions",
                            detail="hole-shaped disjunction found by witnessed seeds",
                            key=("filters", (column.table, column.column)),
                        )
                elif provenance.enabled:
                    # drain this column's hole probes so the next accept's
                    # claim cites only its own evidence
                    provenance.reject(
                        "filters",
                        f"{column.table}.{column.column}",
                        "disjunctions",
                        detail="no witnessed hole: column stays filter-free",
                    )
        session.query.filters = refined
        return refined


# --- textual IN-lists ---------------------------------------------------------


def _refine_existing(session: ExtractionSession, predicate: Filter) -> Filter:
    if isinstance(predicate, TextFilter):
        return _refine_text(session, predicate)
    if isinstance(predicate, NumericFilter):
        return _refine_numeric(session, predicate)
    return predicate


def _refine_text(session: ExtractionSession, predicate: TextFilter) -> Filter:
    from repro.engine.expressions import like_matches

    column = predicate.column
    extra: list[str] = []
    for value in session.di_samples.get(column, [])[:_MAX_SEEDS]:
        if not isinstance(value, str):
            continue
        if like_matches(value, predicate.pattern):
            continue
        if _text_probe(session, column, value):
            extra.append(value)
    if not extra:
        return predicate
    if not predicate.is_equality:
        raise UnsupportedQueryError(
            f"column {column} mixes a wildcard pattern with additional "
            "qualifying constants; that disjunction shape is unsupported"
        )
    return InListFilter(column=column, values=tuple(sorted({predicate.pattern, *extra})))


# --- numeric interval unions -----------------------------------------------------


def _refine_numeric(session: ExtractionSession, predicate: NumericFilter) -> Filter:
    """Re-derive the column's qualifying set from witnessed seeds.

    The standard Case-2/3/4 binary searches assume one contiguous range; with
    a hole between the search endpoints they can return a spanning interval.
    Every seed (the ``D^1`` anchor, the extracted endpoints, the ``D_I``
    samples) is probed individually and intervals are rebuilt from the
    qualifying/failing witness pattern.
    """
    column = predicate.column
    axis = _Axis(session, column)
    seeds = [axis.to_axis(predicate.lo), axis.to_axis(predicate.hi)]
    anchor = session.d1_value(column)
    if anchor is not None:
        seeds.append(axis.to_axis(anchor))
    intervals = _witnessed_intervals(session, column, axis, seeds)
    if not intervals:
        return predicate  # no qualifying witness at all: keep the original
    if len(intervals) == 1:
        lo, hi = intervals[0]
        return NumericFilter(
            column=column,
            lo=axis.from_axis(lo),
            hi=axis.from_axis(hi),
            domain_lo=axis.from_axis(axis.lo),
            domain_hi=axis.from_axis(axis.hi),
        )
    return MultiRangeFilter(
        column=column,
        intervals=tuple((axis.from_axis(lo), axis.from_axis(hi)) for lo, hi in intervals),
        domain_lo=axis.from_axis(axis.lo),
        domain_hi=axis.from_axis(axis.hi),
    )


def _detect_hole(session: ExtractionSession, column: ColumnNode) -> Filter | None:
    """Case-1 columns (both extremes qualify) may hide interior holes."""
    axis = _Axis(session, column)
    sample_axes = [
        axis.to_axis(v)
        for v in session.di_samples.get(column, [])[:_MAX_SEEDS]
        if v is not None
    ]
    if not sample_axes:
        return None  # nothing witnessed: no hole observable
    intervals = _witnessed_intervals(session, column, axis, sample_axes)
    if len(intervals) < 2:
        return None  # no witnessed hole: genuinely filter-free (or unobservable)
    return MultiRangeFilter(
        column=column,
        intervals=tuple((axis.from_axis(lo), axis.from_axis(hi)) for lo, hi in intervals),
        domain_lo=axis.from_axis(axis.lo),
        domain_hi=axis.from_axis(axis.hi),
    )


def _witnessed_intervals(
    session: ExtractionSession,
    column: ColumnNode,
    axis: _Axis,
    extra_seed_axes: list[int],
) -> list[tuple[int, int]]:
    """Qualifying intervals resolved by the witnessed seed pattern.

    Every seed (plus both domain extremes and the ``D_I`` samples) is probed;
    interval edges are bisected between adjacent (qualifying, failing) seed
    pairs.  Two adjacent qualifying seeds with no failing witness between
    them are assumed to share an interval — the documented restriction that
    an unwitnessed disjunct/hole is unobservable to this scheme.
    """
    seeds = {axis.lo, axis.hi}
    seeds.update(extra_seed_axes)
    for value in session.di_samples.get(column, [])[:_MAX_SEEDS]:
        if value is not None:
            seeds.add(axis.to_axis(value))
    ordered = sorted(s for s in seeds if axis.lo <= s <= axis.hi)
    verdict = {s: _numeric_probe(session, column, axis, s) for s in ordered}

    intervals: list[tuple[int, int]] = []
    failing = [s for s in ordered if not verdict[s]]
    for seed in ordered:
        if not verdict[seed]:
            continue
        if intervals and seed <= intervals[-1][1]:
            continue
        below = [f for f in failing if f < seed]
        if below:
            lo_edge = _bisect_edge(session, column, axis, seed, max(below), "down")
        else:
            lo_edge = axis.lo
        above = [f for f in failing if f > seed]
        if above:
            hi_edge = _bisect_edge(session, column, axis, seed, min(above), "up")
        else:
            hi_edge = axis.hi
        intervals.append((lo_edge, hi_edge))
    return _merge(intervals)


def _bisect_edge(
    session: ExtractionSession,
    column: ColumnNode,
    axis: _Axis,
    qualifying: int,
    failing: int,
    direction: str,
) -> int:
    """Boundary between a qualifying point and a failing point.

    ``direction='up'`` walks from ``qualifying`` toward a larger ``failing``
    (returns the interval's upper edge); ``'down'`` is the mirror image.
    The invariant-preserving bisection lands on an edge of *some* qualifying
    interval — with multiple intervals in between, later seed passes cover
    the remainder.
    """
    if direction == "up":
        lo, hi = qualifying, failing - 1
        if lo >= hi:
            return lo
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if _numeric_probe(session, column, axis, mid):
                lo = mid
            else:
                hi = mid - 1
        return lo
    lo, hi = failing + 1, qualifying
    if lo >= hi:
        return hi
    while lo < hi:
        mid = (lo + hi) // 2
        if _numeric_probe(session, column, axis, mid):
            hi = mid
        else:
            lo = mid + 1
    return lo


def _merge(intervals: list[tuple[int, int]]) -> list[tuple[int, int]]:
    merged: list[tuple[int, int]] = []
    for lo, hi in sorted(intervals):
        if merged and lo <= merged[-1][1] + 1:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged
