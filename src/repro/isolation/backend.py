"""The session-facing isolation backend.

:class:`ProcessIsolationBackend` is what :meth:`ExtractionSession._invoke`
delegates to under ``--isolate process``.  Its contract is *observability
parity* with the in-process fast path: a probe that runs in a worker must be
indistinguishable to every layer above the invocation boundary —

* the local executable's ``invocation_count`` / ``total_runtime`` advance
  exactly as they would in-process (the pipeline's per-module accounting and
  the chaos CLI read them);
* ``invocations_total`` and ``invocation_latency_seconds`` tick on the
  session metrics registry, and each invocation opens a ``worker`` span
  (instead of the in-process ``invocation`` span) carrying the worker's
  duration, peak RSS, and crash classification;
* engine rows scanned inside the worker are charged to the session's
  :class:`~repro.resilience.budgets.ResourceBudget` after the fact, so
  budget enforcement is supervisor-side and counted once;
* the silo's ``access_log`` is mirrored from the worker when the From-clause
  trace strategy asked for it, and chaos-injection counts are mirrored onto
  the local :class:`~repro.resilience.faults.FaultyExecutable` so survival
  reports read the same either way.

Clean application errors (engine signals, injected soft faults) are
re-raised exactly as the worker raised them — their types round-trip the
pickle boundary (see the ``__reduce__`` definitions in :mod:`repro.errors`),
so the retry classification and the pipeline's semantic reading of
``UndefinedTableError`` are unchanged.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.errors import ExecutableTimeoutError, WorkerCrashedError
from repro.isolation.supervisor import WorkerPool, WorkerSpec
from repro.obs.trace import NULL_TRACER


def spec_from_config(config) -> WorkerSpec:
    return WorkerSpec(
        memory_limit_bytes=(
            config.worker_memory_limit_mb * 1024 * 1024
            if config.worker_memory_limit_mb
            else None
        ),
        default_timeout=config.worker_default_timeout,
        kill_grace=config.worker_kill_grace,
        quarantine_threshold=config.worker_quarantine_threshold,
        max_respawns=config.worker_max_respawns,
        # One worker per scheduler job, so parallel probe batches don't
        # serialize on a single subprocess.
        pool_size=max(1, int(getattr(config, "jobs", 1) or 1)),
    )


class ProcessIsolationBackend:
    """Routes invocations through a :class:`WorkerPool`, with stat parity."""

    #: span-tag value; the remote subclass overrides it
    isolate_label = "process"

    def __init__(self, executable, config, tracer=None, budget=None):
        self.executable = executable
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.budget = budget
        self.pool = self._build_pool(executable, config)

    def _build_pool(self, executable, config):
        return WorkerPool(
            executable, spec_from_config(config), metrics=self.tracer.metrics
        )

    def invoke(self, db, timeout: Optional[float] = None):
        """Run one invocation out of process against ``db``'s current state.

        When the executable carries an invocation memo, a database-state
        match skips the worker round-trip entirely — the dominant cost under
        isolation — while the invocation is still counted, spanned, and
        metered exactly like a physical one.
        """
        executable = self.executable
        tracer = self.tracer
        memo = executable.memo if executable.cacheable else None
        memo_key = None
        if memo is not None and not getattr(db, "trace_access", False):
            memo_key = memo.key_for(db, timeout)
        with executable._counter_lock:
            executable.invocation_count += 1
        started = time.perf_counter()
        if not tracer.enabled:
            try:
                return self._invoke_memoized(db, timeout, memo, memo_key, None)
            finally:
                with executable._counter_lock:
                    executable.total_runtime += time.perf_counter() - started
        with tracer.span(executable.name, kind="worker") as span:
            span.set_tags(
                executable=executable.name,
                isolate=self.isolate_label,
                ordinal=self.pool.ordinal + 1,
                db_rows=db.total_rows(),
            )
            if tracer.metrics is not None:
                tracer.metrics.counter("invocations_total").inc()
            try:
                return self._invoke_memoized(db, timeout, memo, memo_key, span)
            finally:
                elapsed = time.perf_counter() - started
                with executable._counter_lock:
                    executable.total_runtime += elapsed
                if tracer.metrics is not None:
                    tracer.metrics.histogram(
                        "invocation_latency_seconds"
                    ).observe(elapsed)

    def _invoke_memoized(self, db, timeout, memo, memo_key, span):
        if memo_key is not None:
            cached = memo.lookup(memo_key)
            if cached is not None:
                if span is not None:
                    span.set_tag("invocation_cache", "hit")
                return cached
            if span is not None:
                span.set_tag("invocation_cache", "miss")
        result = self._invoke_inner(db, timeout, span)
        if memo_key is not None:
            memo.store(memo_key, result)
        return result

    def invoke_reply(self, db, timeout: Optional[float] = None) -> dict:
        """Thread-safe, transport-only invocation for scheduler workers.

        Returns the raw worker reply dict without touching the executable
        counters, metrics, spans, or budget — the calling probe context
        applies those itself (under its own locks) so accounting stays
        exactly-once.  Memo hits short-circuit with a synthetic reply.
        """
        executable = self.executable
        trace_access = bool(getattr(db, "trace_access", False))
        memo = executable.memo if executable.cacheable else None
        memo_key = None
        if memo is not None and not trace_access:
            memo_key = memo.key_for(db, timeout)
            if memo_key is not None:
                cached = memo.lookup(memo_key)
                if cached is not None:
                    return {"ok": True, "result": cached, "stats": {}}
        reply = self.pool.invoke(db, timeout, trace_access=trace_access)
        stats = reply.get("stats") or {}
        if trace_access and "access_log" in stats:
            db.access_log.extend(stats["access_log"])
        self._mirror_injected()
        if memo_key is not None and reply.get("ok"):
            memo.store(memo_key, reply["result"])
        return reply

    def _invoke_inner(self, db, timeout: Optional[float], span):
        trace_access = bool(getattr(db, "trace_access", False))
        try:
            reply = self.pool.invoke(db, timeout, trace_access=trace_access)
        except ExecutableTimeoutError:
            if span is not None:
                span.set_tags(timed_out=True, hard_kill=True)
            self._mirror_injected()
            raise
        except WorkerCrashedError as error:
            if span is not None:
                span.set_tags(crashed=True, crash_kind=error.kind)
            self._mirror_injected()
            raise
        stats = reply.get("stats") or {}
        if span is not None:
            span.set_tags(
                worker_seconds=round(stats.get("duration", 0.0), 9),
                worker_maxrss_bytes=stats.get("maxrss_bytes", 0),
                rows_scanned=stats.get("rows_scanned", 0),
            )
        # Failed probes report stats too: their scanned rows spend budget and
        # their access trace is real, exactly as in-process.
        if self.budget is not None and self.budget.enabled:
            self.budget.charge_rows_scanned(int(stats.get("rows_scanned", 0)))
        if trace_access and "access_log" in stats:
            db.access_log.extend(stats["access_log"])
        self._mirror_injected()
        if not reply.get("ok"):
            raise reply["error"]
        return reply["result"]

    def _mirror_injected(self) -> None:
        """Copy worker-side chaos-injection counts onto the local executable.

        The worker runs its *own* reconstruction of the executable, so fault
        bookkeeping accumulates over there; survival reports read the local
        wrapper's ``injected`` dict, which this keeps authoritative.
        """
        injected = getattr(self.executable, "injected", None)
        if isinstance(injected, dict):
            for kind, count in self.pool.injected_totals().items():
                injected[kind] = count

    def close(self) -> None:
        self._mirror_injected()
        self.pool.close()


def remote_spec_from_config(config) -> "RemoteSpec":
    from repro.isolation.protocol import secret_from_env
    from repro.isolation.remote import RemoteSpec

    secret = getattr(config, "transport_secret", None)
    if secret is None:
        secret = secret_from_env()
    return RemoteSpec(
        peers=tuple(config.worker_peers),
        default_timeout=config.worker_default_timeout,
        kill_grace=config.worker_kill_grace,
        quarantine_threshold=config.worker_quarantine_threshold,
        max_respawns=config.worker_max_respawns,
        pool_size=max(1, int(getattr(config, "jobs", 1) or 1)),
        connect_timeout=config.transport_connect_timeout,
        heartbeat_interval=config.transport_heartbeat_interval,
        backoff_base=config.transport_backoff_base,
        backoff_max=config.transport_backoff_max,
        max_reconnects=config.transport_max_reconnects,
        secret=secret,
    )


class RemoteIsolationBackend(ProcessIsolationBackend):
    """The process backend's contract, served by remote worker agents.

    Everything above the pool — memoization, spans, budget charging, access
    -log mirroring, injected-fault mirroring — is inherited unchanged; only
    the pool construction (and the span tag) differ.  That inheritance *is*
    the observability-parity argument: there is no second accounting path to
    drift.
    """

    isolate_label = "remote"

    def _build_pool(self, executable, config):
        from repro.isolation.remote import PeerHealthRegistry, RemoteWorkerPool

        registry = config.peer_registry
        if registry is not None and not isinstance(registry, PeerHealthRegistry):
            raise TypeError("peer_registry must be a PeerHealthRegistry")
        return RemoteWorkerPool(
            executable,
            remote_spec_from_config(config),
            metrics=self.tracer.metrics,
            registry=registry,
            transport_factory=config.transport_factory,
        )
