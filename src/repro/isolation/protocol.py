"""Wire protocol between the supervisor and its worker processes.

Frames are length-prefixed pickles on the worker's stdin/stdout pipes: an
8-byte big-endian payload length followed by the pickled message dict.  Pickle
(not JSON) because the payloads are the extraction's own object graph —
:class:`~repro.engine.catalog.TableSchema`, row tuples with ``datetime.date``
values, :class:`~repro.engine.result.Result`, and the exception objects the
pipeline interprets semantically (``UndefinedTableError.table_name`` drives
From-clause identification, so error *identity* must survive the boundary —
see the ``__reduce__`` definitions in :mod:`repro.errors`).

Both endpoints are the same trusted codebase spawning each other; the threat
model here is a *crashing or hanging* application, not a malicious peer, so
pickle's code-execution surface is acceptable (the worker executes the
application anyway — that is its entire job).

That trust assumption is safe on a pipe (the supervisor spawned the worker
itself) but **not** on a socket, where anyone who can reach the port can
write bytes.  TCP frames therefore carry a per-frame HMAC-SHA256 tag keyed
by a shared secret, and the tag is verified *before* any byte of the payload
reaches ``pickle`` — an unauthenticated peer gets :class:`ProtocolError`,
never code execution.  The secret defines the trust domain: endpoints
holding it are mutually trusted to the same degree the local supervisor and
its subprocess workers are (the agent's entire job is executing the
supervisor's code).  Without a secret the key is empty, which provides
framing integrity but **no** authentication — the agent refuses to listen on
a non-loopback interface in that mode (see :mod:`repro.isolation.agent`),
and hostile networks additionally need a confidential channel (TLS tunnel /
WireGuard): the per-frame MAC authenticates peers and frames, it does not
encrypt, and it does not stop an active man-in-the-middle from replaying
captured frames of an older connection.

Message shapes (plain dicts, ``cmd`` / reply keyed):

``init``     ``{cmd, executable: bytes}`` — the pickled executable, nested as
             bytes so an unpicklable/broken spec surfaces as a structured
             ``init`` error instead of a dead worker.
``run``      ``{cmd, ordinal, timeout, trace_access, deltas, dropped}`` —
             ``deltas`` maps table name to ``{"schema": TableSchema,
             "rows": [tuple, ...]}`` for every table whose contents changed
             since the last ship; ``dropped`` lists names that no longer
             exist (renames are a drop plus a delta).
``shutdown`` ``{cmd}`` — polite exit; the supervisor escalates to SIGKILL.

Replies: ``{ok: True, result: Result, stats: {...}}`` or ``{ok: False,
error: BaseException, stats: {...}}``.  ``stats`` carries ``duration``,
``maxrss_bytes``, ``rows_scanned``, ``invocation_count``, and optionally
``injected`` (chaos bookkeeping) and ``access_log`` (From-clause trace
strategy).
"""

from __future__ import annotations

import hashlib
import hmac
import os
import pickle
import select
import socket
import struct
import time
import zlib
from typing import BinaryIO, Optional

#: frame header: unsigned 64-bit big-endian payload length
_HEADER = struct.Struct(">Q")

#: TCP envelope: magic, sequence number, payload length, payload CRC32,
#: truncated HMAC-SHA256 tag over ``(seq, payload)``.  The pipe framing
#: stays bare (header + payload, byte-identical to every prior release); the
#: network gets the armoured envelope because wires — unlike pipes — deliver
#: torn, duplicated, bit-flipped, and *forged* bytes.
TCP_MAGIC = b"RWT2"
_TCP_HEADER = struct.Struct(">4sQQI16s")

#: MAC tag width: HMAC-SHA256 truncated to 16 bytes (128-bit security —
#: truncation of HMAC output is a standard, safe construction)
MAC_BYTES = 16

#: environment variable both the agent CLI and the supervisor config read
#: for the shared transport secret (UTF-8; whitespace-stripped)
SECRET_ENV = "REPRO_AGENT_SECRET"

#: how far ahead of sequence a frame may arrive before the stream is
#: declared lossy (reordering beyond this is indistinguishable from loss)
REORDER_WINDOW = 64

#: hard cap on a single frame (a corrupted header must not trigger a
#: multi-gigabyte allocation in the supervisor)
MAX_FRAME_BYTES = 1 << 31

#: worker exit status after an uncatchable memory-cap hit (``MemoryError``
#: leaves the interpreter in an untrustworthy state, so the worker dies
#: loudly instead of attempting a reply)
EXIT_MEMORY = 17

#: worker exit status for a protocol-level failure (unreadable frame)
EXIT_PROTOCOL = 18


class ProtocolError(Exception):
    """The byte stream does not parse as a frame (worker/supervisor bug)."""


class TransportTimeout(Exception):
    """A read deadline expired before a full frame arrived (peer still up)."""


def frame_mac(secret: Optional[bytes], seq: int, payload: bytes) -> bytes:
    """The authentication tag for one TCP frame.

    HMAC-SHA256 over the big-endian sequence number plus the payload, keyed
    by the shared secret (empty key when no secret is configured), truncated
    to :data:`MAC_BYTES`.  Binding the sequence number means a frame cannot
    be spliced to a different position in the stream.
    """
    digest = hmac.new(
        secret or b"", _HEADER.pack(seq) + payload, hashlib.sha256
    ).digest()
    return digest[:MAC_BYTES]


def secret_from_env() -> Optional[bytes]:
    """The shared transport secret from :data:`SECRET_ENV`, if set."""
    raw = os.environ.get(SECRET_ENV)
    if raw is None:
        return None
    raw = raw.strip()
    return raw.encode("utf-8") if raw else None


def decode_payload(payload: bytes) -> dict:
    """Unpickle a frame payload; every decode failure is a ProtocolError.

    A truncated, bit-flipped, or otherwise mangled payload makes ``pickle``
    raise essentially anything (``UnpicklingError``, ``EOFError``,
    ``AttributeError``, ``MemoryError``...); callers must only ever see the
    protocol taxonomy, so the whole decode is fenced here.
    """
    try:
        message = pickle.loads(payload)
    except Exception as error:
        raise ProtocolError(f"frame payload does not unpickle: {error!r}") from error
    if not isinstance(message, dict):
        raise ProtocolError(f"expected a message dict, got {type(message).__name__}")
    return message


def write_frame(stream: BinaryIO, message: dict) -> None:
    """Serialise and send one message; flushes so the peer can block-read."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    stream.write(_HEADER.pack(len(payload)))
    stream.write(payload)
    stream.flush()


def read_frame(stream: BinaryIO) -> dict:
    """Read one message; raises EOFError on a cleanly closed stream."""
    header = _read_exact(stream, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds protocol maximum")
    payload = _read_exact(stream, length)
    return decode_payload(payload)


def _read_exact(stream: BinaryIO, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            raise EOFError(f"stream closed with {remaining} bytes outstanding")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# -- transports ----------------------------------------------------------------


class FrameTransport:
    """One bidirectional message channel between supervisor-side code and a
    worker (or worker agent).

    Implementations provide:

    * :meth:`send` — serialise and transmit one message dict;
    * :meth:`recv` — block for the next message, under an optional deadline
      (``None`` blocks forever).  Raises :class:`TransportTimeout` on an
      expired deadline, :class:`EOFError` when the peer closed, and
      :class:`ProtocolError` on an unparseable stream;
    * :meth:`close` — idempotent teardown.

    The supervisor's pool logic, the remote handle's fencing reader, and the
    worker agent all program against this seam, so the same lease/accounting
    code runs over pipes and sockets — and over the chaos harness's
    :class:`~repro.resilience.netfaults.FaultyTransport`.
    """

    def send(self, message: dict) -> None:
        raise NotImplementedError

    def recv(self, deadline_seconds: Optional[float]) -> dict:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    @property
    def alive(self) -> bool:
        raise NotImplementedError


class PipeTransport(FrameTransport):
    """Frames over a subprocess's stdin/stdout pipes (the classic layout).

    Writes go through the buffered ``stdin`` stream exactly as
    :func:`write_frame` always has; reads pull raw bytes off the stdout file
    descriptor under a ``select`` deadline, preserving the supervisor's
    historical byte-level behaviour (length-prefixed pickle, no envelope).
    """

    def __init__(self, write_stream: BinaryIO, read_fd: int):
        self._write_stream = write_stream
        self._read_fd = read_fd
        self._buffer = b""
        self._closed = False

    def send(self, message: dict) -> None:
        write_frame(self._write_stream, message)

    def recv(self, deadline_seconds: Optional[float]) -> dict:
        deadline = (
            None if deadline_seconds is None
            else time.perf_counter() + deadline_seconds
        )
        header_size = _HEADER.size
        needed = header_size
        length: Optional[int] = None
        while True:
            while len(self._buffer) >= needed:
                if length is None:
                    (length,) = _HEADER.unpack(self._buffer[:header_size])
                    if length > MAX_FRAME_BYTES:
                        raise ProtocolError(
                            f"frame of {length} bytes exceeds protocol maximum"
                        )
                    needed = header_size + length
                    continue
                payload = self._buffer[header_size:needed]
                self._buffer = self._buffer[needed:]
                return decode_payload(payload)
            if deadline is None:
                remaining = None
            else:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    raise TransportTimeout()
            readable, _, _ = select.select([self._read_fd], [], [], remaining)
            if not readable:
                raise TransportTimeout()
            chunk = os.read(self._read_fd, 1 << 20)
            if not chunk:
                raise EOFError("worker closed its pipe before replying")
            self._buffer += chunk

    def close(self) -> None:
        self._closed = True  # fds belong to the Popen object; owner closes them

    @property
    def alive(self) -> bool:
        return not self._closed


class TcpTransport(FrameTransport):
    """Authenticated, CRC-checked, sequence-numbered frames over TCP.

    Every frame carries ``(magic, seq, length, crc32, mac)``.  The receiver:

    * rejects a bad magic, an oversized length, a CRC mismatch, or a failed
      MAC with :class:`ProtocolError` (the connection is then unusable —
      bytes are out of frame sync or the peer is not trusted).  The MAC is
      verified **before** the payload is buffered for decoding, so an
      unauthenticated peer's bytes never reach ``pickle.loads``;
    * silently drops frames whose sequence number was already delivered or
      already buffered (duplicate delivery is a normal network pathology,
      counted in :attr:`duplicates_dropped`, never surfaced to the caller);
    * buffers ahead-of-sequence frames and delivers strictly in order
      (counted in :attr:`reorders_healed`); a frame that never arrives
      stalls delivery until the caller's read deadline fires, and a gap
      wider than :data:`REORDER_WINDOW` is a :class:`ProtocolError` — at
      that point the stream has demonstrably lost data.
    """

    def __init__(self, sock: socket.socket, secret: Optional[bytes] = None):
        sock.setblocking(True)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - esoteric socket families
            pass
        self.sock = sock
        self.secret = bytes(secret) if secret else None
        self._buffer = b""
        self._send_seq = 0
        self._recv_next = 0
        self._pending: dict = {}
        self._closed = False
        #: frames dropped because their sequence number was already seen
        self.duplicates_dropped = 0
        #: frames that arrived ahead of sequence and were buffered in order
        self.reorders_healed = 0

    @classmethod
    def connect(cls, address: str, timeout: float = 5.0,
                secret: Optional[bytes] = None) -> "TcpTransport":
        """Dial ``host:port`` and return a connected transport."""
        host, port = parse_address(address)
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.settimeout(None)
        return cls(sock, secret=secret)

    # -- sending ------------------------------------------------------------

    def send(self, message: dict) -> None:
        self._transmit(self.encode(message))

    def encode(self, message: dict) -> bytes:
        """Build one enveloped frame, consuming the next sequence number."""
        payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
        if len(payload) > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"frame of {len(payload)} bytes exceeds protocol maximum"
            )
        header = _TCP_HEADER.pack(
            TCP_MAGIC, self._send_seq, len(payload), zlib.crc32(payload),
            frame_mac(self.secret, self._send_seq, payload),
        )
        self._send_seq += 1
        return header + payload

    def _transmit(self, data: bytes) -> None:
        """Put bytes on the wire; the chaos transport's injection point."""
        self.sock.sendall(data)

    # -- receiving ----------------------------------------------------------

    def recv(self, deadline_seconds: Optional[float]) -> dict:
        deadline = (
            None if deadline_seconds is None
            else time.perf_counter() + deadline_seconds
        )
        while True:
            message = self._next_from_buffer()
            if message is not None:
                return message
            if deadline is None:
                remaining = None
            else:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    raise TransportTimeout()
            try:
                readable, _, _ = select.select([self.sock], [], [], remaining)
            except (OSError, ValueError) as error:
                raise EOFError(f"transport socket closed: {error}") from error
            if not readable:
                raise TransportTimeout()
            chunk = self._receive_bytes()
            if not chunk:
                raise EOFError("peer closed the connection")
            self._buffer += chunk

    def _receive_bytes(self) -> bytes:
        """Pull available bytes off the socket; chaos injection point."""
        try:
            return self.sock.recv(1 << 20)
        except (ConnectionResetError, OSError) as error:
            raise EOFError(f"connection reset: {error}") from error

    def _next_from_buffer(self) -> Optional[dict]:
        """Decode the next in-sequence frame already buffered, if any."""
        message = self._pop_in_order()
        if message is not None:
            return message
        header_size = _TCP_HEADER.size
        while len(self._buffer) >= header_size:
            magic, seq, length, crc, mac = _TCP_HEADER.unpack(
                self._buffer[:header_size]
            )
            if magic != TCP_MAGIC:
                raise ProtocolError(
                    f"bad frame magic {magic!r}: stream out of sync"
                )
            if length > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"frame of {length} bytes exceeds protocol maximum"
                )
            if len(self._buffer) < header_size + length:
                return None
            payload = self._buffer[header_size:header_size + length]
            self._buffer = self._buffer[header_size + length:]
            if zlib.crc32(payload) != crc:
                raise ProtocolError(
                    f"frame {seq} failed its CRC check (corrupt payload)"
                )
            # authentication gate: nothing past this line — in particular
            # pickle — ever touches a payload the peer could not MAC
            if not hmac.compare_digest(
                mac, frame_mac(self.secret, seq, payload)
            ):
                raise ProtocolError(
                    f"frame {seq} failed authentication (wrong or missing "
                    f"shared transport secret)"
                )
            if seq < self._recv_next or seq in self._pending:
                self.duplicates_dropped += 1
                continue
            if seq > self._recv_next:
                if seq - self._recv_next > REORDER_WINDOW:
                    raise ProtocolError(
                        f"sequence gap: expected frame {self._recv_next}, "
                        f"got {seq} (stream lost data)"
                    )
                self.reorders_healed += 1
            self._pending[seq] = payload
            message = self._pop_in_order()
            if message is not None:
                return message
        return None

    def _pop_in_order(self) -> Optional[dict]:
        payload = self._pending.pop(self._recv_next, None)
        if payload is None:
            return None
        self._recv_next += 1
        return decode_payload(payload)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass

    @property
    def alive(self) -> bool:
        return not self._closed


def parse_address(address: str) -> tuple:
    """Split ``host:port`` (the last colon wins, so IPv6 literals work)."""
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"peer address {address!r} is not host:port")
    return host or "127.0.0.1", int(port)


def pack_executable(executable) -> bytes:
    """Pickle the executable spec for the ``init`` message.

    Raises :class:`ProtocolError` eagerly (at backend construction) when the
    executable cannot cross the process boundary — e.g. a
    ``CallableExecutable`` closing over a lambda — so the failure names the
    actual problem instead of surfacing as a dead worker mid-extraction.
    """
    try:
        return pickle.dumps(executable, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as error:
        raise ProtocolError(
            f"executable {getattr(executable, 'name', executable)!r} is not "
            f"picklable and cannot run in an isolated worker: {error}"
        ) from error
