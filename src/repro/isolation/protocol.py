"""Wire protocol between the supervisor and its worker processes.

Frames are length-prefixed pickles on the worker's stdin/stdout pipes: an
8-byte big-endian payload length followed by the pickled message dict.  Pickle
(not JSON) because the payloads are the extraction's own object graph —
:class:`~repro.engine.catalog.TableSchema`, row tuples with ``datetime.date``
values, :class:`~repro.engine.result.Result`, and the exception objects the
pipeline interprets semantically (``UndefinedTableError.table_name`` drives
From-clause identification, so error *identity* must survive the boundary —
see the ``__reduce__`` definitions in :mod:`repro.errors`).

Both endpoints are the same trusted codebase spawning each other; the threat
model here is a *crashing or hanging* application, not a malicious peer, so
pickle's code-execution surface is acceptable (the worker executes the
application anyway — that is its entire job).

Message shapes (plain dicts, ``cmd`` / reply keyed):

``init``     ``{cmd, executable: bytes}`` — the pickled executable, nested as
             bytes so an unpicklable/broken spec surfaces as a structured
             ``init`` error instead of a dead worker.
``run``      ``{cmd, ordinal, timeout, trace_access, deltas, dropped}`` —
             ``deltas`` maps table name to ``{"schema": TableSchema,
             "rows": [tuple, ...]}`` for every table whose contents changed
             since the last ship; ``dropped`` lists names that no longer
             exist (renames are a drop plus a delta).
``shutdown`` ``{cmd}`` — polite exit; the supervisor escalates to SIGKILL.

Replies: ``{ok: True, result: Result, stats: {...}}`` or ``{ok: False,
error: BaseException, stats: {...}}``.  ``stats`` carries ``duration``,
``maxrss_bytes``, ``rows_scanned``, ``invocation_count``, and optionally
``injected`` (chaos bookkeeping) and ``access_log`` (From-clause trace
strategy).
"""

from __future__ import annotations

import pickle
import struct
from typing import BinaryIO

#: frame header: unsigned 64-bit big-endian payload length
_HEADER = struct.Struct(">Q")

#: hard cap on a single frame (a corrupted header must not trigger a
#: multi-gigabyte allocation in the supervisor)
MAX_FRAME_BYTES = 1 << 31

#: worker exit status after an uncatchable memory-cap hit (``MemoryError``
#: leaves the interpreter in an untrustworthy state, so the worker dies
#: loudly instead of attempting a reply)
EXIT_MEMORY = 17

#: worker exit status for a protocol-level failure (unreadable frame)
EXIT_PROTOCOL = 18


class ProtocolError(Exception):
    """The byte stream does not parse as a frame (worker/supervisor bug)."""


def write_frame(stream: BinaryIO, message: dict) -> None:
    """Serialise and send one message; flushes so the peer can block-read."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    stream.write(_HEADER.pack(len(payload)))
    stream.write(payload)
    stream.flush()


def read_frame(stream: BinaryIO) -> dict:
    """Read one message; raises EOFError on a cleanly closed stream."""
    header = _read_exact(stream, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds protocol maximum")
    payload = _read_exact(stream, length)
    message = pickle.loads(payload)
    if not isinstance(message, dict):
        raise ProtocolError(f"expected a message dict, got {type(message).__name__}")
    return message


def _read_exact(stream: BinaryIO, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            raise EOFError(f"stream closed with {remaining} bytes outstanding")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def pack_executable(executable) -> bytes:
    """Pickle the executable spec for the ``init`` message.

    Raises :class:`ProtocolError` eagerly (at backend construction) when the
    executable cannot cross the process boundary — e.g. a
    ``CallableExecutable`` closing over a lambda — so the failure names the
    actual problem instead of surfacing as a dead worker mid-extraction.
    """
    try:
        return pickle.dumps(executable, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as error:
        raise ProtocolError(
            f"executable {getattr(executable, 'name', executable)!r} is not "
            f"picklable and cannot run in an isolated worker: {error}"
        ) from error
