"""Process-level invocation isolation (supervised worker pool).

The paper treats the application ``E`` as an untrusted black box that may
hang ("terminate the execution after a short timeout period", §4.1), crash,
or exhaust memory.  This package moves every black-box invocation into a
supervised subprocess so none of those failure modes can take down the
extraction or corrupt its checkpoints:

* :mod:`repro.isolation.protocol` — length-prefixed pickle frames over the
  worker's stdin/stdout pipes;
* :mod:`repro.isolation.worker` — the worker process: resident database
  replica, delta reconciliation, sandboxed runs, ``RLIMIT_AS`` memory cap;
* :mod:`repro.isolation.supervisor` — spawn/restart/quarantine policy, hard
  SIGKILL deadlines, crash classification, pool metrics;
* :mod:`repro.isolation.backend` — the :class:`ProcessIsolationBackend` the
  session delegates to under ``--isolate process``, and its
  :class:`RemoteIsolationBackend` twin for ``--isolate remote``;
* :mod:`repro.isolation.agent` — the standalone worker agent
  (``python -m repro.isolation.agent --listen host:port``) serving workers
  to remote supervisors;
* :mod:`repro.isolation.remote` — the supervisor side of remote isolation:
  lease epochs with fencing tokens, EWMA failure detection, capped-backoff
  reconnect with peer failover (DESIGN.md §5.18).
"""

from repro.isolation.backend import (
    ProcessIsolationBackend,
    RemoteIsolationBackend,
    remote_spec_from_config,
    spec_from_config,
)
from repro.isolation.supervisor import PoolStats, WorkerPool, WorkerSpec

__all__ = [
    "PoolStats",
    "ProcessIsolationBackend",
    "RemoteIsolationBackend",
    "WorkerPool",
    "WorkerSpec",
    "remote_spec_from_config",
    "spec_from_config",
]
