"""Remote worker agent: ``python -m repro.isolation.agent --listen host:port``.

The agent is the network-facing half of remote isolation (DESIGN.md §5.18).
It accepts TCP connections from supervisors and gives each connection its own
locally spawned, locally supervised worker subprocess — the same
``repro.isolation.worker`` the in-process pool uses, behind the same
:class:`~repro.isolation.supervisor.LocalWorkerProcess` mechanics.

Division of labour across the wire:

* the **agent** owns the hard deadline for its worker: each ``run`` request
  carries a ``deadline`` (cooperative timeout + kill grace); when it expires
  the agent SIGKILLs the worker and replies a structured ``hard_timeout``
  message.  SIGKILL must live on the worker's machine — a supervisor across
  a partition cannot kill anything;
* the **supervisor** owns leases and accounting.  Every request carries
  ``(epoch, req)`` fencing tokens which the agent echoes verbatim on the
  reply; it never interprets them.  The supervisor's reader drops replies
  with stale tokens, which is what makes late replies harmless;
* a worker crash or hard timeout ends the **connection** (after the
  structured reply is flushed): connection lifetime == worker lifetime, so
  the supervisor's reconnect path doubles as its respawn path and the
  incremental ship-state is reset exactly when the replica is lost.

``hello`` and ``ping`` are answered by the agent itself without touching the
worker — heartbeats measure the *network + agent* path and stay cheap, and
they keep working while the worker is busy being spawned.
"""

from __future__ import annotations

import argparse
import os
import signal
import socket
import sys
import threading
from typing import Optional

from repro.isolation.protocol import (
    ProtocolError,
    TcpTransport,
    TransportTimeout,
    parse_address,
    secret_from_env,
)
from repro.isolation.supervisor import _SPAWN_TIMEOUT, LocalWorkerProcess, WorkerSpec

#: protocol identity sent in the hello reply; a supervisor refuses to run
#: against an agent speaking a different protocol generation
AGENT_PROTOCOL = 2

#: interfaces an unauthenticated agent may bind (the local machine is the
#: same trust domain as a local subprocess worker; anything wider requires
#: a shared secret — the agent executes whatever a connected supervisor
#: sends, so an open port without authentication is remote code execution)
_LOOPBACK_HOSTS = frozenset({"127.0.0.1", "::1", "localhost"})


def _meta(message: dict) -> dict:
    """The fencing tokens to echo back on every reply."""
    return {"epoch": message.get("epoch"), "req": message.get("req")}


class _Connection:
    """One supervisor connection and the worker subprocess serving it."""

    def __init__(self, agent: "WorkerAgent", transport: TcpTransport):
        self.agent = agent
        self.transport = transport
        self.worker: Optional[LocalWorkerProcess] = None

    def serve(self) -> None:
        try:
            while True:
                try:
                    message = self.transport.recv(None)
                except (EOFError, ProtocolError, TransportTimeout, OSError):
                    return  # supervisor went away or stream corrupted
                try:
                    alive = self._dispatch(message)
                except Exception as error:
                    # A malformed-but-authenticated request must surface as
                    # a structured error carrying the fencing meta — never
                    # as an unexplained EOF from a dead connection thread.
                    self._reply(
                        {"ok": False,
                         "error": RuntimeError(
                             f"agent could not handle "
                             f"{message.get('cmd')!r}: {error!r}"),
                         **_meta(message)}
                    )
                    return
                if not alive:
                    return
        finally:
            if self.worker is not None:
                self.worker.kill()
            self.agent.retire_connection(self)
            self.transport.close()

    def _dispatch(self, message: dict) -> bool:
        """Handle one request; False ends the connection."""
        cmd = message.get("cmd")
        meta = _meta(message)
        if cmd == "hello":
            return self._reply(
                {"ok": True, "hello": True, "protocol": AGENT_PROTOCOL,
                 "agent_pid": self.agent.pid, **meta}
            )
        if cmd == "ping":
            return self._reply({"ok": True, "pong": True, **meta})
        if cmd == "init":
            return self._handle_init(message, meta)
        if cmd == "run":
            return self._handle_run(message, meta)
        if cmd == "shutdown":
            if self.worker is not None:
                self.worker.shutdown()
                self.worker = None
            self._reply({"ok": True, **meta})
            return False
        return self._reply(
            {"ok": False, "error": RuntimeError(f"unknown cmd {cmd!r}"), **meta}
        )

    def _handle_init(self, message: dict, meta: dict) -> bool:
        blob = message.get("executable")
        if not isinstance(blob, (bytes, bytearray)):
            # validated here so a broken supervisor gets a structured reply
            # (connection kept) instead of a KeyError-killed thread
            return self._reply(
                {"ok": False,
                 "error": RuntimeError(
                     "init message carries no executable bytes "
                     f"(got {type(blob).__name__})"),
                 **meta}
            )
        if self.worker is not None:  # re-init replaces the worker
            self.worker.kill()
            self.worker = None
        worker = None
        try:
            worker = LocalWorkerProcess(self.agent.spec)
            reply = worker.request(
                {"cmd": "init", "executable": bytes(blob)},
                _SPAWN_TIMEOUT,
            )
        except (TransportTimeout, EOFError, OSError) as error:
            if worker is not None:
                worker.kill()
            return self._reply(
                {"ok": False,
                 "error": RuntimeError(f"agent failed to spawn a worker: {error}"),
                 **meta}
            )
        if reply.get("ok"):
            self.worker = worker
        else:
            worker.kill()
        return self._reply({**reply, **meta})

    def _handle_run(self, message: dict, meta: dict) -> bool:
        if self.worker is None or not self.worker.alive:
            kind = "unknown" if self.worker is None else self.worker.exit_kind()
            self._reply({"ok": False, "crashed": True, "kind": kind, **meta})
            return False
        deadline = message.get("deadline", self.agent.spec.default_timeout
                               + self.agent.spec.kill_grace)
        try:
            reply = self.worker.request(message, deadline)
        except TransportTimeout:
            # The worker blew its hard deadline: SIGKILL locally, tell the
            # supervisor with a structured reply, end the connection (the
            # worker — and its replica — are gone).
            self.worker.kill()
            self.worker = None
            self._reply({"ok": False, "hard_timeout": True, **meta})
            return False
        except (EOFError, OSError):
            self.worker.kill()  # reap; usually already dead
            kind = self.worker.exit_kind()
            returncode = self.worker.proc.returncode
            self.worker = None
            self._reply({"ok": False, "crashed": True, "kind": kind,
                         "returncode": returncode, **meta})
            return False
        return self._reply({**reply, **meta})

    def _reply(self, message: dict) -> bool:
        try:
            self.transport.send(message)
            return True
        except (OSError, ProtocolError):
            return False  # supervisor vanished mid-reply


class WorkerAgent:
    """A TCP listener handing each supervisor connection a supervised worker.

    Usable in-process (tests, the net-chaos harness) via
    :meth:`start`/:meth:`stop`, or standalone via :func:`main`.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 spec: Optional[WorkerSpec] = None,
                 secret: Optional[bytes] = None):
        self.host = host
        self.port = port
        self.spec = spec if spec is not None else WorkerSpec()
        self.secret = bytes(secret) if secret else None
        self.pid = os.getpid()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._connections: list = []
        self._lock = threading.Lock()
        self._stopping = threading.Event()
        #: transport pathologies healed on retired connections (live ones are
        #: added on the fly in :meth:`transport_counters`)
        self._retired_counters = {"duplicates_dropped": 0, "reorders_healed": 0}

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def start(self) -> str:
        """Bind, listen, and serve in a background thread; returns host:port.

        Refuses a non-loopback bind without a shared secret: every frame a
        supervisor sends is application code to execute, so an open,
        unauthenticated port would be a remote-code-execution endpoint.
        """
        if self.secret is None and self.host not in _LOOPBACK_HOSTS:
            raise ValueError(
                f"refusing to listen on non-loopback {self.host!r} without a "
                f"shared secret: the agent executes whatever a connected "
                f"supervisor sends (set --secret-file / REPRO_AGENT_SECRET, "
                f"or bind 127.0.0.1)"
            )
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(32)
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="agent-accept", daemon=True
        )
        self._accept_thread.start()
        return self.address

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            connection = _Connection(self, TcpTransport(sock, secret=self.secret))
            with self._lock:
                self._connections.append(connection)
            thread = threading.Thread(
                target=connection.serve, name="agent-conn", daemon=True
            )
            thread.start()

    def stop(self) -> None:
        """Close the listener and tear down every live connection."""
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            connections = list(self._connections)
            self._connections.clear()
        for connection in connections:
            connection.transport.close()
            if connection.worker is not None:
                connection.worker.kill()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2)

    def serve_forever(self) -> None:
        """Block until stopped (the standalone entry point's main loop)."""
        self._stopping.wait()

    def retire_connection(self, connection: "_Connection") -> None:
        """Fold a finished connection's transport tallies into the totals."""
        with self._lock:
            transport = connection.transport
            self._retired_counters["duplicates_dropped"] += (
                transport.duplicates_dropped
            )
            self._retired_counters["reorders_healed"] += transport.reorders_healed
            if connection in self._connections:
                self._connections.remove(connection)

    def transport_counters(self) -> dict:
        """Agent-side dedup/reorder totals across all connections ever.

        The chaos harness reads these to prove a duplicated or reordered
        delivery was actually *seen and healed* here rather than silently
        never occurring.
        """
        with self._lock:
            totals = dict(self._retired_counters)
            for connection in self._connections:
                totals["duplicates_dropped"] += (
                    connection.transport.duplicates_dropped
                )
                totals["reorders_healed"] += connection.transport.reorders_healed
        return totals


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-agent",
        description="serve isolated repro workers to remote supervisors",
    )
    parser.add_argument("--listen", required=True, metavar="HOST:PORT",
                        help="address to accept supervisor connections on")
    parser.add_argument("--memory-limit-mb", type=int, default=None,
                        help="RLIMIT_AS cap for each spawned worker")
    parser.add_argument("--default-timeout", type=float, default=30.0,
                        help="hard deadline when a run carries none")
    parser.add_argument("--kill-grace", type=float, default=1.0,
                        help="slack past the cooperative timeout before SIGKILL")
    parser.add_argument("--secret-file", default=None, metavar="PATH",
                        help="file holding the shared transport secret "
                             "(falls back to $REPRO_AGENT_SECRET); required "
                             "for any non-loopback --listen address")
    args = parser.parse_args(argv)
    host, port = parse_address(args.listen)
    if args.secret_file is not None:
        with open(args.secret_file, "rb") as handle:
            secret = handle.read().strip() or None
    else:
        secret = secret_from_env()
    spec = WorkerSpec(
        memory_limit_bytes=(
            args.memory_limit_mb * 1024 * 1024 if args.memory_limit_mb else None
        ),
        default_timeout=args.default_timeout,
        kill_grace=args.kill_grace,
    )
    agent = WorkerAgent(host, port, spec=spec, secret=secret)
    try:
        address = agent.start()
    except ValueError as error:
        sys.stderr.write(f"agent: {error}\n")
        return 2
    sys.stderr.write(
        f"agent: listening on {address} "
        f"({'authenticated' if secret else 'loopback-only, unauthenticated'})\n"
    )
    sys.stderr.flush()

    def _shutdown(signum, frame):  # noqa: ARG001 - signal signature
        agent.stop()

    signal.signal(signal.SIGTERM, _shutdown)
    signal.signal(signal.SIGINT, _shutdown)
    agent.serve_forever()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
