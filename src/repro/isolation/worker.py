"""Worker process entry point: ``python -m repro.isolation.worker``.

One worker owns one resident :class:`~repro.engine.database.Database` replica
and one reconstructed executable.  The supervisor ships table *deltas* with
each run request (only tables whose contents changed since the last ship),
the worker reconciles its replica, runs the executable inside a
``db.sandbox()`` (so application DML rolls back and the replica stays exactly
"the shipped state"), and replies with the result or the raised exception.

Hostile-application containment is split between the two processes:

* the *worker* applies ``RLIMIT_AS`` before touching any request, so a
  memory-hogging application hits ``MemoryError`` — at which point the
  interpreter's own allocations can no longer be trusted, and the worker
  exits immediately with :data:`~repro.isolation.protocol.EXIT_MEMORY`
  rather than risking a half-written reply frame;
* the *supervisor* owns the wall clock: a busy-looping application never
  reaches this module's reply path, and is SIGKILLed from outside.

Anything the application prints must not corrupt the frame stream, so the
protocol runs on a private dup of stdout and fd 1 is pointed at stderr
before the first request is read.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Optional

import repro.core.pipeline  # noqa: F401  (see comment below)
from repro.engine.database import Database
from repro.isolation.protocol import (
    EXIT_MEMORY,
    EXIT_PROTOCOL,
    read_frame,
    write_frame,
)

# The pipeline import above is deliberate: unpickling an executable can pull
# in arbitrary repro modules (e.g. repro.resilience.faults for a chaos
# wrapper), and importing repro.resilience as a *package* first would trip
# its import cycle with repro.core.  Importing the pipeline stack up front
# reproduces the supervisor's canonical import order.


class _RowsTally:
    """Budget-shaped accumulator for the engine's rows-scanned charges.

    The worker's replica has no :class:`~repro.resilience.budgets.ResourceBudget`
    — limits are enforced supervisor-side where usage is counted once — but
    attaching this tally lets the engine's existing charge hook report how
    many rows each invocation scanned, so the supervisor can charge its own
    budget after the fact.
    """

    __slots__ = ("rows_scanned",)

    def __init__(self):
        self.rows_scanned = 0

    def charge_rows_scanned(self, count: int) -> None:
        self.rows_scanned += count

    def check_wall_clock(self) -> None:  # polled by Database.check_deadline
        pass


def _apply_memory_limit(limit_bytes: int) -> None:
    """Cap the worker's address space (the portable RSS-cap stand-in).

    ``RLIMIT_RSS`` is a no-op on modern Linux, so the enforceable knob is
    ``RLIMIT_AS``: allocations past the cap fail, which Python surfaces as
    :class:`MemoryError`.
    """
    import resource

    resource.setrlimit(resource.RLIMIT_AS, (limit_bytes, limit_bytes))


def _maxrss_bytes() -> int:
    """Peak RSS of this worker so far (``ru_maxrss`` is KiB on Linux)."""
    import resource

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak if sys.platform == "darwin" else peak * 1024


def _reconcile(db: Database, deltas: dict, dropped: list) -> None:
    """Apply the supervisor's table deltas to the resident replica."""
    for name in dropped:
        db.drop_table(name)
    for name, payload in deltas.items():
        schema = payload["schema"]
        if name in (existing.lower() for existing in db.table_names):
            if db.schema(name) != schema:
                db.drop_table(name)
                db.create_table(schema)
        else:
            db.create_table(schema)
        db.replace_rows(name, payload["rows"])


def _run_once(db: Database, executable, message: dict) -> dict:
    _reconcile(db, message["deltas"], message["dropped"])
    timeout: Optional[float] = message["timeout"]
    tally = _RowsTally()
    db.budget = tally
    db.access_log.clear()
    db.trace_access = bool(message["trace_access"])
    # The supervisor's global invocation ordinal: fault injectors key their
    # per-invocation draws on it so a respawned worker does not replay the
    # fault sequence from scratch (see FaultPlan.draw_hard).
    executable.invocation_ordinal = message["ordinal"]
    started = time.perf_counter()
    if timeout is not None:
        db.deadline = started + timeout
    result = None
    error: Optional[BaseException] = None
    try:
        with db.sandbox():
            result = executable.run(db, timeout=timeout)
    except MemoryError:
        # The cap was hit: the replica (and even this frame's buffers) may be
        # partially constructed.  Die loudly; the supervisor classifies the
        # exit status and respawns.
        os._exit(EXIT_MEMORY)
    except BaseException as raised:  # noqa: BLE001 - errors are payload here
        error = raised
    finally:
        db.deadline = None
        db.budget = None
        db.trace_access = False
    stats = {
        "duration": time.perf_counter() - started,
        "maxrss_bytes": _maxrss_bytes(),
        "rows_scanned": tally.rows_scanned,
        "invocation_count": executable.invocation_count,
    }
    injected = getattr(executable, "injected", None)
    if isinstance(injected, dict):
        stats["injected"] = dict(injected)
    if message["trace_access"]:
        stats["access_log"] = list(db.access_log)
    if error is not None:
        return {"ok": False, "error": _portable_error(error), "stats": stats}
    return {"ok": True, "result": result, "stats": stats}


def _portable_error(error: BaseException) -> BaseException:
    """The error itself when picklable, else a same-severity stand-in."""
    import pickle

    try:
        pickle.dumps(error)
        return error
    except Exception:
        return RuntimeError(
            f"worker-side error (unpicklable): {type(error).__name__}: {error}"
        )


def _serve(inp, out) -> int:
    db = Database()
    executable = None
    while True:
        try:
            message = read_frame(inp)
        except EOFError:
            return 0  # supervisor went away; pipes are our lifeline
        cmd = message.get("cmd")
        if cmd == "init":
            import pickle

            try:
                executable = pickle.loads(message["executable"])
                write_frame(out, {"ok": True, "pid": os.getpid()})
            except Exception as error:  # unpicklable spec → structured reply
                write_frame(out, {"ok": False, "error": _portable_error(error)})
        elif cmd == "run":
            if executable is None:
                write_frame(
                    out,
                    {"ok": False, "error": RuntimeError("run before init")},
                )
                continue
            write_frame(out, _run_once(db, executable, message))
        elif cmd == "shutdown":
            write_frame(out, {"ok": True})
            return 0
        else:
            write_frame(
                out, {"ok": False, "error": RuntimeError(f"unknown cmd {cmd!r}")}
            )


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-worker")
    parser.add_argument("--memory-limit-bytes", type=int, default=None)
    args = parser.parse_args(argv)
    if args.memory_limit_bytes:
        _apply_memory_limit(args.memory_limit_bytes)
    # Reserve the real stdout for frames; reroute fd 1 to stderr so an
    # application's print() cannot corrupt the protocol stream.
    protocol_fd = os.dup(1)
    os.dup2(2, 1)
    sys.stdout = sys.stderr
    inp = sys.stdin.buffer
    out = os.fdopen(protocol_fd, "wb")
    try:
        return _serve(inp, out)
    except MemoryError:
        os._exit(EXIT_MEMORY)
    except (BrokenPipeError, KeyboardInterrupt):
        return 0
    except Exception:
        import traceback

        traceback.print_exc()
        return EXIT_PROTOCOL


if __name__ == "__main__":
    raise SystemExit(main())
