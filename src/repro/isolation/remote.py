"""Supervisor side of remote isolation: leases, fencing, failure detection.

A :class:`RemoteWorkerPool` is the network twin of
:class:`~repro.isolation.supervisor.WorkerPool`: same slot leasing, same
ledger, same crash taxonomy and quarantine policy — but each slot is a
:class:`RemoteWorkerHandle`, a TCP connection to a worker agent
(:mod:`repro.isolation.agent`) instead of a subprocess pipe pair.

The exactly-once contract over a lossy wire (DESIGN.md §5.18) rests on three
mechanisms:

* **Lease epochs + fencing tokens.**  Every request carries ``(epoch,
  req)``; the agent echoes them verbatim.  The handle's reader delivers only
  the reply matching the request *currently in flight* and silently drops
  everything else (counted as ``fenced_replies_total``).  When the
  supervisor abandons a request — read deadline expired, connection torn —
  it bumps the epoch first, so a presumed-dead worker's late reply can never
  be mistaken for a live one: its side effects are never folded, its rows
  are never charged, its result is never memoized.
* **Adaptive failure detection.**  Heartbeat RTTs feed an EWMA mean/deviation
  estimator; read deadlines for heartbeats and the network allowance on run
  replies are ``mean + k·dev`` (clamped), so a slow-but-healthy link widens
  its own deadlines instead of mass-false-positiving into reconnect storms.
* **Capped-backoff reconnect with requeue.**  A dead connection is replaced
  with exponential backoff; when one peer's reconnect budget is spent the
  slot fails over to the next healthy peer (the requeue path), and only when
  *every* peer is down does the pool flip into a sticky
  :class:`~repro.errors.PeerQuarantined` — the transport analogue of the
  local pool's respawn-budget quarantine.

Invocation side effects are idempotent by construction (a probe reply is a
pure function of the shipped replica), so at-most-once delivery per lease +
retry-with-new-lease composes into exactly-once *accounting*: each logical
invocation is charged and folded exactly once, whichever attempt's reply
made it home.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import (
    ExecutableTimeoutError,
    ExtractionError,
    PeerQuarantined,
    PeerUnavailable,
    WorkerCrashedError,
)
from repro.isolation.protocol import (
    ProtocolError,
    TcpTransport,
    TransportTimeout,
    pack_executable,
)
from repro.isolation.supervisor import _SPAWN_TIMEOUT, PoolStats

#: transport exceptions that mean "this connection is no longer usable"
_CONNECTION_ERRORS = (EOFError, ProtocolError, ConnectionError, OSError)


@dataclass(frozen=True)
class RemoteSpec:
    """Remote-pool policy, lifted from the extraction config."""

    #: ``host:port`` worker-agent addresses; slots round-robin across them
    peers: tuple = ()
    #: hard deadline when the caller passed no cooperative timeout, seconds
    default_timeout: float = 30.0
    #: slack past the cooperative timeout before the *agent* SIGKILLs
    kill_grace: float = 1.0
    #: consecutive abnormal worker exits before quarantine (crash streaks
    #: count across peers — the executable is the common factor)
    quarantine_threshold: int = 4
    #: total worker replacements (reconnects) allowed over the pool lifetime
    max_respawns: int = 128
    #: number of concurrently leased connections (sized to ``--jobs``)
    pool_size: int = 1
    #: TCP connect + hello deadline per dial attempt
    connect_timeout: float = 5.0
    #: idle-handle heartbeat period, seconds
    heartbeat_interval: float = 0.5
    #: failure-detector timeout = rtt_mean + k * rtt_dev, clamped to
    #: [detector_floor, detector_ceiling]
    detector_k: float = 4.0
    detector_floor: float = 0.25
    detector_ceiling: float = 10.0
    #: reconnect backoff: base * 2^failures, capped
    backoff_base: float = 0.05
    backoff_max: float = 2.0
    #: consecutive reconnect failures before a peer is declared down
    max_reconnects: int = 5
    #: shared transport secret (per-frame HMAC key); must match the agents'.
    #: None means an empty MAC key — acceptable on loopback only, and agents
    #: refuse non-loopback listens in that mode.
    secret: Optional[bytes] = None


class FailureDetector:
    """EWMA RTT estimator → adaptive timeout (mean + k·dev, clamped).

    The classic Jacobson/Karels shape: a slow link raises its own mean and
    deviation, widening the timeout; a fast link keeps deadlines tight so
    real partitions are detected quickly.  Before any sample arrives the
    timeout sits at the ceiling — a cold connection gets the benefit of the
    doubt exactly once.

    One detector is shared per *peer* across every pool slot (all
    connections to a peer traverse the same link, so their samples belong
    in one estimator), which means invocation threads and the heartbeat
    thread feed it concurrently — a small lock keeps each EWMA update
    atomic so interleaved ``observe`` calls cannot tear the mean/dev pair.
    """

    def __init__(self, k: float = 4.0, floor: float = 0.25,
                 ceiling: float = 10.0, alpha: float = 0.25):
        self.k = k
        self.floor = floor
        self.ceiling = ceiling
        self.alpha = alpha
        self.rtt_mean: Optional[float] = None
        self.rtt_dev = 0.0
        self.samples = 0
        self._lock = threading.Lock()

    def observe(self, rtt: float) -> None:
        with self._lock:
            if self.rtt_mean is None:
                self.rtt_mean = rtt
                self.rtt_dev = rtt / 2
            else:
                self.rtt_dev = (
                    (1 - self.alpha) * self.rtt_dev
                    + self.alpha * abs(rtt - self.rtt_mean)
                )
                self.rtt_mean = (
                    (1 - self.alpha) * self.rtt_mean + self.alpha * rtt
                )
            self.samples += 1

    def timeout(self) -> float:
        with self._lock:
            return self._timeout_locked()

    def _timeout_locked(self) -> float:
        if self.rtt_mean is None:
            return self.ceiling
        return min(self.ceiling,
                   max(self.floor, self.rtt_mean + self.k * self.rtt_dev))

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "rtt_mean": self.rtt_mean,
                "rtt_dev": self.rtt_dev,
                "samples": self.samples,
                "timeout": self._timeout_locked(),
            }


class PeerHealthRegistry:
    """Thread-safe per-peer health ledger, shared across pools and jobs.

    The serve layer owns one of these for its whole lifetime and threads it
    into every job's pool, so ``/status`` and ``/healthz`` report peer state
    that survives individual extractions.
    """

    def __init__(self, peers=()):
        self._lock = threading.Lock()
        self._peers: dict = {}
        for address in peers:
            self._entry(address)

    def _entry(self, address: str) -> dict:
        entry = self._peers.get(address)
        if entry is None:
            entry = {
                "state": "unknown",   # unknown | up | suspect | down
                "last_heartbeat": None,  # monotonic time of last good pong
                "rtt": None,
                "connects": 0,
                "reconnects": 0,
                "fenced_replies": 0,
                "duplicates_dropped": 0,
                "quarantines": 0,
            }
            self._peers[address] = entry
        return entry

    def note_connect(self, address: str, reconnect: bool) -> None:
        with self._lock:
            entry = self._entry(address)
            entry["state"] = "up"
            entry["connects"] += 1
            if reconnect:
                entry["reconnects"] += 1

    def note_heartbeat(self, address: str, rtt: float) -> None:
        with self._lock:
            entry = self._entry(address)
            entry["state"] = "up"
            entry["last_heartbeat"] = time.monotonic()
            entry["rtt"] = rtt

    def note_suspect(self, address: str) -> None:
        with self._lock:
            entry = self._entry(address)
            if entry["state"] != "down":
                entry["state"] = "suspect"

    def note_down(self, address: str) -> None:
        with self._lock:
            self._entry(address)["state"] = "down"

    def note_fenced(self, address: str, count: int = 1) -> None:
        with self._lock:
            self._entry(address)["fenced_replies"] += count

    def note_duplicates(self, address: str, count: int) -> None:
        with self._lock:
            self._entry(address)["duplicates_dropped"] += count

    def note_quarantine(self, address: str) -> None:
        with self._lock:
            entry = self._entry(address)
            entry["state"] = "down"
            entry["quarantines"] += 1

    def snapshot(self) -> dict:
        """JSON-safe per-peer view (heartbeat age in seconds, not a stamp)."""
        now = time.monotonic()
        with self._lock:
            view = {}
            for address, entry in self._peers.items():
                out = dict(entry)
                stamp = out.pop("last_heartbeat")
                out["last_heartbeat_age"] = (
                    round(now - stamp, 3) if stamp is not None else None
                )
                view[address] = out
            return view

    def healthy(self) -> bool:
        """At least one peer is not known-down (vacuously true when empty)."""
        with self._lock:
            if not self._peers:
                return True
            return any(e["state"] != "down" for e in self._peers.values())


class RemoteWorkerHandle:
    """One leased connection to a worker agent, plus its lease state.

    All request/response access happens under :attr:`lock` — the invoking
    scheduler thread holds it for the whole invocation, the pool's heartbeat
    thread only pings when it can take it uncontended, so frames on one
    transport are never interleaved.
    """

    def __init__(self, address: str, spec: RemoteSpec,
                 transport_factory: Callable, detector: FailureDetector):
        self.address = address
        self.spec = spec
        self.transport_factory = transport_factory
        self.detector = detector
        self.lock = threading.Lock()
        self.transport: Optional[TcpTransport] = None
        #: lease generation: bumped on every reconnect and every abandoned
        #: request, so a stale reply's tokens can never match
        self.epoch = 0
        self._req = 0
        #: replies dropped by the fencing reader on this handle
        self.fenced_replies = 0
        self._duplicates_seen = 0
        #: table → (schema, shipped row-list reference) for delta shipping
        self.shipped: dict = {}
        self.last_injected: dict = {}
        self.suspect = False
        self.reconnect_failures = 0
        #: set after this handle's first successful connect, so only its
        #: second and later connects count as reconnects/respawns — a fresh
        #: slot's first dial (pool_size > 1) is not a worker replacement
        self.has_connected = False
        self.agent_pid: Optional[int] = None
        #: hello-handshake round-trip of the current connection — the first
        #: heartbeat sample, recorded even when the idle ping loop never gets
        #: the lock (busy pools: the invocations themselves prove liveness)
        self.last_hello_rtt: Optional[float] = None

    @property
    def connected(self) -> bool:
        return self.transport is not None and self.transport.alive

    # -- lease-fenced request/response --------------------------------------

    def request(self, message: dict, deadline_seconds: float) -> dict:
        """Send one fenced request and wait for *its* reply.

        Any reply bearing other tokens — a pong from an earlier heartbeat, a
        run reply from an abandoned lease — is dropped and counted.  Raises
        :class:`~repro.isolation.protocol.TransportTimeout` when the deadline
        expires; the caller decides whether that fences the lease.
        """
        self._req += 1
        req = self._req
        message = {**message, "epoch": self.epoch, "req": req}
        self.transport.send(message)
        return self._recv_matching(req, deadline_seconds)

    def _recv_matching(self, req: int, deadline_seconds: float) -> dict:
        deadline = time.perf_counter() + deadline_seconds
        while True:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                raise TransportTimeout()
            reply = self.transport.recv(remaining)
            if reply.get("epoch") == self.epoch and reply.get("req") == req:
                return reply
            self.fenced_replies += 1

    def ping(self) -> float:
        """One heartbeat round-trip; returns the RTT and feeds the detector."""
        started = time.perf_counter()
        reply = self.request({"cmd": "ping"}, self.detector.timeout())
        if not reply.get("pong"):
            raise ProtocolError(f"expected a pong, got {reply!r}")
        rtt = time.perf_counter() - started
        self.detector.observe(rtt)
        return rtt

    # -- lease lifecycle -----------------------------------------------------

    def abandon(self) -> None:
        """Give up on the outstanding request: new epoch, connection kept.

        The transport may still deliver the old reply later; the epoch bump
        guarantees the fencing reader drops it.  Keeping the connection open
        is deliberate — a straggler is cheaper to keep than to re-dial, and
        the late reply arriving at all proves the link works.
        """
        self.epoch += 1
        self.suspect = True

    def mark_dead(self) -> None:
        """The connection is unusable: close it and fence the lease."""
        self.epoch += 1
        self.suspect = False
        if self.transport is not None:
            self.transport.close()
            self.transport = None
        self.shipped = {}

    def connect(self, executable_blob: bytes) -> None:
        """Dial, handshake, and init a fresh worker on the agent.

        Raises any of :data:`_CONNECTION_ERRORS` /
        :class:`~repro.isolation.protocol.TransportTimeout` on failure; the
        pool's reconnect loop translates those into backoff + failover.
        """
        self.mark_dead()
        transport = self.transport_factory(self.address, self.spec.connect_timeout)
        try:
            self.transport = transport
            started = time.perf_counter()
            hello = self.request({"cmd": "hello"},
                                 max(self.spec.connect_timeout,
                                     self.detector.timeout()))
            if not hello.get("hello"):
                raise ProtocolError(f"bad hello reply: {hello!r}")
            # the handshake round-trip seeds the failure detector, so even
            # the first run request gets a calibrated network allowance
            self.last_hello_rtt = time.perf_counter() - started
            self.detector.observe(self.last_hello_rtt)
            self.agent_pid = hello.get("agent_pid")
            init = self.request(
                {"cmd": "init", "executable": executable_blob}, _SPAWN_TIMEOUT
            )
            if not init.get("ok"):
                raise ExtractionError(
                    f"remote worker on {self.address} failed to initialise: "
                    f"{init.get('error')}"
                )
        except BaseException:
            self.transport = None
            transport.close()
            raise
        self.suspect = False
        self.reconnect_failures = 0
        self.has_connected = True
        self.shipped = {}

    def close(self) -> None:
        if self.transport is not None:
            try:
                self.transport.send({"cmd": "shutdown",
                                     "epoch": self.epoch, "req": self._req + 1})
            except Exception:
                pass
            self.transport.close()
            self.transport = None

    def drain_transport_counters(self) -> tuple:
        """(new fenced, new duplicate) counts since the last drain."""
        fenced = self.fenced_replies
        self.fenced_replies = 0
        duplicates = 0
        if self.transport is not None:
            duplicates = self.transport.duplicates_dropped - self._duplicates_seen
            if duplicates < 0:
                duplicates = self.transport.duplicates_dropped
            self._duplicates_seen = self.transport.duplicates_dropped
        return fenced, duplicates


class RemoteWorkerPool:
    """Slot-leased pool of remote worker connections for one executable.

    Public surface mirrors :class:`~repro.isolation.supervisor.WorkerPool`
    (``invoke`` / ``stats`` / ``ordinal`` / ``respawns`` /
    ``quarantine_error`` / ``injected_totals`` / ``health`` / ``close``), so
    :class:`~repro.isolation.backend.RemoteIsolationBackend` is a thin
    subclass of the process backend.
    """

    def __init__(self, executable, spec: RemoteSpec, metrics=None,
                 registry: Optional[PeerHealthRegistry] = None,
                 transport_factory: Optional[Callable] = None):
        if not spec.peers:
            raise ExtractionError("remote isolation requires at least one peer")
        self.spec = spec
        self.metrics = metrics
        self.registry = registry if registry is not None else PeerHealthRegistry(
            spec.peers
        )
        factory = transport_factory
        if factory is None:
            factory = lambda address, timeout: TcpTransport.connect(  # noqa: E731
                address, timeout=timeout, secret=spec.secret
            )
        self.executable_blob = pack_executable(executable)
        self.stats = PoolStats()
        self.ordinal = 0
        self.consecutive_abnormal = 0
        self.respawns = 0
        self.quarantine_error: Optional[PeerQuarantined] = None
        self.injected_base: dict = {}
        #: peers declared down after a spent reconnect budget
        self._peer_down: dict = {address: False for address in spec.peers}
        self._detectors = {
            address: FailureDetector(
                k=spec.detector_k, floor=spec.detector_floor,
                ceiling=spec.detector_ceiling,
            )
            for address in spec.peers
        }
        size = max(1, spec.pool_size)
        self._handles = [
            RemoteWorkerHandle(
                spec.peers[slot % len(spec.peers)], spec, factory,
                self._detectors[spec.peers[slot % len(spec.peers)]],
            )
            for slot in range(size)
        ]
        self._slots: queue.Queue = queue.Queue()
        for slot in range(size):
            self._slots.put(slot)
        self._lock = threading.Lock()
        self.closed = False
        self._heartbeat_stop = threading.Event()
        self._heartbeat_thread = threading.Thread(
            target=self._heartbeat_loop, name="remote-heartbeat", daemon=True
        )
        self._heartbeat_thread.start()

    # -- public API ----------------------------------------------------------

    def invoke(self, db, timeout: Optional[float],
               trace_access: bool = False) -> dict:
        """Run one invocation on a remote worker; returns the reply dict.

        Raises :class:`~repro.errors.ExecutableTimeoutError` on an
        agent-enforced hard-deadline kill,
        :class:`~repro.errors.WorkerCrashedError` on a remote worker crash,
        :class:`~repro.errors.PeerUnavailable` (retryable) on a partition or
        torn connection — the lease is fenced *before* this raises, so the
        retried invocation can never be double-counted — and
        :class:`~repro.errors.PeerQuarantined` once every peer is down.
        """
        with self._lock:
            if self.closed:
                raise ExtractionError("remote worker pool is closed")
            if self.quarantine_error is not None:
                raise self.quarantine_error
        slot = self._slots.get()
        try:
            handle = self._handles[slot]
            with handle.lock:
                self._ensure_connected(handle)
                with self._lock:
                    self.ordinal += 1
                    ordinal = self.ordinal
                    self.stats.invocations += 1
                effective = (
                    timeout if timeout is not None else self.spec.default_timeout
                )
                # _deltas commits to handle.shipped as it builds the message,
                # but a dropped/partitioned frame leaves the worker's replica
                # behind that ledger.  Deltas are idempotent full-table
                # replacements, so on any failed request we roll shipped back
                # to this snapshot: the retry re-ships the same tables whether
                # or not the worker applied them the first time.
                shipped_before = dict(handle.shipped)
                message = {
                    "cmd": "run",
                    "ordinal": ordinal,
                    "timeout": timeout,
                    "trace_access": trace_access,
                    "deltas": self._deltas(handle, db),
                    "dropped": self._dropped(handle, db),
                    # the agent arms the local SIGKILL clock with this
                    "deadline": effective + self.spec.kill_grace,
                }
                try:
                    reply = handle.request(
                        message,
                        effective + self.spec.kill_grace
                        + handle.detector.timeout(),
                    )
                except TransportTimeout:
                    # Partition or straggler: fence the lease, keep the
                    # connection for the late-reply path, requeue via retry.
                    handle.shipped = shipped_before
                    handle.abandon()
                    self.registry.note_suspect(handle.address)
                    with self._lock:
                        self._count("transport_partitions_total")
                    self._drain_counters(handle)
                    raise PeerUnavailable(
                        handle.address,
                        f"no reply within {effective + self.spec.kill_grace:.3f}s"
                        " + network allowance (partition suspected)",
                        ordinal=ordinal,
                    ) from None
                except _CONNECTION_ERRORS as error:
                    handle.mark_dead()
                    self.registry.note_suspect(handle.address)
                    self._drain_counters(handle)
                    raise PeerUnavailable(
                        handle.address,
                        f"connection failed mid-invocation: {error}",
                        ordinal=ordinal,
                    ) from None
                self._drain_counters(handle)
                if reply.get("hard_timeout"):
                    # The agent SIGKILLed its worker and closed up shop.
                    handle.mark_dead()
                    with self._lock:
                        self.stats.kills += 1
                        self._count("worker_kills_total")
                        self._note_abnormal(handle)
                    raise ExecutableTimeoutError(
                        f"isolated invocation {ordinal} exceeded its "
                        f"{effective:.3f}s hard deadline and was killed"
                    )
                if reply.get("crashed"):
                    handle.mark_dead()
                    kind = reply.get("kind", "unknown")
                    with self._lock:
                        self.stats.crashes += 1
                        self._count("worker_crashes_total")
                        self._note_abnormal(handle)
                    raise WorkerCrashedError(
                        kind,
                        f"remote worker on {handle.address} died with status "
                        f"{reply.get('returncode')}",
                        ordinal=ordinal,
                    )
                with self._lock:
                    self.consecutive_abnormal = 0
                    self._record_reply_stats(handle, reply)
                # a fenced run reply is liveness evidence as good as a pong:
                # keep the peer's heartbeat age fresh through busy stretches
                # where the idle ping loop can never take the lock
                self.registry.note_heartbeat(
                    handle.address, handle.detector.rtt_mean or 0.0
                )
                return reply
        finally:
            self._slots.put(slot)

    def health(self) -> dict:
        """Pool + per-peer health for breakers and the serve /status view."""
        with self._lock:
            view = {
                "invocations": self.stats.invocations,
                "crashes": self.stats.crashes,
                "kills": self.stats.kills,
                "restarts": self.stats.restarts,
                "consecutive_abnormal": self.consecutive_abnormal,
                "respawns": self.respawns,
                "respawn_budget": self.spec.max_respawns,
                "quarantined": self.quarantine_error is not None,
            }
        view["peers"] = self.registry.snapshot()
        return view

    def injected_totals(self) -> dict:
        totals = dict(self.injected_base)
        for handle in self._handles:
            for key, value in handle.last_injected.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def close(self) -> None:
        with self._lock:
            if self.closed:
                return
            self.closed = True
        self._heartbeat_stop.set()
        self._heartbeat_thread.join(timeout=2)
        for handle in self._handles:
            with handle.lock:
                self._absorb_injected(handle)
                handle.close()

    # -- connection management ----------------------------------------------

    def _ensure_connected(self, handle: RemoteWorkerHandle) -> None:
        """Leave the handle with a live, trusted connection (or raise).

        Caller holds ``handle.lock``.  A suspect connection is probed with a
        ping first — a pong clears suspicion without re-dialling (and the
        probe's reader drains any fenced late replies, which is the
        partition-then-late-reply recovery path).
        """
        if handle.connected and handle.suspect:
            try:
                handle.ping()
                handle.suspect = False
                self.registry.note_heartbeat(handle.address,
                                             handle.detector.rtt_mean or 0.0)
            except (TransportTimeout, *_CONNECTION_ERRORS):
                handle.mark_dead()
            finally:
                self._drain_counters(handle)
        if handle.connected:
            return
        while True:
            if self._peer_down.get(handle.address, False):
                self._failover(handle)
            if handle.reconnect_failures > 0:
                backoff = min(
                    self.spec.backoff_base * (2 ** (handle.reconnect_failures - 1)),
                    self.spec.backoff_max,
                )
                time.sleep(backoff)
            # only this handle's second and later connects are worker
            # replacements; a fresh slot's first dial is plain startup even
            # when sibling slots have already run invocations
            is_reconnect = handle.has_connected
            if is_reconnect:
                with self._lock:
                    if self.respawns >= self.spec.max_respawns:
                        self._quarantine("respawn budget spent")
                    self.respawns += 1
                    self.stats.restarts += 1
                    self._count("worker_restarts_total")
                    self._count("transport_reconnects_total")
            try:
                handle.connect(self.executable_blob)
            except (TransportTimeout, *_CONNECTION_ERRORS) as error:
                handle.reconnect_failures += 1
                self.registry.note_suspect(handle.address)
                if handle.reconnect_failures >= self.spec.max_reconnects:
                    self._declare_peer_down(handle.address)
                    handle.reconnect_failures = 0
                    self._failover(handle)  # raises when no peer is left
                continue
            self.registry.note_connect(handle.address, reconnect=is_reconnect)
            self._peer_down[handle.address] = False
            if handle.last_hello_rtt is not None:
                # the handshake IS the first heartbeat: on busy pools the
                # idle ping loop may never win the lock, so record it here
                self.registry.note_heartbeat(handle.address,
                                             handle.last_hello_rtt)
                with self._lock:
                    if self.metrics is not None:
                        self.metrics.histogram(
                            "heartbeat_rtt_seconds"
                        ).observe(handle.last_hello_rtt)
            return

    def _failover(self, handle: RemoteWorkerHandle) -> None:
        """Re-point a handle at the next healthy peer; caller holds its lock."""
        alive = [a for a in self.spec.peers if not self._peer_down.get(a)]
        if not alive:
            with self._lock:
                self._quarantine("every peer is unreachable")
        start = self.spec.peers.index(handle.address)
        ordered = [
            self.spec.peers[(start + offset) % len(self.spec.peers)]
            for offset in range(1, len(self.spec.peers) + 1)
        ]
        target = next(a for a in ordered if not self._peer_down.get(a))
        handle.address = target
        handle.detector = self._detectors[target]
        handle.reconnect_failures = 0

    def _declare_peer_down(self, address: str) -> None:
        self._peer_down[address] = True
        self.registry.note_quarantine(address)
        with self._lock:
            self._count("peer_quarantines_total", labels={"peer": address})

    def _heartbeat_loop(self) -> None:
        while not self._heartbeat_stop.wait(self.spec.heartbeat_interval):
            for handle in self._handles:
                if self._heartbeat_stop.is_set():
                    return
                if not handle.lock.acquire(blocking=False):
                    continue  # an invocation owns the connection; it IS the probe
                try:
                    if not handle.connected or handle.suspect:
                        continue
                    try:
                        rtt = handle.ping()
                    except TransportTimeout:
                        handle.abandon()  # fences the lost pong
                        self.registry.note_suspect(handle.address)
                        with self._lock:
                            self._count("heartbeat_timeouts_total")
                        continue
                    except _CONNECTION_ERRORS:
                        handle.mark_dead()
                        self.registry.note_suspect(handle.address)
                        continue
                    self.registry.note_heartbeat(handle.address, rtt)
                    with self._lock:
                        if self.metrics is not None:
                            self.metrics.histogram(
                                "heartbeat_rtt_seconds"
                            ).observe(rtt)
                finally:
                    self._drain_counters(handle)
                    handle.lock.release()

    # -- ledger internals (mirrors WorkerPool) -------------------------------

    def _note_abnormal(self, handle: RemoteWorkerHandle) -> None:
        """Record an abnormal worker exit; caller holds the pool lock."""
        self._absorb_injected(handle)
        self.consecutive_abnormal += 1
        if self.consecutive_abnormal >= self.spec.quarantine_threshold:
            self._quarantine(
                f"{self.consecutive_abnormal} consecutive abnormal worker exits"
            )

    def _quarantine(self, reason: str):
        """Flip the sticky quarantine; caller holds the pool lock."""
        self.quarantine_error = PeerQuarantined(
            reason, self.consecutive_abnormal, self.respawns,
            peers=self.spec.peers,
        )
        self._count("worker_quarantines_total")
        raise self.quarantine_error

    def _absorb_injected(self, handle: RemoteWorkerHandle) -> None:
        for key, value in handle.last_injected.items():
            self.injected_base[key] = self.injected_base.get(key, 0) + value
        handle.last_injected = {}

    def _record_reply_stats(self, handle: RemoteWorkerHandle, reply: dict) -> None:
        stats = reply.get("stats") or {}
        rss = int(stats.get("maxrss_bytes", 0))
        if rss > self.stats.rss_peak_bytes:
            self.stats.rss_peak_bytes = rss
            if self.metrics is not None:
                self.metrics.gauge("worker_rss_peak_bytes").set(rss)
        if "injected" in stats:
            handle.last_injected = dict(stats["injected"])

    def _drain_counters(self, handle: RemoteWorkerHandle) -> None:
        """Fold the handle's fencing/dedup tallies into metrics + registry."""
        fenced, duplicates = handle.drain_transport_counters()
        if fenced:
            self.registry.note_fenced(handle.address, fenced)
        if duplicates:
            self.registry.note_duplicates(handle.address, duplicates)
        if self.metrics is not None and (fenced or duplicates):
            with self._lock:
                if fenced:
                    self.metrics.counter("fenced_replies_total").inc(fenced)
                if duplicates:
                    self.metrics.counter(
                        "transport_duplicates_dropped_total"
                    ).inc(duplicates)

    def _count(self, name: str, labels: Optional[dict] = None) -> None:
        if self.metrics is not None:
            self.metrics.counter(name, labels=labels).inc()

    # -- incremental state shipping (identical contract to WorkerPool) -------

    def _deltas(self, handle: RemoteWorkerHandle, db) -> dict:
        deltas = {}
        for name, schema, rows in db.table_states():
            prev = handle.shipped.get(name)
            if prev is not None and prev[0] == schema and prev[1] is rows:
                continue
            handle.shipped[name] = (schema, rows)
            deltas[name] = {"schema": schema, "rows": rows}
        return deltas

    def _dropped(self, handle: RemoteWorkerHandle, db) -> list:
        live = {name for name, _, _ in db.table_states()}
        dropped = [name for name in handle.shipped if name not in live]
        for name in dropped:
            del handle.shipped[name]
        return dropped
