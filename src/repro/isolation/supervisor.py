"""Supervisor side of the worker pool: spawn, ship, deadline, kill, classify.

The supervisor is the trusted half of the invocation boundary.  It owns

* the **wall clock** — every request has a hard deadline; a worker that has
  not replied by then is SIGKILLed, which is the only preemption that works
  against a busy-looping application (cooperative engine deadlines never
  fire inside ``while True: pass``);
* the **ledger** — invocations, rows scanned, RSS peaks, crash/restart/kill
  counts are all recorded here exactly once, whatever happened to the worker;
* the **crash taxonomy** — abnormal exits are classified by wait status
  (SIGSEGV/SIGBUS → ``segfault``, SIGABRT → ``abort``, the memory-cap exit
  status or an OOM-killer SIGKILL → ``oom``, a supervisor-initiated SIGKILL →
  hard timeout) and folded into the retryable-vs-fatal scheme of
  :mod:`repro.resilience.retry`: crashes are transient (respawn + retry),
  hard timeouts are :class:`~repro.errors.ExecutableTimeoutError` with the
  exact semantics the From-clause extractor already relies on;
* the **quarantine policy** — K consecutive abnormal exits, or a spent
  respawn budget, flips the pool into a sticky
  :class:`~repro.errors.WorkerQuarantined` state: an executable that kills
  every process it touches gets a structured refusal, not an infinite
  respawn loop.

State shipping is incremental: each handle remembers the exact row-list
object last shipped per table (copy-on-write row lists are rebound on every
mutation, so object identity is a sound change detector — and the held
reference pins the id against reuse).  A fresh worker starts with an empty
ship-state and receives the full silo on its first run.
"""

from __future__ import annotations

import os
import queue
import signal
import subprocess
import sys
import threading
from dataclasses import dataclass
from typing import Optional

from repro.errors import (
    ExecutableTimeoutError,
    ExtractionError,
    WorkerCrashedError,
    WorkerQuarantined,
)
from repro.isolation.protocol import (
    EXIT_MEMORY,
    PipeTransport,
    TransportTimeout,
    pack_executable,
    write_frame,
)

#: exit-signal → crash kind (negated Popen returncodes)
_SIGNAL_KINDS = {
    signal.SIGSEGV: "segfault",
    signal.SIGBUS: "segfault",
    signal.SIGABRT: "abort",
    signal.SIGKILL: "oom",  # not ours → almost always the kernel OOM killer
}

#: seconds allowed for a fresh worker to answer the init handshake
_SPAWN_TIMEOUT = 30.0


@dataclass(frozen=True)
class WorkerSpec:
    """Pool policy, lifted from :class:`~repro.core.config.ExtractionConfig`."""

    #: RLIMIT_AS cap per worker, bytes (None = uncapped)
    memory_limit_bytes: Optional[int] = None
    #: hard deadline when the caller passed no cooperative timeout, seconds
    default_timeout: float = 30.0
    #: slack added to the cooperative timeout before SIGKILL, so clean
    #: engine-side timeouts win the race and SIGKILL only fires on real hangs
    kill_grace: float = 1.0
    #: consecutive abnormal exits before the executable is quarantined
    quarantine_threshold: int = 4
    #: total respawns allowed over the pool's lifetime
    max_respawns: int = 128
    #: number of worker processes; sized to ``--jobs`` so the probe
    #: scheduler's threads each lease their own worker (slot leasing makes
    #: concurrent invocations safe at any pool size — excess callers queue)
    pool_size: int = 1


class _HardTimeout(Exception):
    """Internal sentinel: the response deadline expired (worker still alive)."""


class _WorkerDied(Exception):
    """Internal sentinel: the pipe closed before a full reply arrived."""


class LocalWorkerProcess:
    """One spawned worker subprocess behind a :class:`PipeTransport`.

    The spawn/kill/classify mechanics, shared by the in-process
    :class:`WorkerHandle` and the remote :mod:`repro.isolation.agent` (which
    supervises a local worker on behalf of a network supervisor).  Exposes
    the raw protocol exceptions (:class:`TransportTimeout` / ``EOFError``);
    callers map them into their own crash handling.
    """

    def __init__(self, spec: WorkerSpec):
        command = [sys.executable, "-m", "repro.isolation.worker"]
        if spec.memory_limit_bytes:
            command += ["--memory-limit-bytes", str(spec.memory_limit_bytes)]
        env = dict(os.environ)
        # The worker must import repro regardless of how the parent found it:
        # prepend the directory *containing* the repro package.
        import repro

        package_root = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__))
        )
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            package_root if not existing else package_root + os.pathsep + existing
        )
        self.proc = subprocess.Popen(
            command,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=None,  # worker tracebacks stay visible on the user's stderr
            env=env,
        )
        self.transport = PipeTransport(self.proc.stdin, self.proc.stdout.fileno())

    @property
    def alive(self) -> bool:
        return self.proc.poll() is None

    def request(self, message: dict, deadline_seconds: Optional[float]) -> dict:
        """Send one frame and read the reply under a hard deadline.

        Raises :class:`TransportTimeout` when the deadline expires and
        ``EOFError``/``OSError`` when the worker's pipe closes mid-reply.
        """
        self.transport.send(message)
        return self.transport.recv(deadline_seconds)

    def kill(self) -> None:
        """SIGKILL and reap; idempotent."""
        if self.proc.poll() is None:
            try:
                self.proc.kill()
            except OSError:
                pass
        try:
            self.proc.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover - kernel refusal
            pass
        self._close_pipes()

    def shutdown(self) -> None:
        """Polite exit, escalating to SIGKILL."""
        if self.proc.poll() is None:
            try:
                write_frame(self.proc.stdin, {"cmd": "shutdown"})
                self.proc.stdin.close()
                self.proc.wait(timeout=2)
            except Exception:
                pass
        self.kill()

    def _close_pipes(self) -> None:
        for pipe in (self.proc.stdin, self.proc.stdout):
            try:
                if pipe is not None:
                    pipe.close()
            except OSError:
                pass

    def exit_kind(self) -> str:
        """Classify a dead worker's wait status into the crash taxonomy."""
        code = self.proc.returncode
        if code is None:  # pragma: no cover - callers reap first
            return "unknown"
        if code < 0:
            return _SIGNAL_KINDS.get(-code, f"signal-{-code}")
        if code == EXIT_MEMORY:
            return "oom"
        return f"exit-{code}"


class WorkerHandle:
    """One supervised worker process plus its incremental ship-state."""

    def __init__(self, spec: WorkerSpec, executable_blob: bytes):
        self._process = LocalWorkerProcess(spec)
        self.proc = self._process.proc
        #: table → (schema, shipped row-list reference); holding the list
        #: object both detects changes (identity) and pins its id
        self.shipped: dict[str, tuple] = {}
        self.last_injected: dict[str, int] = {}
        try:
            reply = self._process.request(
                {"cmd": "init", "executable": executable_blob}, _SPAWN_TIMEOUT
            )
        except TransportTimeout:
            self.kill()
            raise ExtractionError(
                "isolated worker failed to initialise: init handshake timed out"
            ) from None
        except (EOFError, OSError) as error:
            self.kill()
            raise ExtractionError(
                f"isolated worker failed to initialise: {error}"
            ) from None
        if not reply.get("ok"):
            error = reply.get("error")
            self.kill()
            raise ExtractionError(f"isolated worker failed to initialise: {error}")
        self.pid = reply.get("pid", self.proc.pid)

    @property
    def alive(self) -> bool:
        return self._process.alive

    # -- request/response ---------------------------------------------------

    def request(self, message: dict, deadline_seconds: float) -> dict:
        """Send one frame and read the reply under a hard deadline.

        Raises :class:`_HardTimeout` when the deadline expires and
        :class:`_WorkerDied` when the worker's pipe closes mid-reply; the
        pool turns those into kills/classified crashes.
        """
        try:
            return self._process.request(message, deadline_seconds)
        except TransportTimeout:
            raise _HardTimeout() from None
        except (EOFError, BrokenPipeError, OSError) as error:
            raise _WorkerDied(str(error)) from error

    # -- lifecycle ----------------------------------------------------------

    def kill(self) -> None:
        """SIGKILL and reap; idempotent."""
        self._process.kill()

    def shutdown(self) -> None:
        """Polite exit, escalating to SIGKILL."""
        self._process.shutdown()

    def exit_kind(self) -> str:
        """Classify a dead worker's wait status into the crash taxonomy."""
        return self._process.exit_kind()


@dataclass
class PoolStats:
    """Lifetime accounting, reported on the chaos CLI and in span tags."""

    invocations: int = 0
    crashes: int = 0
    kills: int = 0
    restarts: int = 0
    rss_peak_bytes: int = 0


class WorkerPool:
    """Round-robin pool of supervised workers for one executable."""

    def __init__(self, executable, spec: WorkerSpec, metrics=None):
        self.spec = spec
        self.metrics = metrics
        self.executable_blob = pack_executable(executable)
        self.stats = PoolStats()
        self.ordinal = 0
        self.consecutive_abnormal = 0
        self.respawns = 0
        self.quarantine_error: Optional[WorkerQuarantined] = None
        #: accumulated chaos-injection counts from workers that already died
        self.injected_base: dict[str, int] = {}
        size = max(1, spec.pool_size)
        self._workers: list[Optional[WorkerHandle]] = [None] * size
        #: slot leasing: a caller takes a slot index for the whole invocation
        #: (blocking when all are leased), so each worker handle — and its
        #: incremental ship-state — is touched by one thread at a time
        self._slots: queue.Queue = queue.Queue()
        for slot in range(size):
            self._slots.put(slot)
        #: guards the pool ledger (ordinal, stats, quarantine, respawns,
        #: injected totals) against concurrent scheduler threads
        self._lock = threading.Lock()
        self.closed = False

    # -- public API ---------------------------------------------------------

    def invoke(self, db, timeout: Optional[float], trace_access: bool = False) -> dict:
        """Run one invocation out of process; returns the worker's reply dict.

        Raises :class:`~repro.errors.ExecutableTimeoutError` on a hard-
        deadline kill, :class:`~repro.errors.WorkerCrashedError` on an
        abnormal exit, and :class:`~repro.errors.WorkerQuarantined` once the
        executable is quarantined.  A *clean* application error is not raised
        here: the reply comes back with ``ok=False`` so the backend can mirror
        the run's stats before re-raising it.
        """
        with self._lock:
            if self.closed:
                raise ExtractionError("worker pool is closed")
            if self.quarantine_error is not None:
                raise self.quarantine_error
        slot = self._slots.get()
        try:
            worker = self._ensure_worker(slot)
            with self._lock:
                self.ordinal += 1
                ordinal = self.ordinal
                self.stats.invocations += 1
            effective = (
                timeout if timeout is not None else self.spec.default_timeout
            )
            message = {
                "cmd": "run",
                "ordinal": ordinal,
                "timeout": timeout,
                "trace_access": trace_access,
                "deltas": self._deltas(worker, db),
                "dropped": self._dropped(worker, db),
            }
            try:
                reply = worker.request(message, effective + self.spec.kill_grace)
            except _HardTimeout:
                worker.kill()
                self._workers[slot] = None
                with self._lock:
                    self.stats.kills += 1
                    self._count("worker_kills_total")
                    self._note_abnormal(worker)
                raise ExecutableTimeoutError(
                    f"isolated invocation {ordinal} exceeded its "
                    f"{effective:.3f}s hard deadline and was killed"
                ) from None
            except _WorkerDied:
                worker.kill()  # reap; usually already dead
                self._workers[slot] = None
                kind = worker.exit_kind()
                with self._lock:
                    self.stats.crashes += 1
                    self._count("worker_crashes_total")
                    self._note_abnormal(worker)
                raise WorkerCrashedError(
                    kind,
                    f"worker pid {worker.pid} died with status "
                    f"{worker.proc.returncode}",
                    ordinal=ordinal,
                ) from None
            # A reply — normal or a clean application error — means the
            # process survived the invocation: the crash streak is over.
            with self._lock:
                self.consecutive_abnormal = 0
                self._record_reply_stats(worker, reply)
            return reply
        finally:
            self._slots.put(slot)

    def health(self) -> dict:
        """Point-in-time pool health, for breakers and the serve /status view."""
        with self._lock:
            return {
                "invocations": self.stats.invocations,
                "crashes": self.stats.crashes,
                "kills": self.stats.kills,
                "restarts": self.stats.restarts,
                "consecutive_abnormal": self.consecutive_abnormal,
                "respawns": self.respawns,
                "respawn_budget": self.spec.max_respawns,
                "quarantined": self.quarantine_error is not None,
            }

    def injected_totals(self) -> dict[str, int]:
        """Chaos-injection counts across all worker generations."""
        totals = dict(self.injected_base)
        for worker in self._workers:
            if worker is not None:
                for key, value in worker.last_injected.items():
                    totals[key] = totals.get(key, 0) + value
        return totals

    def close(self) -> None:
        with self._lock:
            if self.closed:
                return
            self.closed = True
        for slot, worker in enumerate(self._workers):
            if worker is not None:
                self._absorb_injected(worker)
                worker.shutdown()
                self._workers[slot] = None

    # -- internals ----------------------------------------------------------

    def _ensure_worker(self, slot: int) -> WorkerHandle:
        """Return the leased slot's live worker, spawning one if needed.

        The slot is leased to the calling thread, so handle access needs no
        lock; only the respawn ledger does.  The (slow) process spawn happens
        outside the lock.
        """
        worker = self._workers[slot]
        if worker is not None and worker.alive:
            return worker
        if worker is not None:
            self._workers[slot] = None
        with self._lock:
            is_restart = self.stats.invocations > 0
            if is_restart:
                if self.respawns >= self.spec.max_respawns:
                    self._quarantine("respawn budget spent")
                self.respawns += 1
                self.stats.restarts += 1
                self._count("worker_restarts_total")
        handle = WorkerHandle(self.spec, self.executable_blob)
        self._workers[slot] = handle
        return handle

    def _note_abnormal(self, worker: WorkerHandle) -> None:
        """Record an abnormal exit; caller holds the pool lock."""
        self._absorb_injected(worker)
        self.consecutive_abnormal += 1
        if self.consecutive_abnormal >= self.spec.quarantine_threshold:
            self._quarantine(
                f"{self.consecutive_abnormal} consecutive abnormal worker exits"
            )

    def _quarantine(self, reason: str):
        self.quarantine_error = WorkerQuarantined(
            reason, self.consecutive_abnormal, self.respawns
        )
        self._count("worker_quarantines_total")
        raise self.quarantine_error

    def _absorb_injected(self, worker: WorkerHandle) -> None:
        for key, value in worker.last_injected.items():
            self.injected_base[key] = self.injected_base.get(key, 0) + value
        worker.last_injected = {}

    def _record_reply_stats(self, worker: WorkerHandle, reply: dict) -> None:
        stats = reply.get("stats") or {}
        rss = int(stats.get("maxrss_bytes", 0))
        if rss > self.stats.rss_peak_bytes:
            self.stats.rss_peak_bytes = rss
            if self.metrics is not None:
                self.metrics.gauge("worker_rss_peak_bytes").set(rss)
        if "injected" in stats:
            worker.last_injected = dict(stats["injected"])

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    # -- incremental state shipping -----------------------------------------

    def _deltas(self, worker: WorkerHandle, db) -> dict:
        deltas = {}
        for name, schema, rows in db.table_states():
            prev = worker.shipped.get(name)
            if prev is not None and prev[0] == schema and prev[1] is rows:
                continue
            worker.shipped[name] = (schema, rows)
            deltas[name] = {"schema": schema, "rows": rows}
        return deltas

    def _dropped(self, worker: WorkerHandle, db) -> list:
        live = {name for name, _, _ in db.table_states()}
        dropped = [name for name in worker.shipped if name not in live]
        for name in dropped:
            del worker.shipped[name]
        return dropped
