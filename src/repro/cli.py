"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``workloads`` — list the bundled hidden-query workloads;
* ``extract``   — build a synthetic instance, hide a workload query in an
  obfuscated executable, run UNMASQUE, and print the extracted SQL with the
  per-module timing profile;
* ``sql``       — extract an ad-hoc hidden query supplied on the command line
  (against a chosen synthetic instance);
* ``trace-report`` — render a ``--trace-out`` JSONL trace as a flame-style
  span tree plus a top-N slowest-queries table;
* ``chaos``     — run one extraction under a named fault-injection profile
  (deterministic, seeded) and report whether it survived: identical SQL to
  the fault-free run, retries, timeouts, and degradations;
* ``verify``    — answer "is this hidden query inside the extractable class?"
  with a structured verdict and per-clause confidence (exit 4 when
  out-of-class) instead of risking a plausible-but-wrong SQL string;
* ``explain``   — extract a hidden query with the clause-level provenance
  recorder attached and print every clause of the result with the minimal
  probe-evidence chain that established it (or re-render the report from a
  ``--ledger`` file without re-running anything);
* ``trace-diff`` — compare two runs (SQLite run ledgers and/or bench
  payloads) clause by clause: SQL deltas, per-module self-time and
  invocation-count regressions, cache hit-rate drift.

Extraction commands accept ``--trace-out FILE`` (hierarchical span trace,
JSONL) and ``--metrics-out FILE`` (counters/histograms snapshot, JSON);
without these flags no tracer is attached and extraction runs exactly as
before.  ``--ledger FILE`` additionally persists the run — clause evidence,
per-module breakdown, and the raw probe stream — to a durable SQLite run
ledger (written incrementally, so killed runs keep their partial history).  ``--checkpoint-dir DIR`` enables per-module checkpoint/resume
(``--fresh`` discards a stale checkpoint instead of resuming from it);
``--best-effort`` downgrades non-essential module failures (order by, limit,
disjunctions, checker) to recorded degradations instead of aborting; the
``--budget-*`` flags arm the resource watchdog (invocations, rows scanned,
cells materialized, wall-clock seconds).  ``--isolate process`` routes every
invocation through a supervised worker subprocess (hard SIGKILL deadlines,
``--worker-memory-mb`` RSS caps, crash classification and quarantine — see
``repro.isolation``); the hard-fault chaos profiles (``hang``, ``crash``)
require it.

``verify --certify`` additionally runs the bounded symbolic equivalence
checker (``repro.veriq``) over the extracted SQL: the verdict is either a
*certificate* (no distinguishing database exists within the explored bound)
or a concrete *counterexample* database (JSON, ``--counterexample-out``)
on which the extraction and the application demonstrably diverge, after the
CEGIS loop (counterexample -> D_I augmentation -> re-extraction) has had
``--certify-rounds`` chances to repair it.

Exit status: 0 success; 1 extraction/engine error (one-line ``error: ...``,
never a traceback); 2 usage error; 3 empty initial result; 4 ``verify``
verdict ``out_of_class``; 5 transport-level quarantine (every ``--isolate
remote`` peer unreachable after capped-backoff reconnects); 6 ``verify
--certify`` found a counterexample the CEGIS loop could not resolve; 130
interrupted by SIGINT/SIGTERM (after printing a ``--checkpoint-dir`` resume
hint).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.apps.executable import SQLExecutable
from repro.core.config import ExtractionConfig
from repro.core.pipeline import UnmasqueExtractor
from repro.errors import PeerQuarantined, ReproError


def _load_workloads():
    from repro.workloads import (
        having_queries,
        job_queries,
        regal_queries,
        tpcds_queries,
        tpch_queries,
    )

    return {
        "tpch": tpch_queries,
        "tpcds": tpcds_queries,
        "job": job_queries,
        "regal": regal_queries,
        "having": having_queries,
    }


def _build_database(workload: str, scale: float, seed: int):
    from repro.datagen import imdb, tpcds, tpch

    if workload == "job":
        return imdb.build_database(movies=max(50, int(scale * 100_000)), seed=seed)
    if workload == "tpcds":
        return tpcds.build_database(sales=max(500, int(scale * 1_000_000)), seed=seed)
    return tpch.build_database(scale=scale, seed=seed)


def _make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="UNMASQUE hidden-query extraction (SIGMOD 2021 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list bundled workloads and their queries")

    extract = sub.add_parser("extract", help="extract one bundled hidden query")
    extract.add_argument("--workload", default="tpch", choices=list(_load_workloads()))
    extract.add_argument("--query", required=True, help="query name, e.g. Q3")
    _common_extraction_args(extract)

    adhoc = sub.add_parser("sql", help="extract an ad-hoc hidden query")
    adhoc.add_argument("--workload", default="tpch", choices=["tpch", "tpcds", "job"],
                       help="which synthetic instance to run against")
    adhoc.add_argument("query_sql", help="the SQL text to hide and re-extract")
    _common_extraction_args(adhoc)

    report = sub.add_parser("trace-report", help="render a --trace-out JSONL trace")
    report.add_argument("trace_file", help="JSONL trace written by --trace-out")
    report.add_argument("--top", type=int, default=10,
                        help="slowest engine queries to list (default 10)")
    report.add_argument("--max-children", type=int, default=8,
                        help="children shown per span before eliding (default 8)")

    from repro.resilience.faults import FAULT_PROFILES

    chaos = sub.add_parser(
        "chaos",
        help="extract one hidden query under fault injection and report survival",
    )
    chaos.add_argument("--workload", default="tpch", choices=list(_load_workloads()))
    chaos.add_argument("--query", required=True, help="query name, e.g. Q3")
    chaos.add_argument("--profile", default="transient",
                       choices=sorted(FAULT_PROFILES) + ["disk", "net",
                                                         "serve-kill"],
                       help="named fault profile (default: transient); "
                            "'serve-kill' SIGKILLs a live `repro serve` "
                            "between module boundaries and proves every job "
                            "converges after restarts; 'disk' injects "
                            "storage faults (torn/short writes, ENOSPC, EIO, "
                            "lost fsync) into the checkpoint store, job "
                            "journal, and provenance ledger and proves "
                            "recovery for every fault class; 'net' injects "
                            "wire faults (delay, drop, partition, torn "
                            "frames, duplicates, reordering, corruption, "
                            "byte-drip) into the remote worker transport "
                            "over a loopback agent and proves byte-identical "
                            "SQL plus exactly-once accounting for every "
                            "fault class x pipeline phase")
    chaos.add_argument("--fast", action="store_true",
                       help="net only: one mid-pipeline cell per fault class "
                            "instead of the full early/mid/late matrix (the "
                            "CI smoke configuration)")
    chaos.add_argument("--chaos-seed", type=int, default=1337,
                       help="seed for the fault injector (default 1337)")
    chaos.add_argument("--max-attempts", type=int, default=6,
                       help="retry attempts per invocation (default 6)")
    chaos.add_argument("--crash-at", type=int, default=None, metavar="N",
                       help="also inject a hard crash at invocation N, then "
                            "auto-resume from the checkpoint")
    chaos.add_argument("--kills", type=int, default=2, metavar="N",
                       help="serve-kill only: SIGKILL the server N times "
                            "(default 2)")
    chaos.add_argument("--serve-jobs", type=int, default=3, metavar="N",
                       help="serve-kill only: concurrent jobs submitted "
                            "(default 3)")
    chaos.add_argument("--serve-dir", metavar="DIR", default=None,
                       help="serve-kill only: journal/checkpoint directory "
                            "(default: a fresh temp dir)")
    _common_extraction_args(chaos)

    serve = sub.add_parser(
        "serve",
        help="run the long-lived extraction service: concurrent jobs over a "
             "JSON HTTP API with admission control, circuit breaking, and a "
             "crash-safe job journal",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765,
                       help="TCP port; 0 picks an ephemeral port and prints "
                            "it (default 8765)")
    serve.add_argument("--journal", metavar="FILE",
                       default="serve-journal.sqlite",
                       help="crash-safe SQLite job journal; restarting "
                            "against the same journal recovers interrupted "
                            "jobs (default: serve-journal.sqlite)")
    serve.add_argument("--checkpoint-root", metavar="DIR",
                       default="serve-checkpoints",
                       help="per-job checkpoint directories live under here "
                            "(default: serve-checkpoints)")
    serve.add_argument("--queue-capacity", type=int, default=16, metavar="N",
                       help="admission queue bound; a full queue rejects "
                            "with `queue_full` instead of stalling "
                            "(default 16)")
    serve.add_argument("--workers", default="2", metavar="N|HOST:PORT,...",
                       help="an integer N runs N concurrent extraction "
                            "worker threads in-process (default 2); a "
                            "comma-separated host:port list instead "
                            "dispatches isolated invocations to those remote "
                            "worker agents (one extraction thread per peer), "
                            "with per-peer health in /status and /healthz")
    serve.add_argument("--breaker-threshold", type=int, default=3, metavar="K",
                       help="consecutive worker-health failures that open "
                            "the circuit breaker (default 3)")
    serve.add_argument("--breaker-cooldown", type=float, default=30.0,
                       metavar="S",
                       help="seconds the breaker stays open before admitting "
                            "a half-open probe job (default 30)")
    serve.add_argument("--tenant-max-queued", type=int, default=None,
                       metavar="N",
                       help="per-tenant cap on jobs queued or running at once")
    serve.add_argument("--tenant-max-invocations", type=int, default=None,
                       metavar="N",
                       help="per-tenant cumulative invocation budget")
    serve.add_argument("--tenant-max-seconds", type=float, default=None,
                       metavar="S",
                       help="per-tenant cumulative extraction wall-clock "
                            "budget")
    serve.add_argument("--tenant-quarantine-threshold", type=int, default=None,
                       metavar="K",
                       help="consecutive failed jobs before a tenant is "
                            "quarantined")
    serve.add_argument("--ledger", metavar="FILE", default=None,
                       help="persist every job's clause-evidence provenance "
                            "to this run ledger; /jobs/<id> surfaces the "
                            "run pointer")
    serve.add_argument("--drain-grace", type=float, default=60.0, metavar="S",
                       help="seconds to wait on SIGTERM for in-flight jobs "
                            "to finish or checkpoint (default 60)")
    serve.add_argument("--memory-high-mb", type=float, default=None,
                       metavar="MB",
                       help="memory high watermark; above it running jobs "
                            "are checkpointed-and-evicted (rehydrated when "
                            "pressure subsides) and new submissions are "
                            "shed with 429 memory_pressure + Retry-After "
                            "(default: governor disabled)")
    serve.add_argument("--memory-low-mb", type=float, default=None,
                       metavar="MB",
                       help="memory low watermark eviction target "
                            "(default: 80%% of --memory-high-mb)")
    serve.add_argument("--shared-plan-cache", type=int, default=2048,
                       metavar="N",
                       help="entry capacity of the compiled-plan cache "
                            "shared across concurrent jobs; 0 gives each "
                            "job a private cache (default 2048)")

    bench = sub.add_parser(
        "bench",
        help="benchmark the probe scheduler across --jobs levels and write "
             "BENCH_extraction.json",
    )
    bench.add_argument("--queries", nargs="+", default=None, metavar="Q",
                       help="TPC-H query names to benchmark (default: Q1 Q3 Q6)")
    bench.add_argument("--jobs", type=int, nargs="+", default=None, metavar="N",
                       help="jobs levels to sweep (default: 1 4; 1 is always "
                            "included as the speedup base)")
    bench.add_argument("--scale", type=float, default=None,
                       help="synthetic data scale factor")
    bench.add_argument("--seed", type=int, default=7)
    bench.add_argument("--latency-ms", type=float, default=None, metavar="MS",
                       help="simulated application round-trip latency per "
                            "physical invocation (default 4)")
    bench.add_argument("--out", metavar="FILE", default="BENCH_extraction.json",
                       help="where to write the payload "
                            "(default: BENCH_extraction.json)")
    bench.add_argument("--baseline", metavar="FILE", default=None,
                       help="compare against this committed baseline payload "
                            "and exit 1 on regression")
    bench.add_argument("--max-regression", type=float, default=0.25,
                       help="tolerated fractional regression vs the baseline "
                            "(default 0.25)")
    bench.add_argument("--ledger", metavar="FILE", default=None,
                       help="persist every (query, jobs) run with its clause "
                            "evidence to this SQLite run ledger")
    bench.add_argument("--transport-overhead", action="store_true",
                       help="also measure --isolate remote (TCP loopback "
                            "worker agent) against --isolate process at "
                            "--jobs 4 and fail if the remote transport adds "
                            "more than 10%% wall-clock overhead; the result "
                            "lands in the payload's transport_overhead "
                            "section")

    verify = sub.add_parser(
        "verify",
        help="check whether a hidden query is inside the extractable class "
             "(EQC) instead of extracting it",
    )
    verify.add_argument("--workload", default="tpch", choices=list(_load_workloads()))
    verify.add_argument("--query", default=None, help="bundled query name, e.g. Q3")
    verify.add_argument("--sql", default=None, metavar="SQL",
                        help="ad-hoc SQL text to hide and verify")
    verify.add_argument("--certify", action="store_true",
                        help="run the bounded symbolic equivalence checker "
                             "after extraction: exit 0 with a certificate "
                             "(no distinguishing database within bounds) or "
                             "6 with a concrete counterexample database")
    verify.add_argument("--certify-rows", type=int, default=2, metavar="K",
                        help="rows per table in symbolic databases — the "
                             "bound certificates are quantified over "
                             "(default 2)")
    verify.add_argument("--certify-databases", type=int, default=512,
                        metavar="N",
                        help="cap on symbolic databases per round "
                             "(default 512)")
    verify.add_argument("--certify-rounds", type=int, default=2, metavar="N",
                        help="CEGIS rounds: counterexample -> D_I "
                             "augmentation -> re-extraction (default 2)")
    verify.add_argument("--counterexample-out", metavar="FILE", default=None,
                        help="write the distinguishing database (JSON, "
                             "replayable via repro.veriq.database_from_json) "
                             "here when certification fails")
    _common_extraction_args(verify)

    explain = sub.add_parser(
        "explain",
        help="extract a hidden query and print every clause of the result "
             "with the probe evidence that established it",
    )
    explain.add_argument("--workload", default="tpch",
                         choices=list(_load_workloads()))
    explain.add_argument("--query", default=None,
                         help="bundled query name, e.g. Q3")
    explain.add_argument("--sql", default=None, metavar="SQL",
                         help="ad-hoc SQL text to hide and explain")
    explain.add_argument("--from-ledger", metavar="FILE", default=None,
                         help="re-render the report from a --ledger file "
                              "instead of re-running the extraction")
    explain.add_argument("--run", type=int, default=None, metavar="ID",
                         help="which ledger run to explain "
                              "(default: the most recent)")
    _common_extraction_args(explain)

    diff = sub.add_parser(
        "trace-diff",
        help="compare two runs (run ledgers and/or bench payloads) clause "
             "by clause and module by module",
    )
    diff.add_argument("source_a", metavar="A",
                      help="run ledger (path[@run_id]) or bench payload JSON")
    diff.add_argument("source_b", metavar="B",
                      help="run ledger (path[@run_id]) or bench payload JSON")
    diff.add_argument("--threshold", type=float, default=0.25,
                      help="fractional self-time/wall-clock drift that "
                           "triggers a WARN line (default 0.25)")
    return parser


def _common_extraction_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.002,
                        help="synthetic data scale factor (default 0.002)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--having", action="store_true",
                        help="use the restructured §7 HAVING pipeline")
    parser.add_argument("--disjunctions", action="store_true",
                        help="enable the §9 disjunction-extraction extension")
    parser.add_argument("--no-checker", action="store_true",
                        help="skip the extraction checker")
    parser.add_argument("--report", action="store_true",
                        help="print the clause-by-clause extraction report")
    parser.add_argument("--trace-out", metavar="FILE", default=None,
                        help="write a hierarchical span trace (JSONL) here")
    parser.add_argument("--metrics-out", metavar="FILE", default=None,
                        help="write a metrics snapshot (JSON) here")
    parser.add_argument("--ledger", metavar="FILE", default=None,
                        help="persist the run — clause evidence, module "
                             "breakdown, raw probe stream — to this SQLite "
                             "run ledger (created if missing, appended "
                             "otherwise)")
    parser.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                        help="save per-module progress here and resume from "
                             "an existing checkpoint")
    parser.add_argument("--fresh", action="store_true",
                        help="discard any existing checkpoint in "
                             "--checkpoint-dir and start from scratch")
    parser.add_argument("--best-effort", action="store_true",
                        help="degrade failed non-essential modules (order by, "
                             "limit, disjunctions, checker) instead of aborting")
    parser.add_argument("--budget-invocations", type=int, default=None, metavar="N",
                        help="abort/degrade after N application invocations")
    parser.add_argument("--budget-rows-scanned", type=int, default=None, metavar="N",
                        help="abort/degrade after N engine rows scanned")
    parser.add_argument("--budget-cells", type=int, default=None, metavar="N",
                        help="abort/degrade after N synthetic cells materialized")
    parser.add_argument("--budget-seconds", type=float, default=None, metavar="S",
                        help="wall-clock budget for the whole extraction")
    parser.add_argument("--isolate", default="none",
                        choices=["none", "process", "remote"],
                        help="invocation isolation backend: 'process' runs "
                             "every application invocation in a supervised "
                             "worker subprocess with hard SIGKILL deadlines "
                             "and crash quarantine; 'remote' dispatches them "
                             "to worker agents named by --worker-peers over "
                             "a fenced, CRC-checked TCP transport "
                             "(default: none)")
    parser.add_argument("--worker-peers", metavar="HOST:PORT[,...]",
                        default=None,
                        help="comma-separated worker-agent addresses for "
                             "--isolate remote (each runs `python -m "
                             "repro.isolation.agent --listen host:port`)")
    parser.add_argument("--worker-memory-mb", type=int, default=None, metavar="MB",
                        help="address-space cap per isolation worker; an "
                             "application allocating past it dies with a "
                             "classified 'oom' crash")
    parser.add_argument("--worker-timeout", type=float, default=None, metavar="S",
                        help="hard deadline for isolated invocations that "
                             "carry no cooperative timeout (default 30)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker threads for independent probe batches; "
                             "the extracted SQL is byte-identical for any N "
                             "(default 1 = fully sequential)")
    parser.add_argument("--plan-cache-size", type=int, default=256, metavar="N",
                        help="LRU capacity of the engine's parse/plan cache, "
                             "keyed by (SQL, schema version); 0 disables it "
                             "(default 256)")
    parser.add_argument("--no-invocation-cache", action="store_true",
                        help="disable memoization of application invocations "
                             "by database fingerprint")


def _install_signal_handlers() -> None:
    """Route SIGTERM through KeyboardInterrupt so both interrupts unwind
    cleanly (checkpoints are flushed at every completed module, so the
    pipeline's ``finally`` blocks leave a resumable state behind)."""
    import signal

    def _terminate(signum, frame):
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _terminate)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass


def main(argv: Optional[list[str]] = None, out=sys.stdout) -> int:
    args = _make_parser().parse_args(argv)
    _install_signal_handlers()
    try:
        return _dispatch(args, out)
    except PeerQuarantined as error:
        # Transport-level quarantine gets its own status: every remote peer
        # is unreachable, which is an infrastructure verdict, not a statement
        # about the hidden query.
        out.write(f"error: {error}\n")
        return 5
    except ReproError as error:
        # One line, no traceback: extraction failures are expected outcomes
        # (outside-EQC queries, checkpoint mismatches, exhausted retries).
        out.write(f"error: {error}\n")
        return 1
    except KeyboardInterrupt:
        # One line, no traceback, standard 128+SIGINT status.  The last
        # completed module's checkpoint is already on disk.
        checkpoint_dir = getattr(args, "checkpoint_dir", None)
        if checkpoint_dir:
            out.write(
                f"interrupted: resumable with --checkpoint-dir {checkpoint_dir}\n"
            )
        else:
            out.write(
                "interrupted: re-run with --checkpoint-dir DIR to make "
                "long extractions resumable\n"
            )
        return 130


def _dispatch(args, out) -> int:
    if args.command == "workloads":
        for name, module in _load_workloads().items():
            out.write(f"{name}:\n")
            for query_name, query in module.QUERIES.items():
                out.write(f"  {query_name:<18} {query.description[:70]}\n")
        return 0

    if args.command == "extract":
        module = _load_workloads()[args.workload]
        query = _lookup_query(module, args.query)
        if query is None:
            out.write(f"unknown query {args.query!r}; try `repro workloads`\n")
            return 2
        return _run_extraction(args, query.sql, out)

    if args.command == "sql":
        return _run_extraction(args, args.query_sql, out)

    if args.command == "trace-report":
        return _run_trace_report(args, out)

    if args.command == "trace-diff":
        return _run_trace_diff(args, out)

    if args.command == "explain":
        return _run_explain(args, out)

    if args.command == "bench":
        return _run_bench(args, out)

    if args.command == "chaos":
        module = _load_workloads()[args.workload]
        query = _lookup_query(module, args.query)
        if query is None:
            out.write(f"unknown query {args.query!r}; try `repro workloads`\n")
            return 2
        if args.profile == "serve-kill":
            return _run_serve_kill_chaos(args, out)
        if args.profile == "disk":
            return _run_disk_chaos(args, out)
        if args.profile == "net":
            return _run_net_chaos(args, out)
        return _run_chaos(args, query.sql, out)

    if args.command == "serve":
        return _run_serve(args, out)

    if args.command == "verify":
        if (args.query is None) == (args.sql is None):
            out.write("verify needs exactly one of --query or --sql\n")
            return 2
        sql = args.sql
        if args.query is not None:
            module = _load_workloads()[args.workload]
            query = _lookup_query(module, args.query)
            if query is None:
                out.write(f"unknown query {args.query!r}; try `repro workloads`\n")
                return 2
            sql = query.sql
        return _run_verify(args, sql, out)

    return 2  # pragma: no cover - argparse enforces the choices


def _lookup_query(module, name: str):
    """Exact, then case-insensitive, lookup in a workload's query registry."""
    query = module.QUERIES.get(name)
    if query is not None:
        return query
    lowered = name.lower()
    for key, candidate in module.QUERIES.items():
        if key.lower() == lowered:
            return candidate
    return None


def _run_trace_report(args, out) -> int:
    from repro.obs import read_jsonl, render_trace_report

    try:
        spans = read_jsonl(args.trace_file)
    except (OSError, ValueError) as error:
        out.write(f"cannot read trace file: {error}\n")
        return 2
    out.write(
        render_trace_report(
            spans, top_queries=args.top, max_children=args.max_children
        )
        + "\n"
    )
    return 0


def _run_bench(args, out) -> int:
    import json

    from repro.bench.extraction_bench import (
        DEFAULT_LATENCY,
        DEFAULT_SCALE,
        compare_to_baseline,
        run_extraction_bench,
        write_payload,
    )

    latency = (
        args.latency_ms / 1000.0 if args.latency_ms is not None else DEFAULT_LATENCY
    )
    payload = run_extraction_bench(
        queries=args.queries,
        jobs_levels=args.jobs,
        scale=args.scale if args.scale is not None else DEFAULT_SCALE,
        seed=args.seed,
        latency=latency,
        progress=lambda line: out.write(f"  {line}\n"),
        ledger_path=args.ledger,
    )
    transport = None
    if args.transport_overhead:
        from repro.bench.extraction_bench import run_transport_overhead_bench

        transport = run_transport_overhead_bench(
            progress=lambda line: out.write(f"  transport {line}\n"),
        )
        payload["transport_overhead"] = transport
    write_payload(payload, args.out)
    summary = payload["summary"]
    top_jobs = summary["top_jobs"]
    out.write(f"wrote       : {args.out}\n")
    if args.ledger is not None:
        out.write(f"ledger      : {args.ledger}\n")
    out.write(
        f"speedup     : {summary['min_speedup']:.2f}x – "
        f"{summary['max_speedup']:.2f}x at --jobs {top_jobs}\n"
    )
    latency_pct = summary.get("invocation_latency") or {}
    if latency_pct:
        out.write(
            "latency     : "
            + ", ".join(
                f"{name} {value * 1000.0:.1f}ms"
                for name, value in latency_pct.items()
            )
            + f" per invocation at --jobs {top_jobs}\n"
        )
    top_runs = [
        run
        for row in payload["queries"]
        for run in row["runs"]
        if run["jobs"] == top_jobs
    ]
    if top_runs:
        plan_rate = sum(r["plan_cache_hit_rate"] for r in top_runs) / len(top_runs)
        inv_rate = sum(
            r["invocation_cache_hit_rate"] for r in top_runs
        ) / len(top_runs)
        out.write(
            f"caches      : plan {plan_rate:.0%} hit, invocation "
            f"{inv_rate:.0%} hit at --jobs {top_jobs}\n"
        )
        respawns = sum(
            (r.get("workers") or {}).get("respawns", 0) for r in top_runs
        )
        quarantines = sum(
            (r.get("workers") or {}).get("quarantined", 0) for r in top_runs
        )
        if any(r.get("workers") for r in top_runs):
            out.write(
                f"workers     : {respawns} respawns, "
                f"{quarantines} quarantined\n"
            )
    if transport is not None:
        out.write(
            f"transport   : remote {transport['remote_seconds']:.2f}s vs "
            f"process {transport['process_seconds']:.2f}s "
            f"({transport['overhead_fraction']:+.1%} overhead, budget "
            f"{transport['max_overhead']:.0%}, sql "
            + ("identical" if transport["sql_identical"] else "DIVERGED")
            + ")\n"
        )
    out.write(
        "determinism : sql "
        + ("identical" if summary["all_sql_identical"] else "DIVERGED")
        + ", invocations "
        + ("identical" if summary["all_invocations_identical"] else "DIVERGED")
        + "\n"
    )
    if not (summary["all_sql_identical"] and summary["all_invocations_identical"]):
        return 1
    if transport is not None and not transport["within_budget"]:
        return 1
    if args.baseline is not None:
        try:
            with open(args.baseline, "r", encoding="utf-8") as handle:
                baseline = json.load(handle)
        except (OSError, ValueError) as error:
            out.write(f"cannot read baseline: {error}\n")
            return 2
        problems = compare_to_baseline(
            payload, baseline, max_regression=args.max_regression
        )
        for problem in problems:
            out.write(f"regression  : {problem}\n")
        if problems:
            return 1
        out.write(
            f"baseline    : no regression beyond {args.max_regression:.0%} "
            f"vs {args.baseline}\n"
        )
    return 0


def _run_trace_diff(args, out) -> int:
    from repro.obs.diff import render_diff

    try:
        text, warnings = render_diff(
            args.source_a, args.source_b, threshold=args.threshold
        )
    except (OSError, ValueError) as error:
        out.write(f"cannot diff: {error}\n")
        return 2
    out.write(text + "\n")
    return 0


def _confidence_map(outcome) -> Optional[dict]:
    """EQC per-clause confidence keyed the way the provenance layer names
    clauses (the guard says "projections" where provenance says "select")."""
    if outcome.eqc is None or not outcome.eqc.clause_confidence:
        return None
    conf = dict(outcome.eqc.clause_confidence)
    if "projections" in conf:
        conf["select"] = conf.pop("projections")
    return conf


def _ledger_open(args, label: str, query_name: str = ""):
    """``(ledger, run_id, provenance)`` when ``--ledger`` was given, else
    ``(None, None, None)``.  The recorder streams to the ledger as modules
    flush, so a killed run keeps its partial evidence history."""
    path = getattr(args, "ledger", None)
    if path is None:
        return None, None, None
    from repro.obs.ledger import RunLedger
    from repro.obs.provenance import ProvenanceRecorder

    ledger = RunLedger(path)
    run_id = ledger.begin_run(
        label=label,
        workload=getattr(args, "workload", "") or "",
        query_name=query_name,
        jobs=getattr(args, "jobs", 1),
    )
    return ledger, run_id, ProvenanceRecorder(sink=ledger.sink(run_id))


def _ledger_finish(ledger, run_id, provenance, outcome) -> None:
    from repro.obs.provenance import clause_evidence

    provenance.flush()
    ledger.record_modules(run_id, outcome.stats.modules)
    if outcome.query is not None:
        ledger.record_clauses(
            run_id,
            clause_evidence(
                outcome.query,
                provenance.events,
                clause_confidence=_confidence_map(outcome),
            ),
        )
    caches = dict(outcome.caches or {})
    workers = caches.pop("workers", None)
    extras = {"caches": caches}
    if workers:
        extras["workers"] = workers
    ledger.finish_run(
        run_id,
        status="completed",
        verdict=outcome.verdict,
        sql=outcome.sql if outcome.query is not None else "",
        invocations=outcome.stats.total_invocations,
        seconds=outcome.stats.total_seconds,
        extras=extras,
    )
    ledger.close()


def _ledger_fail(ledger, run_id, provenance, error) -> None:
    """Mark an aborted run; its incrementally flushed evidence stays put."""
    if ledger is None:
        return
    try:
        provenance.flush()
        ledger.finish_run(
            run_id, status="failed", extras={"error": str(error)}
        )
        ledger.close()
    except Exception:  # the original error is the one worth surfacing
        pass


def _budget_kwargs(args) -> dict:
    return {
        "budget_invocations": args.budget_invocations,
        "budget_rows_scanned": args.budget_rows_scanned,
        "budget_cells": args.budget_cells,
        "budget_seconds": args.budget_seconds,
    }


def _scheduler_kwargs(args) -> dict:
    return {
        "jobs": args.jobs,
        "plan_cache_size": args.plan_cache_size,
        "invocation_cache": not args.no_invocation_cache,
    }


def _isolation_kwargs(args) -> dict:
    kwargs = {
        "isolate": args.isolate,
        "worker_memory_limit_mb": args.worker_memory_mb,
    }
    if args.worker_timeout is not None:
        kwargs["worker_default_timeout"] = args.worker_timeout
    peers = getattr(args, "worker_peers", None)
    if peers:
        kwargs["worker_peers"] = tuple(
            peer.strip() for peer in peers.split(",") if peer.strip()
        )
    return kwargs


def _clear_checkpoint_if_fresh(args, out) -> None:
    if getattr(args, "fresh", False) and args.checkpoint_dir is not None:
        from repro.resilience.checkpoint import CheckpointStore

        store = CheckpointStore(args.checkpoint_dir)
        if store.exists():
            out.write(f"fresh       : discarded checkpoint {store.path}\n")
        store.clear()


def _run_extraction(args, sql: str, out) -> int:
    db = _build_database(args.workload, args.scale, args.seed)
    app = SQLExecutable(sql, obfuscate_text=True, name="cli-app")
    if app.run(db).is_effectively_empty:
        out.write(
            "the hidden query has an empty result on this instance; "
            "increase --scale or change --seed\n"
        )
        return 3
    _clear_checkpoint_if_fresh(args, out)
    config = ExtractionConfig(
        extract_having=args.having,
        extract_disjunctions=args.disjunctions,
        run_checker=not args.no_checker,
        fail_fast=not args.best_effort,
        **_budget_kwargs(args),
        **_isolation_kwargs(args),
        **_scheduler_kwargs(args),
    )
    tracer = None
    metrics = None
    if args.trace_out or args.metrics_out:
        from repro.obs import MetricsRegistry, Tracer

        # Fail on unwritable output paths now, not after a long extraction.
        for path in (args.trace_out, args.metrics_out):
            if path is None:
                continue
            try:
                with open(path, "a", encoding="utf-8"):
                    pass
            except OSError as error:
                out.write(f"cannot write {path}: {error}\n")
                return 2
        metrics = MetricsRegistry()
        tracer = Tracer(metrics=metrics, keep_spans=args.trace_out is not None)
    ledger, run_id, provenance = _ledger_open(
        args, args.command, query_name=getattr(args, "query", "") or ""
    )
    try:
        outcome = UnmasqueExtractor(
            db, app, config, tracer=tracer,
            checkpoint_dir=args.checkpoint_dir, provenance=provenance,
        ).extract()
    except BaseException as error:
        _ledger_fail(ledger, run_id, provenance, error)
        raise
    if ledger is not None:
        _ledger_finish(ledger, run_id, provenance, outcome)
        out.write(f"ledger      : run {run_id} -> {args.ledger}\n")
    if args.trace_out:
        tracer.write_jsonl(args.trace_out)
        out.write(f"trace       : {len(tracer.spans)} spans -> {args.trace_out}\n")
    if args.metrics_out:
        metrics.write_json(args.metrics_out)
        out.write(f"metrics     : -> {args.metrics_out}\n")
    out.write(f"{outcome.sql}\n\n")
    if args.report:
        out.write(outcome.describe() + "\n\n")
    out.write(f"invocations : {outcome.stats.total_invocations}\n")
    out.write(f"wall-clock  : {outcome.stats.total_seconds:.2f}s\n")
    for module_name, seconds in outcome.stats.breakdown().items():
        out.write(f"  {module_name:<14} {seconds:.3f}s\n")
    if outcome.stats.retries:
        out.write(f"retries     : {outcome.stats.retries}\n")
    if outcome.resumed_modules:
        out.write(
            "resumed     : skipped " + ", ".join(outcome.resumed_modules) + "\n"
        )
    for degradation in outcome.degradations:
        out.write(f"degraded    : {degradation}\n")
    if outcome.checker_report is not None:
        verdict = "passed" if outcome.checker_report.passed else "FAILED"
        out.write(
            f"checker     : {verdict} "
            f"({outcome.checker_report.databases_checked} databases)\n"
        )
    if outcome.budget is not None:
        out.write(
            f"budget      : {outcome.budget['invocations']} invocations, "
            f"{outcome.budget['rows_scanned']} rows scanned, "
            f"{outcome.budget['cells_materialized']} cells, "
            f"{outcome.budget['wall_seconds']:.3f}s\n"
        )
    if outcome.verdict != "ok":
        out.write(f"verdict     : {outcome.verdict}\n")
    return 4 if outcome.verdict == "out_of_class" else 0


def _run_verify(args, sql: str, out) -> int:
    """Answer "is this hidden query extractable?" without emitting wrong SQL.

    Exit status: 0 = in_class (extraction succeeded and cross-validated;
    with ``--certify``, additionally certified equivalent within bounds),
    4 = out_of_class, 6 = ``--certify`` found an unresolved counterexample,
    1 = the run itself failed, 3 = empty initial result.
    """
    db = _build_database(args.workload, args.scale, args.seed)
    app = SQLExecutable(sql, obfuscate_text=True, name="verify-app")
    if app.run(db).is_effectively_empty:
        out.write(
            "the hidden query has an empty result on this instance; "
            "increase --scale or change --seed\n"
        )
        return 3
    _clear_checkpoint_if_fresh(args, out)
    config = ExtractionConfig(
        extract_having=args.having,
        extract_disjunctions=args.disjunctions,
        run_checker=not args.no_checker,
        fail_fast=not args.best_effort,
        eqc_guard=True,
        out_of_class_action="verdict",
        # keep the checker's report flowing into the post-flight guard
        # instead of aborting the run on the first mismatch
        checker_strict=False,
        certify=args.certify,
        certify_rows=args.certify_rows,
        certify_databases=args.certify_databases,
        certify_rounds=args.certify_rounds,
        **_budget_kwargs(args),
        **_isolation_kwargs(args),
        **_scheduler_kwargs(args),
    )
    tracer = None
    metrics = None
    if args.trace_out or args.metrics_out:
        from repro.obs import MetricsRegistry, Tracer

        # Fail on unwritable output paths now, not after a long extraction.
        for path in (args.trace_out, args.metrics_out):
            if path is None:
                continue
            try:
                with open(path, "a", encoding="utf-8"):
                    pass
            except OSError as error:
                out.write(f"cannot write {path}: {error}\n")
                return 2
        metrics = MetricsRegistry()
        tracer = Tracer(metrics=metrics, keep_spans=args.trace_out is not None)
    ledger, run_id, provenance = _ledger_open(
        args, "verify", query_name=args.query or ""
    )
    try:
        extractor = UnmasqueExtractor(
            db, app, config, tracer=tracer,
            checkpoint_dir=args.checkpoint_dir, provenance=provenance,
        )
        if args.certify:
            outcome = extractor.extract_certified()
        else:
            outcome = extractor.extract()
    except BaseException as error:
        _ledger_fail(ledger, run_id, provenance, error)
        raise
    if ledger is not None:
        _ledger_finish(ledger, run_id, provenance, outcome)
        out.write(f"ledger      : run {run_id} -> {args.ledger}\n")
    if args.trace_out:
        tracer.write_jsonl(args.trace_out)
        out.write(f"trace       : {len(tracer.spans)} spans -> {args.trace_out}\n")
    if args.metrics_out:
        metrics.write_json(args.metrics_out)
        out.write(f"metrics     : -> {args.metrics_out}\n")
    out.write(f"verdict     : {outcome.verdict}\n")
    if outcome.eqc is not None:
        out.write(outcome.eqc.describe() + "\n")
    out.write(f"invocations : {outcome.stats.total_invocations}\n")
    if outcome.verdict == "out_of_class":
        out.write("no SQL emitted: the hidden query is outside EQC\n")
        return 4
    if args.report:
        out.write("\n" + outcome.describe() + "\n")
    out.write(f"{outcome.sql}\n")
    if outcome.certify is not None:
        return _report_certify(args, outcome.certify, out)
    return 0


def _report_certify(args, certify: dict, out) -> int:
    """Render the verifier's verdict; exit 6 on an unresolved counterexample."""
    from repro.veriq import CertifyReport

    report = CertifyReport(**certify)
    out.write(f"certify     : {report.describe()}\n")
    if report.verdict == "counterexample" and report.counterexample:
        if args.counterexample_out:
            import json

            with open(args.counterexample_out, "w", encoding="utf-8") as fh:
                json.dump(report.counterexample, fh, indent=1, default=str)
            out.write(f"counterexample -> {args.counterexample_out}\n")
        return 6
    return 0


def _run_explain(args, out) -> int:
    """``repro explain``: every clause of ``Q_E`` with its evidence chain.

    Two modes: run a fresh extraction with the provenance recorder attached
    (``--query``/``--sql``), or re-render the stored clause table from a
    ``--from-ledger`` file without executing anything.
    """
    from repro.obs.provenance import (
        ProvenanceRecorder,
        clause_evidence,
        render_explain,
    )

    if args.from_ledger is not None:
        return _explain_from_ledger(args, out)
    if (args.query is None) == (args.sql is None):
        out.write(
            "explain needs exactly one of --query or --sql "
            "(or --from-ledger FILE)\n"
        )
        return 2
    sql = args.sql
    if args.query is not None:
        module = _load_workloads()[args.workload]
        query = _lookup_query(module, args.query)
        if query is None:
            out.write(f"unknown query {args.query!r}; try `repro workloads`\n")
            return 2
        sql = query.sql

    db = _build_database(args.workload, args.scale, args.seed)
    app = SQLExecutable(sql, obfuscate_text=True, name="explain-app")
    if app.run(db).is_effectively_empty:
        out.write(
            "the hidden query has an empty result on this instance; "
            "increase --scale or change --seed\n"
        )
        return 3
    _clear_checkpoint_if_fresh(args, out)
    config = ExtractionConfig(
        extract_having=args.having,
        extract_disjunctions=args.disjunctions,
        run_checker=not args.no_checker,
        fail_fast=not args.best_effort,
        **_budget_kwargs(args),
        **_isolation_kwargs(args),
        **_scheduler_kwargs(args),
    )
    ledger, run_id, provenance = _ledger_open(
        args, "explain", query_name=args.query or ""
    )
    if provenance is None:
        provenance = ProvenanceRecorder()
    try:
        outcome = UnmasqueExtractor(
            db, app, config,
            checkpoint_dir=args.checkpoint_dir, provenance=provenance,
        ).extract()
    except BaseException as error:
        _ledger_fail(ledger, run_id, provenance, error)
        raise
    if ledger is not None:
        _ledger_finish(ledger, run_id, provenance, outcome)
        out.write(f"ledger: run {run_id} -> {args.ledger}\n")
    if outcome.query is None:
        out.write(f"verdict: {outcome.verdict}\n")
        out.write("no SQL emitted: nothing to explain\n")
        return 4 if outcome.verdict == "out_of_class" else 1
    rows = clause_evidence(
        outcome.query,
        provenance.events,
        clause_confidence=_confidence_map(outcome),
    )
    header = (
        f"workload {args.workload}, query {args.query}"
        if args.query
        else f"workload {args.workload}, ad-hoc sql"
    ) + f", --jobs {args.jobs}"
    out.write(
        render_explain(
            rows,
            sql=outcome.sql,
            header=header,
            total_probes=provenance.probe_count,
        )
        + "\n"
    )
    return 4 if outcome.verdict == "out_of_class" else 0


def _explain_from_ledger(args, out) -> int:
    from repro.obs.ledger import RunLedger
    from repro.obs.provenance import ClauseEvidence, render_explain

    try:
        with RunLedger(args.from_ledger) as ledger:
            run = ledger.run(args.run)
            if run is None:
                out.write(
                    f"no such run in {args.from_ledger}"
                    + (f": {args.run}" if args.run is not None else " (empty ledger)")
                    + "\n"
                )
                return 2
            stored = ledger.clauses(run["run_id"])
            probe_count = sum(
                1 for e in ledger.events(run["run_id"]) if e.kind == "probe"
            )
    except (OSError, ValueError) as error:
        out.write(f"cannot read ledger: {error}\n")
        return 2
    rows = []
    for record in stored:
        row = ClauseEvidence(record["clause"], record["target"])
        row.module = record["module"]
        row.action = record["action"]
        row.probes = record["probes"]
        if record["first_seq"] is not None:
            row.evidence = (record["first_seq"], record["last_seq"])
        row.cached = record["cached"]
        row.speculative = record["speculative"]
        row.isolated = record["isolated"]
        row.confidence = record["confidence"]
        rows.append(row)
    header = (
        f"run {run['run_id']} ({run['label']}, {run['workload']} "
        f"{run['query_name'] or 'ad-hoc'}, --jobs {run['jobs']}, "
        f"status {run['status']})"
    )
    out.write(
        render_explain(
            rows, sql=run["sql"], header=header, total_probes=probe_count
        )
        + "\n"
    )
    return 0


def _parse_serve_workers(value: str) -> tuple[int, tuple]:
    """``--workers`` is an int (thread count) or a host:port peer list.

    Returns ``(worker_threads, remote_peers)``; with peers, the thread count
    is the peer count so each remote agent can serve one extraction.
    """
    text = str(value).strip()
    if text.isdigit():
        return int(text), ()
    peers = tuple(peer.strip() for peer in text.split(",") if peer.strip())
    if not peers or not all(":" in peer for peer in peers):
        raise ValueError(
            f"--workers expects an integer or host:port[,host:port...], "
            f"got {value!r}"
        )
    return len(peers), peers


def _run_serve(args, out) -> int:
    """Run the extraction service until SIGTERM/SIGINT, then drain and exit 0.

    The drain contract: stop admitting (503 ``draining``), ask every
    in-flight pipeline to pause at its next module boundary (journaled
    ``checkpointed``), leave queued jobs journaled, and exit once the
    workers are idle or ``--drain-grace`` elapses.  A later ``repro serve``
    on the same ``--journal``/``--checkpoint-root`` resumes everything.
    """
    import signal
    import threading

    from repro.serve.api import create_server
    from repro.serve.breaker import CircuitBreaker
    from repro.serve.service import ExtractionService
    from repro.serve.tenants import TenantPolicy

    try:
        worker_threads, remote_peers = _parse_serve_workers(args.workers)
    except ValueError as error:
        out.write(f"{error}\n")
        return 2
    service = ExtractionService(
        args.journal,
        args.checkpoint_root,
        queue_capacity=args.queue_capacity,
        workers=worker_threads,
        remote_peers=remote_peers,
        tenant_policy=TenantPolicy(
            max_queued=args.tenant_max_queued,
            max_invocations=args.tenant_max_invocations,
            max_seconds=args.tenant_max_seconds,
            quarantine_threshold=args.tenant_quarantine_threshold,
        ),
        breaker=CircuitBreaker(
            failure_threshold=args.breaker_threshold,
            cooldown_seconds=args.breaker_cooldown,
        ),
        ledger_path=args.ledger,
        memory_high_mb=args.memory_high_mb,
        memory_low_mb=args.memory_low_mb,
        shared_plan_cache_size=args.shared_plan_cache,
    )
    recovered = service.start()
    if recovered:
        out.write(
            f"recovered   : requeued {len(recovered)} interrupted jobs "
            f"({', '.join(recovered)})\n"
        )
    httpd = create_server(service, args.host, args.port)
    host, port = httpd.server_address[0], httpd.server_address[1]
    out.write(f"serve       : listening on http://{host}:{port}\n")
    if remote_peers:
        out.write(f"peers       : {', '.join(remote_peers)}\n")
    out.write(f"journal     : {service.journal.path}\n")
    out.flush()

    stopping = threading.Event()

    def _graceful_stop(signum, frame):
        # Can't shut the server down from its own signal handler (it runs on
        # the serve_forever thread); hand off to a drain thread that stops
        # the listener once in-flight jobs finished or checkpointed.
        if stopping.is_set():
            return
        stopping.set()

        def _drain_then_stop():
            service.drain(timeout=args.drain_grace)
            httpd.shutdown()

        threading.Thread(target=_drain_then_stop, daemon=True).start()

    signal.signal(signal.SIGTERM, _graceful_stop)
    signal.signal(signal.SIGINT, _graceful_stop)
    try:
        httpd.serve_forever(poll_interval=0.2)
    finally:
        httpd.server_close()
        service.drain(timeout=args.drain_grace)
        counts = service.journal.counts()
        summary = ", ".join(f"{state}={n}" for state, n in sorted(counts.items()))
        out.write(f"drained     : {summary or 'no jobs'}\n")
        service.close()
    return 0


def _run_serve_kill_chaos(args, out) -> int:
    """The serve-kill profile: SIGKILL a live server N times, prove recovery."""
    import tempfile

    from repro.serve.killer import run_serve_kill

    workdir = args.serve_dir or tempfile.mkdtemp(prefix="repro-serve-kill-")
    report = run_serve_kill(
        args.query,
        workload=args.workload,
        scale=args.scale,
        seed=args.seed,
        serve_jobs=args.serve_jobs,
        kills=args.kills,
        workdir=workdir,
        out=out,
    )
    for job_id, info in sorted(report["jobs"].items()):
        marker = "converged" if info["converged"] else "DIVERGED"
        out.write(
            f"{job_id:<12}: {marker} ({info['state']}, "
            f"attempt {info['attempts']})\n"
        )
    out.write(f"kills       : {report['kills']}\n")
    out.write(f"journal     : {report['journal']}\n")
    verdict = "SURVIVED" if report["converged"] else "DIVERGED"
    out.write(f"verdict     : {verdict}\n")
    return 0 if report["converged"] else 1


def _run_disk_chaos(args, out) -> int:
    """The disk profile: storage faults against every durable store."""
    import tempfile

    from repro.resilience.diskchaos import run_disk_chaos

    workdir = args.serve_dir or tempfile.mkdtemp(prefix="repro-disk-chaos-")
    report = run_disk_chaos(
        args.query,
        workload=args.workload,
        scale=args.scale,
        seed=args.seed,
        chaos_seed=args.chaos_seed,
        workdir=workdir,
        out=out,
    )
    passed = sum(1 for cell in report["cells"] if cell["ok"])
    out.write(f"matrix      : {passed}/{len(report['cells'])} cells passed "
              f"({len(report['fault_classes'])} fault classes x 3 stores)\n")
    out.write(f"workdir     : {report['workdir']}\n")
    verdict = "SURVIVED" if report["survived"] else "DIVERGED"
    out.write(f"verdict     : {verdict}\n")
    return 0 if report["survived"] else 1


def _run_net_chaos(args, out) -> int:
    """The net profile: wire faults against the remote worker transport."""
    import tempfile

    from repro.resilience.netchaos import run_net_chaos

    workdir = args.serve_dir or tempfile.mkdtemp(prefix="repro-net-chaos-")
    report = run_net_chaos(
        args.query,
        workload=args.workload,
        scale=args.scale,
        seed=args.seed,
        chaos_seed=args.chaos_seed,
        workdir=workdir,
        out=out,
        fast=args.fast,
    )
    passed = sum(1 for cell in report["cells"] if cell["ok"])
    out.write(f"matrix      : {passed}/{len(report['cells'])} cells passed "
              f"({len(report['fault_classes'])} fault classes x "
              f"{len(report['phases']) - 1} phases + clean)\n")
    out.write(f"workdir     : {report['workdir']}\n")
    verdict = "SURVIVED" if report["survived"] else "DIVERGED"
    out.write(f"verdict     : {verdict}\n")
    return 0 if report["survived"] else 1


def _run_chaos(args, sql: str, out) -> int:
    """Extract under fault injection; exit 0 iff the run *survives*.

    Survival means the faulted extraction completes and produces SQL
    identical to a fault-free run on the same instance.  With ``--crash-at``
    the run is additionally killed mid-pipeline and auto-resumed from the
    checkpoint, proving per-module resume end to end.
    """
    import dataclasses

    from repro.obs import MetricsRegistry, Tracer
    from repro.resilience.faults import (
        FAULT_PROFILES,
        HARD_FAULT_PROFILES,
        FaultyExecutable,
        InjectedCrashError,
    )

    if args.crash_at is not None and args.checkpoint_dir is None:
        out.write("--crash-at needs --checkpoint-dir to resume from\n")
        return 2
    if args.profile in HARD_FAULT_PROFILES and args.isolate != "process":
        out.write(
            f"profile {args.profile!r} injects hard faults (process kills, "
            "busy-loop hangs) that only the isolated backend survives; "
            "re-run with --isolate process\n"
        )
        return 2

    db = _build_database(args.workload, args.scale, args.seed)
    plan = FAULT_PROFILES[args.profile].with_seed(args.chaos_seed)

    baseline_app = SQLExecutable(sql, obfuscate_text=True, name="chaos-baseline")
    if baseline_app.run(db).is_effectively_empty:
        out.write(
            "the hidden query has an empty result on this instance; "
            "increase --scale or change --seed\n"
        )
        return 3
    _clear_checkpoint_if_fresh(args, out)
    config = ExtractionConfig(
        extract_having=args.having,
        extract_disjunctions=args.disjunctions,
        run_checker=not args.no_checker,
        **_budget_kwargs(args),
        **_scheduler_kwargs(args),
    )
    baseline = UnmasqueExtractor(db, baseline_app, config).extract()

    chaos_config = dataclasses.replace(
        config,
        retry_max_attempts=args.max_attempts,
        retry_base_delay=0.0,  # chaos runs should not actually sleep
        retry_timeouts=plan.injects_timeouts,
        fail_fast=not args.best_effort,
        # the baseline stays in-process: isolation applies to the faulted run
        **_isolation_kwargs(args),
    )
    metrics = MetricsRegistry()
    tracer = Tracer(metrics=metrics, keep_spans=False)
    faulty = FaultyExecutable(
        SQLExecutable(sql, obfuscate_text=True, name="chaos-app"),
        dataclasses.replace(plan, crash_at=args.crash_at),
    )

    out.write(f"profile        : {plan.name} (chaos seed {plan.seed})\n")
    crashed_at = None
    # One recorder spans the crash and the resume: the ledger keeps a single
    # evidence stream for the whole survived run, partial history included.
    ledger, run_id, provenance = _ledger_open(
        args, "chaos", query_name=args.query or ""
    )
    extractor = UnmasqueExtractor(
        db, faulty, chaos_config, tracer=tracer,
        checkpoint_dir=args.checkpoint_dir, provenance=provenance,
    )
    try:
        outcome = extractor.extract()
    except InjectedCrashError:
        crashed_at = faulty.invocation_count
        out.write(
            f"crashed        : invocation {crashed_at} (injected); "
            "resuming from checkpoint\n"
        )
        faulty = FaultyExecutable(
            SQLExecutable(sql, obfuscate_text=True, name="chaos-app"), plan
        )
        extractor = UnmasqueExtractor(
            db, faulty, chaos_config, tracer=tracer,
            checkpoint_dir=args.checkpoint_dir, provenance=provenance,
        )
        try:
            outcome = extractor.extract()
        except ReproError as error:
            _ledger_fail(ledger, run_id, provenance, error)
            out.write(f"died           : {type(error).__name__}: {error}\n")
            out.write("survived       : no\n")
            return 1
    except ReproError as error:
        _ledger_fail(ledger, run_id, provenance, error)
        out.write(f"died           : {type(error).__name__}: {error}\n")
        out.write("survived       : no\n")
        return 1
    if ledger is not None:
        _ledger_finish(ledger, run_id, provenance, outcome)
        out.write(f"ledger         : run {run_id} -> {args.ledger}\n")

    injected = ", ".join(f"{k}={v}" for k, v in faulty.injected.items())
    matches = outcome.sql == baseline.sql
    survived = matches and (args.best_effort or not outcome.degradations)
    out.write(f"faults injected: {injected}\n")
    backend = extractor.session.backend
    if backend is not None:
        pool_stats = backend.pool.stats
        out.write(
            f"worker pool    : {pool_stats.invocations} invocations, "
            f"{pool_stats.crashes} crashes, {pool_stats.kills} kills, "
            f"{pool_stats.restarts} restarts, "
            f"rss peak {pool_stats.rss_peak_bytes / (1024 * 1024):.0f}MiB\n"
        )
    out.write(f"invocations    : {outcome.stats.total_invocations}\n")
    out.write(f"retries        : {outcome.stats.retries}\n")
    out.write(f"timeouts       : {outcome.stats.invocation_timeouts}\n")
    if outcome.resumed_modules:
        out.write(
            "resumed        : skipped " + ", ".join(outcome.resumed_modules) + "\n"
        )
    if outcome.degradations:
        for degradation in outcome.degradations:
            out.write(f"degraded       : {degradation}\n")
    else:
        out.write("degradations   : (none)\n")
    if args.metrics_out:
        metrics.write_json(args.metrics_out)
        out.write(f"metrics        : -> {args.metrics_out}\n")
    out.write(f"sql matches fault-free run : {'yes' if matches else 'no'}\n")
    if not matches:
        out.write(f"  fault-free : {baseline.sql}\n")
        out.write(f"  faulted    : {outcome.sql}\n")
    out.write(f"survived       : {'yes' if survived else 'no'}\n")
    return 0 if survived else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
