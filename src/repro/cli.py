"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``workloads`` — list the bundled hidden-query workloads;
* ``extract``   — build a synthetic instance, hide a workload query in an
  obfuscated executable, run UNMASQUE, and print the extracted SQL with the
  per-module timing profile;
* ``sql``       — extract an ad-hoc hidden query supplied on the command line
  (against a chosen synthetic instance);
* ``trace-report`` — render a ``--trace-out`` JSONL trace as a flame-style
  span tree plus a top-N slowest-queries table.

Extraction commands accept ``--trace-out FILE`` (hierarchical span trace,
JSONL) and ``--metrics-out FILE`` (counters/histograms snapshot, JSON);
without these flags no tracer is attached and extraction runs exactly as
before.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.apps.executable import SQLExecutable
from repro.core.config import ExtractionConfig
from repro.core.pipeline import UnmasqueExtractor


def _load_workloads():
    from repro.workloads import (
        having_queries,
        job_queries,
        regal_queries,
        tpcds_queries,
        tpch_queries,
    )

    return {
        "tpch": tpch_queries,
        "tpcds": tpcds_queries,
        "job": job_queries,
        "regal": regal_queries,
        "having": having_queries,
    }


def _build_database(workload: str, scale: float, seed: int):
    from repro.datagen import imdb, tpcds, tpch

    if workload == "job":
        return imdb.build_database(movies=max(50, int(scale * 100_000)), seed=seed)
    if workload == "tpcds":
        return tpcds.build_database(sales=max(500, int(scale * 1_000_000)), seed=seed)
    return tpch.build_database(scale=scale, seed=seed)


def _make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="UNMASQUE hidden-query extraction (SIGMOD 2021 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list bundled workloads and their queries")

    extract = sub.add_parser("extract", help="extract one bundled hidden query")
    extract.add_argument("--workload", default="tpch", choices=list(_load_workloads()))
    extract.add_argument("--query", required=True, help="query name, e.g. Q3")
    _common_extraction_args(extract)

    adhoc = sub.add_parser("sql", help="extract an ad-hoc hidden query")
    adhoc.add_argument("--workload", default="tpch", choices=["tpch", "tpcds", "job"],
                       help="which synthetic instance to run against")
    adhoc.add_argument("query_sql", help="the SQL text to hide and re-extract")
    _common_extraction_args(adhoc)

    report = sub.add_parser("trace-report", help="render a --trace-out JSONL trace")
    report.add_argument("trace_file", help="JSONL trace written by --trace-out")
    report.add_argument("--top", type=int, default=10,
                        help="slowest engine queries to list (default 10)")
    report.add_argument("--max-children", type=int, default=8,
                        help="children shown per span before eliding (default 8)")
    return parser


def _common_extraction_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.002,
                        help="synthetic data scale factor (default 0.002)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--having", action="store_true",
                        help="use the restructured §7 HAVING pipeline")
    parser.add_argument("--disjunctions", action="store_true",
                        help="enable the §9 disjunction-extraction extension")
    parser.add_argument("--no-checker", action="store_true",
                        help="skip the extraction checker")
    parser.add_argument("--report", action="store_true",
                        help="print the clause-by-clause extraction report")
    parser.add_argument("--trace-out", metavar="FILE", default=None,
                        help="write a hierarchical span trace (JSONL) here")
    parser.add_argument("--metrics-out", metavar="FILE", default=None,
                        help="write a metrics snapshot (JSON) here")


def main(argv: Optional[list[str]] = None, out=sys.stdout) -> int:
    args = _make_parser().parse_args(argv)

    if args.command == "workloads":
        for name, module in _load_workloads().items():
            out.write(f"{name}:\n")
            for query_name, query in module.QUERIES.items():
                out.write(f"  {query_name:<18} {query.description[:70]}\n")
        return 0

    if args.command == "extract":
        module = _load_workloads()[args.workload]
        query = _lookup_query(module, args.query)
        if query is None:
            out.write(f"unknown query {args.query!r}; try `repro workloads`\n")
            return 2
        return _run_extraction(args, query.sql, out)

    if args.command == "sql":
        return _run_extraction(args, args.query_sql, out)

    if args.command == "trace-report":
        return _run_trace_report(args, out)

    return 2  # pragma: no cover - argparse enforces the choices


def _lookup_query(module, name: str):
    """Exact, then case-insensitive, lookup in a workload's query registry."""
    query = module.QUERIES.get(name)
    if query is not None:
        return query
    lowered = name.lower()
    for key, candidate in module.QUERIES.items():
        if key.lower() == lowered:
            return candidate
    return None


def _run_trace_report(args, out) -> int:
    from repro.obs import read_jsonl, render_trace_report

    try:
        spans = read_jsonl(args.trace_file)
    except (OSError, ValueError) as error:
        out.write(f"cannot read trace file: {error}\n")
        return 2
    out.write(
        render_trace_report(
            spans, top_queries=args.top, max_children=args.max_children
        )
        + "\n"
    )
    return 0


def _run_extraction(args, sql: str, out) -> int:
    db = _build_database(args.workload, args.scale, args.seed)
    app = SQLExecutable(sql, obfuscate_text=True, name="cli-app")
    if app.run(db).is_effectively_empty:
        out.write(
            "the hidden query has an empty result on this instance; "
            "increase --scale or change --seed\n"
        )
        return 3
    config = ExtractionConfig(
        extract_having=args.having,
        extract_disjunctions=args.disjunctions,
        run_checker=not args.no_checker,
    )
    tracer = None
    metrics = None
    if args.trace_out or args.metrics_out:
        from repro.obs import MetricsRegistry, Tracer

        # Fail on unwritable output paths now, not after a long extraction.
        for path in (args.trace_out, args.metrics_out):
            if path is None:
                continue
            try:
                with open(path, "a", encoding="utf-8"):
                    pass
            except OSError as error:
                out.write(f"cannot write {path}: {error}\n")
                return 2
        metrics = MetricsRegistry()
        tracer = Tracer(metrics=metrics, keep_spans=args.trace_out is not None)
    outcome = UnmasqueExtractor(db, app, config, tracer=tracer).extract()
    if args.trace_out:
        tracer.write_jsonl(args.trace_out)
        out.write(f"trace       : {len(tracer.spans)} spans -> {args.trace_out}\n")
    if args.metrics_out:
        metrics.write_json(args.metrics_out)
        out.write(f"metrics     : -> {args.metrics_out}\n")
    out.write(f"{outcome.sql}\n\n")
    if args.report:
        out.write(outcome.describe() + "\n\n")
    out.write(f"invocations : {outcome.stats.total_invocations}\n")
    out.write(f"wall-clock  : {outcome.stats.total_seconds:.2f}s\n")
    for module_name, seconds in outcome.stats.breakdown().items():
        out.write(f"  {module_name:<14} {seconds:.3f}s\n")
    if outcome.checker_report is not None:
        verdict = "passed" if outcome.checker_report.passed else "FAILED"
        out.write(
            f"checker     : {verdict} "
            f"({outcome.checker_report.databases_checked} databases)\n"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
